//! Batched stepping must be invisible: a simulation run with
//! [`SimBuilder::batched`] on is byte-for-byte identical — same outputs at
//! the same virtual times, same traces, same communication metrics — to
//! the same run with batching off. Batching only coalesces the persist/
//! flush seal across events the unbatched loop would process back-to-back
//! anyway, so any divergence here is a dispatch-order bug, not a tuning
//! difference.

use tetrabft_sim::{OutputRecord, TraceEvent};
use tetrabft_suite::prelude::*;

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct RunRecord<O, M> {
    outputs: Vec<OutputRecord<O>>,
    trace: Vec<TraceEvent<M>>,
    bytes_sent: u64,
    msgs_sent: u64,
    events_processed: u64,
    final_time: Time,
}

fn record<O: Clone, M: Clone + tetrabft_sim::WireSize>(sim: &Sim<M, O>) -> RunRecord<O, M> {
    RunRecord {
        outputs: sim.outputs().to_vec(),
        trace: sim.trace().map(<[TraceEvent<M>]>::to_vec).unwrap_or_default(),
        bytes_sent: sim.metrics().total_bytes_sent(),
        msgs_sent: sim.metrics().total_msgs_sent(),
        events_processed: sim.metrics().events_processed,
        final_time: sim.now(),
    }
}

fn single_shot_run(seed: u64, jitter_max: u64, batched: bool) -> RunRecord<Value, Message> {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4)
        .seed(seed)
        .policy(LinkPolicy::jittered(1, jitter_max))
        .record_trace(true)
        .batched(batched)
        .build(|id| {
            TetraNode::new(cfg, Params::new(25 + jitter_max), id, Value::from_u64(u64::from(id.0)))
        });
    sim.run_until(Time(500));
    record(&sim)
}

fn multishot_run(seed: u64, batched: bool) -> RunRecord<Finalized, MsMessage> {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4)
        .seed(seed)
        .policy(LinkPolicy::jittered(1, 4))
        .record_trace(true)
        .batched(batched)
        .build(|id| MultiShotNode::new(cfg, Params::new(20), id));
    sim.run_until(Time(400));
    record(&sim)
}

#[test]
fn single_shot_runs_are_identical_batched_or_not() {
    for seed in [7u64, 1234, 0xFEED] {
        for jitter in [1u64, 4] {
            let unbatched = single_shot_run(seed, jitter, false);
            let batched = single_shot_run(seed, jitter, true);
            assert_eq!(
                unbatched, batched,
                "seed {seed} jitter {jitter}: batched stepping changed the run"
            );
            assert!(!unbatched.outputs.is_empty(), "runs must actually decide");
        }
    }
}

#[test]
fn multishot_runs_are_identical_batched_or_not() {
    for seed in [7u64, 1234, 0xFEED] {
        let unbatched = multishot_run(seed, false);
        let batched = multishot_run(seed, true);
        assert_eq!(unbatched, batched, "seed {seed}: batched stepping changed the run");
        let chain: Vec<(Slot, BlockHash)> = batched
            .outputs
            .iter()
            .filter(|o| o.node == NodeId(0))
            .map(|o| (o.output.slot, o.output.hash))
            .collect();
        assert!(chain.len() > 5, "the chain must actually grow (seed {seed})");
    }
}

#[test]
fn batched_stepping_survives_faults_and_partitions() {
    // Batching must also not disturb runs where view changes, drops, and
    // timer storms dominate — the paths where dispatch coalescing sees
    // stale timers and re-deliveries.
    let run = |batched: bool| {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .seed(99)
            .policy(LinkPolicy::partial_synchrony(Time(150), 10, 2))
            .record_trace(true)
            .batched(batched)
            .build(|id| MultiShotNode::new(cfg, Params::new(10), id));
        sim.run_until(Time(600));
        record(&sim)
    };
    let unbatched = run(false);
    let batched = run(true);
    assert_eq!(unbatched, batched);
    assert!(
        batched.outputs.iter().any(|o| o.node == NodeId(0)),
        "the chain must recover after GST"
    );
}
