//! Property tests for the link-plan grammar: `Display` → `FromStr`
//! round-trips for [`EdgeSpec`], [`PartitionWindow`], and whole
//! [`LinkPlan`]s (including fuzzer-sampled ones), plus hostile-input parse
//! tests pinning the typed [`PlanParseError`]s.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tetrabft_sim::{EdgeSpec, LinkPlan, PartitionWindow, PlanParseError};
use tetrabft_types::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every canonical `EdgeSpec` rendering parses back to the same spec,
    /// including the empty (IDEAL) rendering and exact drop ppm values.
    #[test]
    fn edge_spec_display_round_trips(
        delay in 0u64..=10_000,
        jitter in 0u64..=1_000,
        drop_ppm in 0u32..=1_000_000,
    ) {
        let mut spec = EdgeSpec::delay(delay).with_jitter(jitter);
        spec.drop_ppm = drop_ppm;
        let rendered = spec.to_string();
        let reparsed: EdgeSpec = rendered.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, spec, "rendering was `{}`", rendered);
    }

    /// Partition windows round-trip, with the group canonicalized (sorted,
    /// deduplicated) on both sides.
    #[test]
    fn partition_window_display_round_trips(
        start in 0u64..=100_000,
        len in 1u64..=50_000,
        group in proptest::collection::vec(0u16..16, 1..=6),
    ) {
        let ids: Vec<NodeId> = group.into_iter().map(NodeId).collect();
        let window = PartitionWindow::isolate(start, start + len, ids);
        let rendered = window.to_string();
        let reparsed: PartitionWindow = rendered.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, window, "rendering was `{}`", rendered);
    }

    /// Whole plans — exactly as the fuzzer samples them, partitions and
    /// per-edge overrides included — survive a Display/FromStr round-trip.
    /// This is what makes `Scenario::to_rust_source` replays faithful.
    #[test]
    fn sampled_link_plans_round_trip(seed in any::<u64>(), n in 2usize..=8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = LinkPlan::sample(&mut rng, n, 2_000, 3);
        let rendered = plan.to_string();
        let reparsed: LinkPlan = rendered.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, plan, "rendering was `{}`", rendered);
    }

    /// Hand-assembled plans round-trip too (sampling never emits the
    /// IDEAL-override or drop-fraction corners, so cover them here).
    #[test]
    fn assembled_link_plans_round_trip(
        base_delay in 1u64..=200,
        from in 0u16..6,
        to in 0u16..6,
        part_start in 0u64..=500,
        part_len in 1u64..=500,
        isolate in 0u16..6,
    ) {
        let plan = LinkPlan::uniform(EdgeSpec::delay(base_delay))
            .link(NodeId(from), NodeId(to), EdgeSpec::IDEAL)
            .partition(PartitionWindow::isolate(
                part_start,
                part_start + part_len,
                [NodeId(isolate)],
            ));
        let rendered = plan.to_string();
        let reparsed: LinkPlan = rendered.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, plan, "rendering was `{}`", rendered);
    }
}

fn assert_parse_error<T>(result: Result<T, PlanParseError>, needle: &str) {
    let err = match result {
        Ok(_) => panic!("hostile input must not parse"),
        Err(err) => err,
    };
    let rendered = err.to_string();
    assert!(
        rendered.starts_with("invalid link-plan fragment:"),
        "typed error renders with its prefix: {rendered}"
    );
    assert!(rendered.contains(needle), "expected `{needle}` in: {rendered}");
}

#[test]
fn hostile_edge_specs_yield_typed_errors() {
    assert_parse_error("delay".parse::<EdgeSpec>(), "expected key=value");
    assert_parse_error("delay=fast".parse::<EdgeSpec>(), "bad delay");
    assert_parse_error("delay=99999999999999999999999".parse::<EdgeSpec>(), "bad delay");
    assert_parse_error("jitter=-4".parse::<EdgeSpec>(), "bad jitter");
    assert_parse_error("drop=1.5".parse::<EdgeSpec>(), "outside 0..=1");
    assert_parse_error("drop_ppm=1000001".parse::<EdgeSpec>(), "above 1000000");
    assert_parse_error("drop_ppm=-1".parse::<EdgeSpec>(), "bad drop_ppm");
    assert_parse_error("latency=30".parse::<EdgeSpec>(), "unknown key");
    // And the degenerate-but-valid corner: the empty spec is IDEAL.
    assert_eq!("".parse::<EdgeSpec>().unwrap(), EdgeSpec::IDEAL);
}

#[test]
fn hostile_partition_windows_yield_typed_errors() {
    assert_parse_error("10..20".parse::<PartitionWindow>(), "expected range:group");
    assert_parse_error("10:0".parse::<PartitionWindow>(), "expected start..end");
    assert_parse_error("ten..20:0".parse::<PartitionWindow>(), "bad start");
    assert_parse_error("10..twenty:0".parse::<PartitionWindow>(), "bad end");
    assert_parse_error("99999999999999999999999..7:0".parse::<PartitionWindow>(), "bad start");
    // Reversed and empty windows are rejected, not silently normalized.
    assert_parse_error("500..100:1".parse::<PartitionWindow>(), "empty window");
    assert_parse_error("5..5:0".parse::<PartitionWindow>(), "empty window");
    // Empty groups would partition nobody.
    assert_parse_error("10..20:".parse::<PartitionWindow>(), "group is empty");
    assert_parse_error("10..20: , ,".parse::<PartitionWindow>(), "group is empty");
    assert_parse_error("10..20:0,node3".parse::<PartitionWindow>(), "bad node id");
    assert_parse_error("10..20:70000".parse::<PartitionWindow>(), "bad node id");
}

#[test]
fn hostile_link_plans_yield_typed_errors() {
    assert_parse_error("bogus(delay=1)".parse::<LinkPlan>(), "bogus");
    assert_parse_error("default(delay=1); edge(0-3)".parse::<LinkPlan>(), "");
    assert_parse_error("default(delay=1".parse::<LinkPlan>(), "");
    assert_parse_error("part(20..10:0)".parse::<LinkPlan>(), "empty window");
    assert_parse_error("edge(0->x,delay=5)".parse::<LinkPlan>(), "");
    // The empty plan parses as the default (ideal links, no partitions).
    assert_eq!("".parse::<LinkPlan>().unwrap(), LinkPlan::default());
}
