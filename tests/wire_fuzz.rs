//! Property tests for the wire layer: every message type round-trips, and
//! no byte sequence — hostile or truncated — can panic a decoder. In an
//! unauthenticated protocol the codec *is* the attack surface.

use proptest::prelude::*;

use tetrabft::{Message, ProofData, SuggestData};
use tetrabft_baselines::iths::IthsMsg;
use tetrabft_baselines::ithsblog::BlogMsg;
use tetrabft_baselines::pbft::PbftMsg;
use tetrabft_multishot::{Block, MsMessage};
use tetrabft_types::{Phase, Slot, Value, View, VoteInfo};
use tetrabft_wire::{Reader, Wire, Writer};

fn arb_value() -> impl Strategy<Value = Value> {
    any::<u64>().prop_map(Value::from_u64)
}

fn arb_vote_info() -> impl Strategy<Value = VoteInfo> {
    (any::<u64>(), arb_value()).prop_map(|(v, val)| VoteInfo::new(View(v), val))
}

fn arb_opt_vote() -> impl Strategy<Value = Option<VoteInfo>> {
    proptest::option::of(arb_vote_info())
}

fn arb_core_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), arb_value())
            .prop_map(|(v, val)| Message::Proposal { view: View(v), value: val }),
        (1u8..=4, any::<u64>(), arb_value()).prop_map(|(p, v, val)| Message::Vote {
            phase: Phase::from_u8(p).unwrap(),
            view: View(v),
            value: val,
        }),
        (any::<u64>(), arb_opt_vote(), arb_opt_vote(), arb_opt_vote()).prop_map(|(v, a, b, c)| {
            Message::Suggest {
                view: View(v),
                data: SuggestData { vote2: a, prev_vote2: b, vote3: c },
            }
        }),
        (any::<u64>(), arb_opt_vote(), arb_opt_vote(), arb_opt_vote()).prop_map(|(v, a, b, c)| {
            Message::Proof { view: View(v), data: ProofData { vote1: a, prev_vote1: b, vote4: c } }
        }),
        any::<u64>().prop_map(|v| Message::ViewChange { view: View(v) }),
    ]
}

fn arb_ms_message() -> impl Strategy<Value = MsMessage> {
    prop_oneof![
        (
            any::<u64>(),
            1u64..1000,
            any::<u64>(),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..8)
        )
            .prop_map(|(v, s, parent, txs)| MsMessage::Proposal {
                view: View(v),
                block: Block::new(Slot(s), tetrabft_multishot::BlockHash(parent), txs),
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(s, v, h)| MsMessage::Vote {
            slot: Slot(s),
            view: View(v),
            hash: tetrabft_multishot::BlockHash(h),
        }),
        (any::<u64>(), any::<u64>(), arb_opt_vote(), arb_opt_vote(), arb_opt_vote()).prop_map(
            |(s, v, a, b, c)| MsMessage::Suggest {
                slot: Slot(s),
                view: View(v),
                data: SuggestData { vote2: a, prev_vote2: b, vote3: c },
            }
        ),
        (any::<u64>(), any::<u64>(), arb_opt_vote(), arb_opt_vote(), arb_opt_vote()).prop_map(
            |(s, v, a, b, c)| MsMessage::Proof {
                slot: Slot(s),
                view: View(v),
                data: ProofData { vote1: a, prev_vote1: b, vote4: c },
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(s, v)| MsMessage::ViewChange { slot: Slot(s), view: View(v) }),
    ]
}

proptest! {
    #[test]
    fn core_messages_roundtrip(msg in arb_core_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(Message::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn multishot_messages_roundtrip(msg in arb_ms_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(MsMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine — panicking is not.
        let _ = Message::from_bytes(&bytes);
        let _ = MsMessage::from_bytes(&bytes);
        let _ = IthsMsg::from_bytes(&bytes);
        let _ = BlogMsg::from_bytes(&bytes);
        let _ = PbftMsg::from_bytes(&bytes);
    }

    #[test]
    fn truncations_of_valid_messages_error_cleanly(msg in arb_core_message(), cut in 0usize..64) {
        let bytes = msg.to_bytes();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut - 1];
            prop_assert!(Message::from_bytes(truncated).is_err() || cut + 1 == 0);
        }
    }

    #[test]
    fn framing_survives_arbitrary_chunking(
        msg in arb_core_message(),
        splits in proptest::collection::vec(1usize..16, 0..8),
    ) {
        use tetrabft_wire::frame::{encode_frame, FrameDecoder};
        let framed = encode_frame(&msg.to_bytes()).unwrap();
        let mut dec = FrameDecoder::new();
        let mut fed = 0;
        let mut got = None;
        for s in splits {
            let end = (fed + s).min(framed.len());
            dec.extend(&framed[fed..end]);
            fed = end;
            if let Some(frame) = dec.next_frame().unwrap() {
                got = Some(frame.to_vec());
            }
        }
        dec.extend(&framed[fed..]);
        if let Some(frame) = dec.next_frame().unwrap() {
            got = Some(frame.to_vec());
        }
        let frame = got.expect("frame must complete");
        prop_assert_eq!(Message::from_bytes(&frame).unwrap(), msg);
    }

    #[test]
    fn wire_len_matches_encoding(msg in arb_core_message()) {
        prop_assert_eq!(msg.wire_len(), msg.to_bytes().len());
    }

    #[test]
    fn ms_wire_len_matches_encoding(msg in arb_ms_message()) {
        prop_assert_eq!(msg.wire_len(), msg.to_bytes().len());
    }

    #[test]
    fn varints_roundtrip(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        prop_assert_eq!(w.len(), tetrabft_wire::varint_len(v));
        let mut r = Reader::new(w.as_bytes());
        prop_assert_eq!(r.get_varint_u64().unwrap(), v);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..12)) {
        // Any result is fine — panicking (or consuming on failure) is not.
        let mut r = Reader::new(&bytes);
        if r.get_varint_u64().is_err() {
            prop_assert_eq!(r.remaining(), bytes.len());
        }
        let mut r = Reader::new(&bytes);
        let _ = r.get_varint_u32();
        let mut r = Reader::new(&bytes);
        let _ = r.get_varint_u16();
    }

    #[test]
    fn frame_decoder_never_panics_on_hostile_streams(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        use tetrabft_wire::frame::FrameDecoder;
        let mut dec = FrameDecoder::new();
        'outer: for chunk in &chunks {
            dec.extend(chunk);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    // A hostile prefix poisons the stream; tear down.
                    Err(_) => break 'outer,
                }
            }
        }
    }
}

/// Varint-specific adversarial cases (satellite of wire format v2): every
/// malformed encoding must produce a typed error, never a panic, and the
/// canonical-form rules must hold at the exact boundaries.
mod varint_adversarial {
    use tetrabft_wire::frame::FrameDecoder;
    use tetrabft_wire::{Reader, WireError, Writer};

    #[test]
    fn overlong_encodings_rejected() {
        // Zero padded to 2..=10 bytes; canonical form is a single 0x00.
        for len in 2..=10usize {
            let mut bytes = vec![0x80u8; len - 1];
            bytes.push(0x00);
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverlong), "len {len}");
        }
        // 127 (one-byte canonical) padded to two bytes.
        let mut r = Reader::new(&[0xff, 0x00]);
        assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverlong));
    }

    #[test]
    fn ten_byte_max_width_u64_is_exactly_representable() {
        let mut w = Writer::new();
        w.put_varint(u64::MAX);
        assert_eq!(w.len(), 10);
        let mut r = Reader::new(w.as_bytes());
        assert_eq!(r.get_varint_u64().unwrap(), u64::MAX);
        // One more payload bit overflows.
        let mut over = vec![0xffu8; 9];
        over.push(0x03);
        let mut r = Reader::new(&over);
        assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverflow { target: "u64" }));
    }

    #[test]
    fn truncated_continuation_bytes_are_eof_at_every_length() {
        for len in 1..=9usize {
            let bytes = vec![0x80u8 | 0x7f; len]; // all-continuation prefix
            let mut r = Reader::new(&bytes);
            assert!(
                matches!(r.get_varint_u64(), Err(WireError::UnexpectedEof { .. })),
                "len {len}"
            );
            assert_eq!(r.remaining(), len, "failed read must not consume");
        }
    }

    #[test]
    fn hostile_varint_frame_prefixes() {
        // Over the 16 MiB frame cap (declares 2^32-1).
        let mut dec = FrameDecoder::new();
        dec.extend(&[0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(matches!(dec.next_frame(), Err(WireError::LengthOverflow { .. })));
        // Overlong prefix.
        let mut dec = FrameDecoder::new();
        dec.extend(&[0x80, 0x80, 0x00]);
        assert_eq!(dec.next_frame(), Err(WireError::VarintOverlong));
        // Wider than u64.
        let mut dec = FrameDecoder::new();
        dec.extend(&[0xff; 16]);
        assert_eq!(dec.next_frame(), Err(WireError::VarintOverflow { target: "u64" }));
        // An incomplete but so-far-plausible prefix just waits.
        let mut dec = FrameDecoder::new();
        dec.extend(&[0x80]);
        assert_eq!(dec.next_frame(), Ok(None));
    }
}
