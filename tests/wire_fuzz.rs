//! Property tests for the wire layer: every message type round-trips, and
//! no byte sequence — hostile or truncated — can panic a decoder. In an
//! unauthenticated protocol the codec *is* the attack surface.

use proptest::prelude::*;

use tetrabft::{Message, ProofData, SuggestData};
use tetrabft_baselines::iths::IthsMsg;
use tetrabft_baselines::ithsblog::BlogMsg;
use tetrabft_baselines::pbft::PbftMsg;
use tetrabft_multishot::{Block, MsMessage};
use tetrabft_types::{Phase, Slot, Value, View, VoteInfo};
use tetrabft_wire::Wire;

fn arb_value() -> impl Strategy<Value = Value> {
    any::<u64>().prop_map(Value::from_u64)
}

fn arb_vote_info() -> impl Strategy<Value = VoteInfo> {
    (any::<u64>(), arb_value()).prop_map(|(v, val)| VoteInfo::new(View(v), val))
}

fn arb_opt_vote() -> impl Strategy<Value = Option<VoteInfo>> {
    proptest::option::of(arb_vote_info())
}

fn arb_core_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), arb_value())
            .prop_map(|(v, val)| Message::Proposal { view: View(v), value: val }),
        (1u8..=4, any::<u64>(), arb_value()).prop_map(|(p, v, val)| Message::Vote {
            phase: Phase::from_u8(p).unwrap(),
            view: View(v),
            value: val,
        }),
        (any::<u64>(), arb_opt_vote(), arb_opt_vote(), arb_opt_vote()).prop_map(|(v, a, b, c)| {
            Message::Suggest {
                view: View(v),
                data: SuggestData { vote2: a, prev_vote2: b, vote3: c },
            }
        }),
        (any::<u64>(), arb_opt_vote(), arb_opt_vote(), arb_opt_vote()).prop_map(|(v, a, b, c)| {
            Message::Proof { view: View(v), data: ProofData { vote1: a, prev_vote1: b, vote4: c } }
        }),
        any::<u64>().prop_map(|v| Message::ViewChange { view: View(v) }),
    ]
}

fn arb_ms_message() -> impl Strategy<Value = MsMessage> {
    prop_oneof![
        (
            any::<u64>(),
            1u64..1000,
            any::<u64>(),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..8)
        )
            .prop_map(|(v, s, parent, txs)| MsMessage::Proposal {
                view: View(v),
                block: Block::new(Slot(s), tetrabft_multishot::BlockHash(parent), txs),
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(s, v, h)| MsMessage::Vote {
            slot: Slot(s),
            view: View(v),
            hash: tetrabft_multishot::BlockHash(h),
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(s, v)| MsMessage::ViewChange { slot: Slot(s), view: View(v) }),
    ]
}

proptest! {
    #[test]
    fn core_messages_roundtrip(msg in arb_core_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(Message::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn multishot_messages_roundtrip(msg in arb_ms_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(MsMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine — panicking is not.
        let _ = Message::from_bytes(&bytes);
        let _ = MsMessage::from_bytes(&bytes);
        let _ = IthsMsg::from_bytes(&bytes);
        let _ = BlogMsg::from_bytes(&bytes);
        let _ = PbftMsg::from_bytes(&bytes);
    }

    #[test]
    fn truncations_of_valid_messages_error_cleanly(msg in arb_core_message(), cut in 0usize..64) {
        let bytes = msg.to_bytes();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut - 1];
            prop_assert!(Message::from_bytes(truncated).is_err() || cut + 1 == 0);
        }
    }

    #[test]
    fn framing_survives_arbitrary_chunking(
        msg in arb_core_message(),
        splits in proptest::collection::vec(1usize..16, 0..8),
    ) {
        use tetrabft_wire::frame::{encode_frame, FrameDecoder};
        let framed = encode_frame(&msg.to_bytes());
        let mut dec = FrameDecoder::new();
        let mut fed = 0;
        let mut got = None;
        for s in splits {
            let end = (fed + s).min(framed.len());
            dec.extend(&framed[fed..end]);
            fed = end;
            if let Some(frame) = dec.next_frame().unwrap() {
                got = Some(frame);
            }
        }
        dec.extend(&framed[fed..]);
        if let Some(frame) = dec.next_frame().unwrap() {
            got = Some(frame);
        }
        let frame = got.expect("frame must complete");
        prop_assert_eq!(Message::from_bytes(&frame).unwrap(), msg);
    }

    #[test]
    fn wire_len_matches_encoding(msg in arb_core_message()) {
        prop_assert_eq!(msg.wire_len(), msg.to_bytes().len());
    }
}
