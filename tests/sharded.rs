//! The sharded multi-instance mode: k independent consensus instance
//! groups must behave like one logical chain — a gapless global finalized
//! stream, deterministic interleaving, throughput scaling with k, and
//! consistency inside every shard.

use tetrabft_suite::prelude::*;

fn sharded(k: usize, params: Params) -> ShardedSim {
    let cfg = Config::new(4).unwrap();
    ShardedSim::new(
        k,
        4,
        0,
        |_, _| LinkPolicy::synchronous(1),
        move |shard, id| {
            let mut node = MultiShotNode::new(cfg, params, id);
            // Every node pre-queues shard-routed txs, as a gateway
            // fanning client traffic over the shards would.
            for t in 0..128u32 {
                let tx = format!("s{shard}-n{id}-t{t}").into_bytes();
                node.submit_tx(tx).unwrap();
            }
            node
        },
    )
}

#[test]
fn merged_stream_is_gapless_and_consistent_across_nodes() {
    let mut sim = sharded(3, Params::new(1_000));
    sim.run_until(Time(40));
    let reference = sim.merged_chain(NodeId(0));
    assert!(reference.len() > 80, "3 shards × ~35 blocks, got {}", reference.len());
    for (i, g) in reference.iter().enumerate() {
        assert_eq!(g.global_slot, i as u64 + 1, "no gaps in the global stream");
    }
    for i in 1..4u16 {
        let other = sim.merged_chain(NodeId(i));
        let common = reference.len().min(other.len());
        assert_eq!(
            &reference[..common],
            &other[..common],
            "node {i}'s merged chain must prefix-agree"
        );
    }
}

#[test]
fn txs_per_horizon_scale_with_k() {
    let txs_finalized = |k: usize| -> usize {
        let mut sim = sharded(k, Params::new(1_000).with_max_block_txs(16));
        sim.run_until(Time(30));
        sim.merged_chain(NodeId(0)).iter().map(|g| g.fin.block.txs.len()).sum()
    };
    let (one, four) = (txs_finalized(1), txs_finalized(4));
    assert!(
        four >= 3 * one,
        "4 shards must finalize ≳4× the txs of 1 in the same horizon ({one} vs {four})"
    );
}

#[test]
fn sharded_runs_are_a_pure_function_of_their_inputs() {
    let run = || {
        let mut sim = sharded(4, Params::new(1_000));
        sim.run_until(Time(35));
        sim.merged_chain(NodeId(2))
            .into_iter()
            .map(|g| (g.global_slot, g.shard, g.fin.hash.0, g.fin.block.txs.len()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "deterministic interleaving across shards");
}

#[test]
fn shard_routing_partitions_txs() {
    let spec = ShardSpec::new(4);
    let mut hit = [false; 4];
    for t in 0..256u32 {
        hit[spec.route_tx(&t.to_be_bytes())] = true;
    }
    assert!(hit.iter().all(|h| *h), "every shard receives some traffic");
}

#[test]
fn merge_iterator_reorders_shard_skew() {
    // Shard 1 finishes far ahead of shard 0; the merge must withhold its
    // blocks until shard 0 catches up, never emitting out of order.
    let fin = |slot: u64, payload: &str| {
        let block = Block::new(Slot(slot), GENESIS_HASH, vec![payload.as_bytes().to_vec()]);
        Finalized { slot: Slot(slot), hash: block.hash(), block }
    };
    let mut merge = FinalizedMerge::new(ShardSpec::new(2));
    for s in 1..=3 {
        merge.push(1, fin(s, "fast"));
    }
    assert!(merge.next().is_none(), "nothing can merge before shard 0's slot 1");
    assert_eq!(merge.next_global_slot(), 1);
    merge.push(0, fin(1, "slow"));
    let emitted: Vec<u64> = merge.by_ref().map(|g| g.global_slot).collect();
    assert_eq!(emitted, vec![1, 2], "global 3 (= shard 0 local 2) is still missing");
    merge.push(0, fin(2, "slow"));
    let emitted: Vec<u64> = merge.by_ref().map(|g| g.global_slot).collect();
    assert_eq!(emitted, vec![3, 4], "global 5 (= shard 0 local 3) is still missing");
    merge.push(0, fin(3, "slow"));
    let emitted: Vec<u64> = merge.by_ref().map(|g| g.global_slot).collect();
    assert_eq!(emitted, vec![5, 6], "shard 0 catching up releases the rest");
}
