//! Cross-crate integration tests: Basic TetraBFT under the simulator, at
//! several system sizes, fault placements, and network regimes.

use tetrabft::strategies::{EquivocatingLeader, LyingHistorian, VoteAmplifier};
use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

fn honest(cfg: Config, delta: u64) -> impl Fn(NodeId) -> TetraNode {
    move |id| TetraNode::new(cfg, Params::new(delta), id, Value::from_u64(u64::from(id.0) + 1))
}

fn assert_agreement(sim: &Sim<Message, Value>) {
    let first = sim.outputs()[0].output;
    assert!(
        sim.outputs().iter().all(|o| o.output == first),
        "agreement violated: {:?}",
        sim.outputs()
    );
}

#[test]
fn latency_is_five_delays_for_all_system_sizes() {
    for n in [1usize, 2, 3, 4, 7, 13, 31, 52] {
        let cfg = Config::new(n).unwrap();
        let mut sim =
            SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(honest(cfg, 1_000));
        assert!(sim.run_until_outputs(n, 20_000_000), "n={n}");
        let times: Vec<u64> = sim.outputs().iter().map(|o| o.time.0).collect();
        if n >= 3 {
            // The paper's good case: exactly 5 message delays.
            assert!(times.iter().all(|t| *t == 5), "n={n}: {times:?}");
        } else {
            // Degenerate systems decide through loopback shortcuts: n = 1
            // entirely at t = 0; at n = 2 the leader's free loopback saves
            // it one delay (4) while the follower needs the full 5.
            assert!(times.iter().all(|t| *t <= 5), "n={n}: {times:?}");
        }
        assert_agreement(&sim);
    }
}

#[test]
fn f_crashes_at_every_position_still_decide() {
    let n = 7; // f = 2
    for (a, b) in [(0u16, 1u16), (0, 6), (3, 4), (5, 6)] {
        let cfg = Config::new(n).unwrap();
        let mut sim =
            SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id.0 == a || id.0 == b {
                    Box::new(tetrabft_suite::sim::SilentNode::new())
                } else {
                    Box::new(TetraNode::new(
                        cfg,
                        Params::new(5),
                        id,
                        Value::from_u64(u64::from(id.0) + 1),
                    ))
                }
            });
        assert!(sim.run_until_outputs(n - 2, 20_000_000), "crashes at {a},{b}");
        assert_agreement(&sim);
    }
}

#[test]
fn one_crash_over_f_means_no_progress_but_no_disagreement() {
    // n = 4, f = 1, but two nodes are down: quorums are unreachable. The
    // protocol must stall — not decide inconsistently.
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
        if id.0 <= 1 {
            Box::new(tetrabft_suite::sim::SilentNode::new())
        } else {
            Box::new(TetraNode::new(cfg, Params::new(5), id, Value::from_u64(9)))
        }
    });
    sim.run_until(Time(2_000));
    assert!(sim.outputs().is_empty(), "no quorum ⇒ no decision (but also no split)");
}

#[test]
fn mixed_adversaries_at_the_fault_budget() {
    // n = 10 tolerates f = 3: one equivocator, one liar, one amplifier.
    let n = 10;
    for seed in 0..5 {
        let cfg = Config::new(n).unwrap();
        let mut sim = SimBuilder::new(n).seed(seed).policy(LinkPolicy::jittered(1, 5)).build_boxed(
            move |id| match id.0 {
                0 => Box::new(EquivocatingLeader::new(
                    cfg,
                    Value::from_u64(111),
                    Value::from_u64(222),
                )),
                4 => Box::new(LyingHistorian::new(cfg, Value::from_u64(333))),
                7 => Box::new(VoteAmplifier::new()),
                _ => Box::new(TetraNode::new(
                    cfg,
                    Params::new(25),
                    id,
                    Value::from_u64(u64::from(id.0)),
                )),
            },
        );
        assert!(sim.run_until_outputs(n - 3, 50_000_000), "seed {seed}");
        assert_agreement(&sim);
    }
}

#[test]
fn decisions_survive_every_gst_placement() {
    for gst in [0u64, 17, 100, 333] {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::partial_synchrony(Time(gst), 10, 2))
            .build(honest(cfg, 10));
        assert!(sim.run_until_outputs(4, 20_000_000), "gst={gst}");
        assert_agreement(&sim);
        assert!(sim.outputs()[0].time.0 >= gst.saturating_sub(1), "no decision before GST");
    }
}

#[test]
fn pre_gst_delay_without_loss_also_recovers() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::partial_synchrony_delaying(Time(120), 10, 3))
        .build(honest(cfg, 10));
    assert!(sim.run_until_outputs(4, 20_000_000));
    assert_agreement(&sim);
}

#[test]
fn validity_holds_under_unanimity_and_any_leader() {
    // All nodes propose 77; whatever view ends up deciding, the decision
    // must be 77 (validity), even with a crashed node shifting leadership.
    for crash in 0u16..4 {
        let cfg = Config::new(4).unwrap();
        let mut sim =
            SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id.0 == crash {
                    Box::new(tetrabft_suite::sim::SilentNode::new())
                } else {
                    Box::new(TetraNode::new(cfg, Params::new(5), id, Value::from_u64(77)))
                }
            });
        assert!(sim.run_until_outputs(3, 20_000_000));
        assert!(sim.outputs().iter().all(|o| o.output == Value::from_u64(77)));
    }
}

#[test]
fn unit_delay_traffic_is_quadratic_total_linear_per_node() {
    let bytes = |n: usize| {
        let cfg = Config::new(n).unwrap();
        let mut sim =
            SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(honest(cfg, 1_000));
        assert!(sim.run_until_outputs(n, 50_000_000));
        (sim.metrics().total_bytes_sent() as f64, sim.metrics().max_node_bytes_sent() as f64)
    };
    let (total_a, node_a) = bytes(8);
    let (total_b, node_b) = bytes(32);
    // 4× nodes: totals ≤ ~16×(+slack), per-node ≤ ~4×(+slack).
    assert!(total_b / total_a < 16.0 * 1.6, "total {total_a} → {total_b}");
    assert!(node_b / node_a < 4.0 * 1.6, "per-node {node_a} → {node_b}");
}
