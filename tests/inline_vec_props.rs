//! Model-based properties for [`InlineVec`]: every operation sequence must
//! behave exactly like a plain `Vec`, inline or spilled, and the
//! representation boundary (the spill at `N`) must be invisible to every
//! observer except `spilled()` itself.

use proptest::prelude::*;
use tetrabft_types::InlineVec;

/// Operations exercised against the `Vec` model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
    SwapRemove(usize),
    Clear,
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1000).prop_map(Op::Push),
        Just(Op::Pop),
        (0usize..16).prop_map(Op::SwapRemove),
        Just(Op::Clear),
        Just(Op::Drain),
    ]
}

/// Applies one op to both the model and the subject, asserting agreement on
/// every return value.
fn apply<const N: usize>(op: Op, model: &mut Vec<u64>, subject: &mut InlineVec<u64, N>) {
    match op {
        Op::Push(x) => {
            model.push(x);
            subject.push(x);
        }
        Op::Pop => assert_eq!(model.pop(), subject.pop()),
        Op::SwapRemove(i) => {
            // Only valid indices; out-of-bounds panics are covered by a
            // dedicated unit test.
            if i < model.len() {
                assert_eq!(model.swap_remove(i), subject.swap_remove(i));
            }
        }
        Op::Clear => {
            model.clear();
            subject.clear();
        }
        Op::Drain => {
            let drained: Vec<u64> = subject.drain().collect();
            assert_eq!(std::mem::take(model), drained);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary op sequences agree with the `Vec` model at a small inline
    /// capacity (spill happens constantly).
    #[test]
    fn matches_vec_model_small_capacity(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut model: Vec<u64> = Vec::new();
        let mut subject: InlineVec<u64, 3> = InlineVec::new();
        for op in ops {
            apply(op, &mut model, &mut subject);
            prop_assert_eq!(model.len(), subject.len());
            prop_assert_eq!(model.last(), subject.last());
            prop_assert!(model.iter().eq(subject.iter()), "iteration order diverged");
        }
    }

    /// Same model agreement at a large inline capacity (spill is rare).
    #[test]
    fn matches_vec_model_large_capacity(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut model: Vec<u64> = Vec::new();
        let mut subject: InlineVec<u64, 32> = InlineVec::new();
        for op in ops {
            apply(op, &mut model, &mut subject);
            prop_assert!(model.iter().eq(subject.iter()), "iteration order diverged");
        }
    }

    /// Pushing k elements spills exactly when k > N, and the spill never
    /// changes the observable sequence.
    #[test]
    fn spill_boundary_is_exact(k in 0usize..20) {
        let mut v: InlineVec<u64, 5> = InlineVec::new();
        for x in 0..k as u64 {
            v.push(x);
        }
        prop_assert_eq!(v.spilled(), k > 5);
        prop_assert_eq!(v.len(), k);
        prop_assert!(v.iter().copied().eq(0..k as u64));
    }

    /// Clone preserves the sequence and is independent of the original.
    #[test]
    fn clone_is_deep_and_order_preserving(xs in proptest::collection::vec(0u64..100, 0..20)) {
        let original: InlineVec<u64, 4> = xs.iter().copied().collect();
        let mut copy = original.clone();
        prop_assert_eq!(&copy, &original);
        prop_assert!(copy.iter().eq(xs.iter()));
        copy.push(12345);
        prop_assert_eq!(original.len(), xs.len(), "clone must not alias the original");
    }

    /// Drain yields push order and leaves an empty, reusable buffer.
    #[test]
    fn drain_restores_empty_buffer(xs in proptest::collection::vec(0u64..100, 0..20)) {
        let mut v: InlineVec<u64, 4> = xs.iter().copied().collect();
        let drained: Vec<u64> = v.drain().collect();
        prop_assert_eq!(drained, xs.clone());
        prop_assert!(v.is_empty());
        prop_assert!(!v.spilled());
        // The buffer stays usable after a drain.
        v.extend(xs.iter().copied());
        prop_assert!(v.iter().eq(xs.iter()));
    }

    /// Owned iteration equals borrowed iteration equals the source.
    #[test]
    fn into_iter_matches_iter(xs in proptest::collection::vec(0u64..100, 0..20)) {
        let v: InlineVec<u64, 6> = xs.iter().copied().collect();
        let borrowed: Vec<u64> = v.iter().copied().collect();
        let owned: Vec<u64> = v.into_iter().collect();
        prop_assert_eq!(&borrowed, &xs);
        prop_assert_eq!(owned, xs);
    }
}
