//! The ledger on consensus, end to end: conservation and rejection
//! invariants under arbitrary traffic (proptests), byte-identical state
//! roots across independently-executing replicas in every runtime (sim
//! n=4, sharded sim k=2, TCP cluster), and forged divergence surfacing as
//! a typed `StateRootMismatch` naming the offending block.

use proptest::prelude::*;
use tetrabft_suite::prelude::*;

/// Canonical bytes of one transfer.
fn pay(from: u64, to: u64, amount: u64, nonce: u64) -> Vec<u8> {
    Transfer { from: AccountId(from), to: AccountId(to), amount, nonce }.canonical_bytes()
}

fn fin(slot: u64, txs: Vec<Vec<u8>>) -> Finalized {
    let block = Block::new(Slot(slot), GENESIS_HASH, txs);
    Finalized { slot: Slot(slot), hash: block.hash(), block }
}

// ---- property tests -----------------------------------------------------

/// An arbitrary transfer intent over a small account universe: whether it
/// is valid depends on the ledger state when it executes.
fn intent_strategy() -> impl Strategy<Value = (u64, u64, u64, u64)> {
    // (from 1..=5, to 1..=5, amount 0..=400, nonce_skew 0..=2). Self-pays,
    // zero amounts, overdrafts, and nonce gaps all occur naturally.
    (1u64..=5, 1u64..=5, 0u64..=400, 0u64..=2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total balance is conserved under arbitrary traffic — applied
    /// transfers move funds, rejected ones change nothing — and two
    /// replicas executing the same stream agree on every root.
    #[test]
    fn conservation_and_replica_agreement(
        intents in proptest::collection::vec(intent_strategy(), 0..120),
        per_block in 1usize..8,
    ) {
        let genesis: Vec<(AccountId, u64)> =
            (1..=5).map(|id| (AccountId(id), 200)).collect();
        let supply: u128 = 5 * 200;
        let mut a = LedgerReplica::new(genesis.clone());
        let mut b = LedgerReplica::new(genesis);
        // Track each account's expected nonce so *some* transfers are
        // valid; the skew re-introduces replays (skew 0 twice) and gaps.
        let mut nonces = [0u64; 6];
        for (slot, chunk) in intents.chunks(per_block).enumerate() {
            let txs: Vec<Vec<u8>> = chunk
                .iter()
                .map(|&(from, to, amount, skew)| {
                    let nonce = nonces[from as usize].saturating_sub(1).saturating_add(skew);
                    let bytes = pay(from, to, amount, nonce);
                    // Mirror the ledger's own validity rule to advance the
                    // model nonce only when the transfer will apply.
                    if from != to && amount > 0 && nonce == nonces[from as usize] {
                        nonces[from as usize] += 1; // may still overdraft; harmless over-advance is
                                                    // corrected below by re-reading the ledger
                    }
                    bytes
                })
                .collect();
            let block = fin(slot as u64 + 1, txs);
            a.push(0, &block);
            b.push(0, &block);
            // Re-sync the model nonces from the authoritative ledger (the
            // model cannot see overdrafts without duplicating the ledger).
            for id in 1..=5u64 {
                nonces[id as usize] = a.ledger().account(AccountId(id)).nonce;
            }
            prop_assert_eq!(
                a.ledger().accounts().total_balance(),
                supply,
                "conservation violated at slot {}",
                slot + 1
            );
        }
        prop_assert_eq!(a.root(), b.root());
        prop_assert!(a.cross_check(&b).is_ok());
    }

    /// Valid transfer sequences all apply: nonces advance contiguously and
    /// funds arrive exactly once.
    #[test]
    fn valid_sequences_apply_fully(amounts in proptest::collection::vec(1u64..=10, 1..40)) {
        let mut replica = LedgerReplica::new([(AccountId(1), 1_000)]);
        let txs: Vec<Vec<u8>> =
            amounts.iter().enumerate().map(|(i, amt)| pay(1, 2, *amt, i as u64)).collect();
        replica.push(0, &fin(1, txs));
        let receipt = &replica.receipts()[0];
        prop_assert_eq!(receipt.applied, amounts.len());
        prop_assert!(receipt.rejected.is_empty());
        let moved: u64 = amounts.iter().sum();
        prop_assert_eq!(replica.ledger().account(AccountId(2)).balance, moved);
        prop_assert_eq!(replica.ledger().account(AccountId(1)).nonce, amounts.len() as u64);
    }

    /// A replayed transfer and an overdraft both reject deterministically
    /// and leave the state root exactly where a clean execution put it.
    #[test]
    fn replay_and_overdraft_never_move_the_root(amount in 1u64..=100) {
        let run = |inject_invalid: bool| {
            let mut replica = LedgerReplica::new([(AccountId(1), 100)]);
            let valid = pay(1, 2, amount, 0);
            replica.push(0, &fin(1, vec![valid.clone()]));
            let mut txs = Vec::new();
            if inject_invalid {
                txs.push(valid.clone()); // replay: nonce 0 again
                txs.push(pay(1, 2, 10_000, 1)); // overdraft
            }
            replica.push(0, &fin(2, txs));
            replica
        };
        let (clean, dirty) = (run(false), run(true));
        let receipt = &dirty.receipts()[1];
        prop_assert_eq!(receipt.applied, 0);
        prop_assert_eq!(receipt.rejected.len(), 2);
        prop_assert!(matches!(receipt.rejected[0].1, tetrabft_suite::ledger::ExecError::BadNonce { expected: 1, got: 0 }));
        prop_assert!(matches!(receipt.rejected[1].1, tetrabft_suite::ledger::ExecError::Overdraft { .. }));
        // Same accounts ⇒ same account digest; the chained roots agree
        // because both executed the same two slots over the same state.
        prop_assert_eq!(clean.root(), dirty.root());
    }
}

// ---- typed submission & admission through the node ----------------------

#[test]
fn admission_hook_refuses_static_failures_at_the_door() {
    let cfg = Config::new(4).unwrap();
    let mut node =
        MultiShotNode::new(cfg, Params::new(100), NodeId(0)).with_admission(transfer_admission);
    let ok = Transfer { from: AccountId(1), to: AccountId(2), amount: 5, nonce: 0 };
    node.submit_tx(&ok).unwrap();
    assert!(matches!(
        node.submit_tx(b"free-form bytes".to_vec()),
        Err(SubmitError::Malformed { .. })
    ));
    let zero = Transfer { amount: 0, ..ok };
    assert!(matches!(node.submit_tx(&zero), Err(SubmitError::Rejected { .. })));
    let selfpay = Transfer { to: AccountId(1), nonce: 1, ..ok };
    assert!(matches!(node.submit_tx(&selfpay), Err(SubmitError::Rejected { .. })));
    // Stateful validity is not admission's business: a future nonce and an
    // absurd amount both pass (execution rejects them deterministically).
    let future = Transfer { nonce: 99, ..ok };
    node.submit_tx(&future).unwrap();
    assert_eq!(node.mempool_len(), 2);
}

#[test]
fn typed_dedup_catches_resubmission_in_either_form() {
    let cfg = Config::new(4).unwrap();
    let mut node = MultiShotNode::new(cfg, Params::new(100), NodeId(0));
    let t = Transfer { from: AccountId(1), to: AccountId(2), amount: 5, nonce: 0 };
    node.submit_tx(&t).unwrap();
    // Typed resubmission and raw resubmission of the same canonical bytes
    // are the same identity.
    assert_eq!(node.submit_tx(&t), Err(SubmitError::Duplicate));
    assert_eq!(node.submit_tx(t.canonical_bytes()), Err(SubmitError::Duplicate));
    // A different nonce is a different transaction.
    node.submit_tx(&Transfer { nonce: 1, ..t }).unwrap();
    assert_eq!(node.mempool_len(), 2);
}

// ---- replica agreement: deterministic sim, n = 4 ------------------------

/// Runs an n=4 sim where each node submits typed transfers from its own
/// account, then executes every node's finalized stream in its own
/// replica. All roots must be byte-identical.
#[test]
fn sim_replicas_agree_on_state_roots() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let genesis: Vec<(AccountId, u64)> = (1..=n as u64).map(|id| (AccountId(id), 1_000)).collect();
    let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(|id| {
        let mut node =
            MultiShotNode::new(cfg, Params::new(100), id).with_admission(transfer_admission);
        // Node i pays from account i+1: each transfer enters exactly one
        // mempool, so it finalizes exactly once.
        let from = id.0 as u64 + 1;
        for t in 0..20u64 {
            let tx =
                Transfer { from: AccountId(from), to: AccountId(100 + from), amount: 3, nonce: t };
            node.submit_tx(&tx).unwrap();
        }
        node
    });
    sim.run_until(Time(60));

    let mut replicas: Vec<LedgerReplica> =
        (0..n).map(|_| LedgerReplica::new(genesis.clone())).collect();
    for record in sim.outputs() {
        replicas[record.node.index()].push(0, &record.output);
    }
    let min_height = replicas.iter().map(|r| r.height()).min().unwrap();
    assert!(min_height > 20, "chain must make progress, got height {min_height}");
    let reference = &replicas[0];
    for (i, other) in replicas.iter().enumerate().skip(1) {
        reference.cross_check(other).unwrap_or_else(|e| panic!("replica {i} diverged: {e}"));
        let common = (min_height as usize).saturating_sub(1);
        assert_eq!(
            reference.receipts()[common].root,
            other.receipts()[common].root,
            "replica {i} root differs at common height"
        );
    }
    // The traffic executed: every node's 20 transfers applied somewhere in
    // the chain, and conservation held throughout.
    let applied: usize = reference.receipts().iter().map(|r| r.applied).sum();
    assert_eq!(applied, n * 20, "every submitted transfer applies exactly once");
    assert_eq!(reference.ledger().accounts().total_balance(), 4 * 1_000);
    for from in 1..=n as u64 {
        assert_eq!(reference.ledger().account(AccountId(100 + from)).balance, 60);
        assert_eq!(reference.ledger().account(AccountId(from)).nonce, 20);
    }
}

// ---- replica agreement: sharded sim, k = 2 ------------------------------

/// k=2 sharded run with transfers routed to shards by *paying account*:
/// per-account nonce order survives the slot partition, the merged global
/// stream executes identically on every node's replica, and roots agree.
#[test]
fn sharded_replicas_agree_on_state_roots() {
    let k = 2;
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let spec = ShardSpec::new(k);
    let accounts: Vec<u64> = (1..=8).collect();
    let genesis: Vec<(AccountId, u64)> = accounts.iter().map(|id| (AccountId(*id), 500)).collect();

    let mut sim = ShardedSim::new(
        k,
        n,
        0,
        |_, _| LinkPolicy::synchronous(1),
        |shard, id| {
            let mut node =
                MultiShotNode::new(cfg, Params::new(1_000), id).with_admission(transfer_admission);
            if id == NodeId(0) {
                // One gateway node per shard queues the shard's accounts —
                // routed by paying account, so each account's transfers
                // stay on one shard in nonce order.
                for from in accounts.iter().copied() {
                    if shard_of_account(&spec, AccountId(from)) != shard {
                        continue;
                    }
                    for t in 0..10u64 {
                        let tx = Transfer {
                            from: AccountId(from),
                            to: AccountId(200 + from),
                            amount: 2,
                            nonce: t,
                        };
                        node.submit_tx(&tx).unwrap();
                    }
                }
            }
            node
        },
    );
    sim.run_until(Time(80));

    // Each node folds its own k merged streams into its own replica.
    let mut roots = Vec::new();
    let mut reference: Option<LedgerReplica> = None;
    for node in 0..n as u16 {
        let mut replica = LedgerReplica::sharded(spec, genesis.clone());
        for (j, shard) in sim.shards().iter().enumerate() {
            for record in shard.outputs().iter().filter(|o| o.node == NodeId(node)) {
                replica.push(j, &record.output);
            }
        }
        assert!(replica.height() > 40, "merged chain must progress");
        if let Some(reference) = &reference {
            reference.cross_check(&replica).unwrap_or_else(|e| panic!("node {node} diverged: {e}"));
        }
        roots.push(replica.receipts().last().unwrap().root);
        if reference.is_none() {
            reference = Some(replica);
        }
    }
    let reference = reference.unwrap();
    // All 80 transfers applied exactly once despite the shard split.
    let applied: usize = reference.receipts().iter().map(|r| r.applied).sum();
    assert_eq!(applied, 8 * 10);
    assert_eq!(reference.ledger().accounts().total_balance(), 8 * 500);
    for from in accounts {
        assert_eq!(reference.ledger().account(AccountId(200 + from)).balance, 20);
    }
}

// ---- replica agreement: real TCP cluster --------------------------------

/// A live four-node TCP cluster with typed transfers submitted through
/// `SubmitHandle`s: every node's finalized stream executes to the same
/// per-block roots as the others — the same check as the sim tests, over
/// real sockets.
#[test]
fn tcp_cluster_replicas_agree_on_state_roots() {
    use std::time::{Duration, Instant};
    use tetrabft_suite::net::Cluster;

    let n = 4;
    let total = 12u64;
    let cfg = Config::new(n).unwrap();
    let genesis = [(AccountId(1), 1_000)];
    let (mut cluster, submitters) = Cluster::spawn_submitting(n, |id| {
        MultiShotNode::new(cfg, Params::new(300), id).with_admission(transfer_admission)
    })
    .expect("cluster spawns");
    for t in 0..total {
        let tx = Transfer { from: AccountId(1), to: AccountId(2), amount: 5, nonce: t };
        // Submit to one node only: exactly-once inclusion without relying
        // on cross-node dedup.
        submitters[0].submit(&tx).expect("cluster is running");
    }

    let mut replicas: Vec<LedgerReplica> = (0..n).map(|_| LedgerReplica::new(genesis)).collect();
    let mut applied = vec![0usize; n];
    let deadline = Instant::now() + Duration::from_secs(60);
    while applied.iter().any(|a| *a < total as usize) {
        assert!(Instant::now() < deadline, "transfers must finalize within 60s: {applied:?}");
        let Some((node, fin)) = cluster.next_output_timeout(Duration::from_secs(30)) else {
            continue;
        };
        let i = node.index();
        let before = replicas[i].receipts().len();
        replicas[i].push(0, &fin);
        applied[i] += replicas[i].receipts()[before..].iter().map(|r| r.applied).sum::<usize>();
    }
    let reference = &replicas[0];
    for (i, other) in replicas.iter().enumerate().skip(1) {
        reference.cross_check(other).unwrap_or_else(|e| panic!("node {i} diverged: {e}"));
    }
    // Every replica that executed all 12 transfers agrees on the balances.
    for replica in &replicas {
        assert_eq!(replica.ledger().account(AccountId(2)).balance, total * 5);
        assert_eq!(replica.ledger().account(AccountId(1)).nonce, total);
        assert_eq!(replica.ledger().accounts().total_balance(), 1_000);
    }
}

// ---- forged divergence --------------------------------------------------

/// A replica that executes a forged block (same chain, tampered payload)
/// is caught by the root cross-check, which names the offending block.
#[test]
fn forged_execution_is_detected_as_state_root_mismatch() {
    let genesis = [(AccountId(1), 100), (AccountId(2), 100)];
    let honest_blocks: Vec<Finalized> = vec![
        fin(1, vec![pay(1, 2, 10, 0)]),
        fin(2, vec![pay(2, 1, 5, 0)]),
        fin(3, vec![pay(1, 2, 7, 1)]),
        fin(4, vec![]),
    ];
    let mut honest = LedgerReplica::new(genesis);
    let mut forged = LedgerReplica::new(genesis);
    for (i, block) in honest_blocks.iter().enumerate() {
        honest.push(0, block);
        if i == 2 {
            // The forger inflates its own slot-3 payment.
            forged.push(0, &fin(3, vec![pay(1, 2, 70, 1)]));
        } else {
            forged.push(0, block);
        }
    }
    let err = honest.cross_check(&forged).unwrap_err();
    assert_eq!(err.global_slot, 3, "the first divergent block is named");
    assert_ne!(err.ours, err.theirs);
    assert!(err.to_string().contains("global slot 3"), "error names the block: {err}");
    // Divergence is sticky: the final roots still differ though slot 4 was
    // identical on both sides.
    assert_ne!(honest.root(), forged.root());
}
