//! Adversarial multi-shot scenarios: block equivocation, vote withholding,
//! and network partitions. The multi-shot consistency property (no forked
//! finalized prefixes) must survive all of them with f ≤ 1 of n = 4.

use tetrabft::Params;
use tetrabft_multishot::{Block, Finalized, MsMessage, MultiShotNode};
use tetrabft_sim::{Context, Input, LinkPolicy, Node, Route, RouteEnv, Sim, SimBuilder, Time};
use tetrabft_types::{Config, NodeId, Slot, View};

fn assert_no_fork(sim: &Sim<MsMessage, Finalized>, honest: &[u16]) {
    let chains: Vec<Vec<(u64, u64)>> = honest
        .iter()
        .map(|i| {
            sim.outputs()
                .iter()
                .filter(|o| o.node == NodeId(*i))
                .map(|o| (o.output.slot.0, o.output.hash.0))
                .collect()
        })
        .collect();
    let longest = chains.iter().max_by_key(|c| c.len()).unwrap().clone();
    for (i, chain) in chains.iter().enumerate() {
        assert_eq!(
            &longest[..chain.len()],
            &chain[..],
            "node {} forked against the longest chain",
            honest[i]
        );
    }
}

/// A Byzantine block producer: whenever it would lead a slot at view 0 it
/// sends *different* blocks to different halves of the network, trying to
/// split notarization.
struct EquivocatingProducer {
    cfg: Config,
    me: NodeId,
}

impl Node for EquivocatingProducer {
    type Msg = MsMessage;
    type Output = Finalized;

    fn handle(&mut self, input: Input<MsMessage>, ctx: &mut Context<'_, MsMessage, Finalized>) {
        // React to any proposal for slot s−1 by equivocating on slot s when
        // we lead it.
        let Input::Deliver { from, msg } = input else { return };
        if from == ctx.me() {
            return;
        }
        if let MsMessage::Proposal { view, block } = msg {
            let next = Slot(block.slot.0 + 1);
            if MultiShotNode::leader_of(&self.cfg, next, View(0)) != self.me || !view.is_zero() {
                return;
            }
            let parent = block.hash();
            let block_a = Block::new(next, parent, vec![b"left".to_vec()]);
            let block_b = Block::new(next, parent, vec![b"right".to_vec()]);
            let half = self.cfg.n() / 2;
            for peer in self.cfg.nodes() {
                let block = if peer.index() < half { block_a.clone() } else { block_b.clone() };
                ctx.send(peer, MsMessage::Proposal { view: View(0), block });
            }
        }
    }
}

#[test]
fn equivocating_block_producer_cannot_fork_the_chain() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
        if id == NodeId(1) {
            Box::new(EquivocatingProducer { cfg, me: id })
        } else {
            Box::new(MultiShotNode::new(cfg, Params::new(5), id))
        }
    });
    sim.run_until(Time(600));
    assert_no_fork(&sim, &[0, 2, 3]);
    let tip = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| o.output.slot.0)
        .max()
        .unwrap_or(0);
    assert!(tip >= 10, "the chain must survive the split attempts, tip={tip}");
}

/// A node that participates but never votes — starves quorums by exactly
/// one vote whenever another node is down. With only this withholder
/// faulty, the chain must still grow (3 of 4 vote).
struct VoteWithholder {
    inner: MultiShotNode,
}

impl Node for VoteWithholder {
    type Msg = MsMessage;
    type Output = Finalized;

    fn handle(&mut self, input: Input<MsMessage>, ctx: &mut Context<'_, MsMessage, Finalized>) {
        use tetrabft_sim::{Action, ActionBuf, Dest};
        let mut buf: ActionBuf<MsMessage, Finalized> = ActionBuf::new();
        {
            let mut inner_ctx = Context::buffered(ctx.me(), ctx.n(), ctx.now(), &mut buf);
            self.inner.handle(input, &mut inner_ctx);
        }
        for action in buf {
            match action {
                Action::Send { msg: MsMessage::Vote { .. }, .. } => {} // withheld
                Action::Send { dest, msg } => match dest {
                    Dest::All => ctx.broadcast(msg),
                    Dest::Node(to) => ctx.send(to, msg),
                },
                Action::SetTimer { id, after } => ctx.set_timer(id, after),
                Action::CancelTimer { id } => ctx.cancel_timer(id),
                Action::Output(out) => ctx.output(out),
            }
        }
    }
}

#[test]
fn vote_withholding_slows_but_does_not_stop_the_chain() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
        if id == NodeId(3) {
            Box::new(VoteWithholder { inner: MultiShotNode::new(cfg, Params::new(5), id) })
        } else {
            Box::new(MultiShotNode::new(cfg, Params::new(5), id))
        }
    });
    sim.run_until(Time(600));
    assert_no_fork(&sim, &[0, 1, 2]);
    let tip = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| o.output.slot.0)
        .max()
        .unwrap_or(0);
    assert!(tip >= 20, "three voters are a quorum; the chain must advance, tip={tip}");
}

#[test]
fn partition_heals_without_forking() {
    // Nodes {0,1} vs {2,3} cannot talk until t = 200; neither side has a
    // quorum, so nothing finalizes during the partition — and nothing forks
    // after it heals.
    let cfg = Config::new(4).unwrap();
    let partition = |env: RouteEnv, _rng: &mut rand::rngs::StdRng| {
        let cut = env.now < Time(200);
        let side = |n: NodeId| n.0 / 2;
        if cut && side(env.from) != side(env.to) {
            Route::Drop
        } else {
            Route::DeliverAt(Time(env.now.0 + 1))
        }
    };
    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::scripted(partition))
        .build(|id| MultiShotNode::new(cfg, Params::new(10), id));
    sim.run_until(Time(190));
    assert!(sim.outputs().is_empty(), "no side of a 2/2 partition may finalize anything");
    sim.run_until(Time(1_200));
    assert_no_fork(&sim, &[0, 1, 2, 3]);
    assert!(
        sim.outputs().iter().any(|o| o.node == NodeId(0)),
        "the chain must grow after the partition heals"
    );
}

#[test]
fn deaf_node_never_forks_and_never_blocks_the_others() {
    // Node 3's inbound links are dead until t = 150. The other three form a
    // quorum and keep finalizing at full speed. When node 3 starts hearing
    // again the chain is far past its SLOT_WINDOW: without a state-transfer
    // sub-protocol (which the paper does not define — see DESIGN.md §6, the
    // block-dissemination scope note) it cannot finalize the missed prefix.
    // What consensus *does* guarantee, and what this test checks, is that
    // the deaf node neither forks nor slows anyone down.
    let cfg = Config::new(4).unwrap();
    let deaf = |env: RouteEnv, _rng: &mut rand::rngs::StdRng| {
        if env.to == NodeId(3) && env.now < Time(150) {
            Route::Drop
        } else {
            Route::DeliverAt(Time(env.now.0 + 1))
        }
    };
    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::scripted(deaf))
        .build(|id| MultiShotNode::new(cfg, Params::new(10), id));
    sim.run_until(Time(1_500));
    assert_no_fork(&sim, &[0, 1, 2, 3]);
    let tip0 = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| o.output.slot.0)
        .max()
        .unwrap_or(0);
    // The deaf node still *leads* every 4th slot and cannot propose blocks
    // it never saw, so the pipeline pays one 9Δ recovery round per lap of
    // the rotation (≈ 4 slots / 90 ticks) — steady progress, no fork.
    assert!(tip0 >= 40, "the live quorum must keep advancing through recovery rounds, tip={tip0}");
}
