//! Constant-storage guarantees under sustained adversity — the Table 1
//! storage column, tested rather than asserted.

use proptest::prelude::*;

use tetrabft_suite::prelude::*;
use tetrabft_types::{Phase, VoteBook};

#[test]
fn vote_book_is_constant_over_arbitrarily_many_views() {
    let mut book = VoteBook::new();
    let baseline = book.persistent_bytes();
    for view in 0..100_000u64 {
        for phase in Phase::ALL {
            book.record(phase, View(view), Value::from_u64(view % 7));
        }
        assert_eq!(book.persistent_bytes(), baseline);
    }
}

#[test]
fn node_persistent_state_is_view_independent() {
    // Run a node through dozens of forced view changes (silent leader
    // rotation) and confirm its persistent footprint never grows.
    let cfg = Config::new(4).unwrap();
    let probe = TetraNode::new(cfg, Params::new(5), NodeId(1), Value::from_u64(1));
    let baseline = probe.persistent_bytes();

    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::partial_synchrony(Time(400), 5, 1))
        .build_boxed(move |id| {
            if id == NodeId(0) {
                Box::new(tetrabft_suite::sim::SilentNode::new())
            } else {
                Box::new(TetraNode::new(cfg, Params::new(5), id, Value::from_u64(7)))
            }
        });
    sim.run_until_outputs(3, 5_000_000);
    // The type makes the bound structural; this exercises the claim end to
    // end: a fresh node reports the same footprint the whole run through.
    let after =
        TetraNode::new(cfg, Params::new(5), NodeId(1), Value::from_u64(1)).persistent_bytes();
    assert_eq!(after, baseline);
}

proptest! {
    /// The vote book's `prev` register always satisfies the paper's
    /// definition: highest different-valued vote below the highest vote.
    #[test]
    fn vote_book_prev_register_definition(
        votes in proptest::collection::vec((0u64..50, 0u64..4), 1..40)
    ) {
        // Feed strictly increasing views (well-behaved pattern).
        let mut sorted = votes;
        sorted.sort_by_key(|(v, _)| *v);
        sorted.dedup_by_key(|(v, _)| *v);

        let mut book = VoteBook::new();
        for (view, value) in &sorted {
            book.record(Phase::VOTE2, View(*view), Value::from_u64(*value));
        }
        let highest = book.highest(Phase::VOTE2).unwrap();
        // Reference computation from the raw history.
        let expected_prev = sorted
            .iter()
            .filter(|(_, value)| Value::from_u64(*value) != highest.value)
            .max_by_key(|(view, _)| *view)
            .map(|(view, value)| (View(*view), Value::from_u64(*value)));
        prop_assert_eq!(
            book.prev(Phase::VOTE2).map(|p| (p.view, p.value)),
            expected_prev
        );
    }

    /// Multi-shot nodes prune: the active window and block store stay
    /// bounded no matter how long the chain runs.
    #[test]
    fn multishot_active_state_is_bounded(horizon in 50u64..400) {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
        sim.run_until(Time(horizon));
        // The chain grows with the horizon…
        let blocks = sim.outputs().iter().filter(|o| o.node == NodeId(0)).count();
        prop_assert!(blocks as u64 >= horizon.saturating_sub(10));
        // …while the window constant bounds live instances.
        prop_assert!(tetrabft_multishot::SLOT_WINDOW <= 8);
    }
}
