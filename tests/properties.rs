//! Property-based protocol tests: agreement and chain consistency must
//! survive *randomly generated* network schedules and adversary placements
//! — a randomized complement to the model checker.

use proptest::prelude::*;

use tetrabft::strategies::{EquivocatingLeader, LyingHistorian, StaleReplayer, VoteAmplifier};
use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

#[derive(Debug, Clone, Copy)]
enum Adversary {
    Silent,
    Equivocator,
    Liar,
    Amplifier,
    Replayer,
}

fn arb_adversary() -> impl Strategy<Value = Adversary> {
    prop_oneof![
        Just(Adversary::Silent),
        Just(Adversary::Equivocator),
        Just(Adversary::Liar),
        Just(Adversary::Amplifier),
        Just(Adversary::Replayer),
    ]
}

fn byz_node(kind: Adversary, cfg: Config) -> Box<dyn Node<Msg = Message, Output = Value>> {
    match kind {
        Adversary::Silent => Box::new(tetrabft_suite::sim::SilentNode::new()),
        Adversary::Equivocator => {
            Box::new(EquivocatingLeader::new(cfg, Value::from_u64(1), Value::from_u64(2)))
        }
        Adversary::Liar => Box::new(LyingHistorian::new(cfg, Value::from_u64(13))),
        Adversary::Amplifier => Box::new(VoteAmplifier::new()),
        Adversary::Replayer => Box::new(StaleReplayer),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Agreement under a random adversary at a random position, random
    /// jitter, random seed.
    #[test]
    fn single_shot_agreement(
        seed in any::<u64>(),
        jitter_max in 1u64..8,
        byz_pos in 0u16..4,
        adversary in arb_adversary(),
    ) {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .seed(seed)
            .policy(LinkPolicy::jittered(1, jitter_max))
            .build_boxed(move |id| {
                if id.0 == byz_pos {
                    byz_node(adversary, cfg)
                } else {
                    Box::new(TetraNode::new(
                        cfg,
                        Params::new(20 + jitter_max),
                        id,
                        Value::from_u64(100 + u64::from(id.0)),
                    ))
                }
            });
        prop_assert!(sim.run_until_outputs(3, 20_000_000), "honest nodes must decide");
        let first = sim.outputs()[0].output;
        prop_assert!(sim.outputs().iter().all(|o| o.output == first), "agreement");
    }

    /// Multi-shot prefix consistency under random jitter and a random
    /// silent node.
    #[test]
    fn multishot_consistency(
        seed in any::<u64>(),
        jitter_max in 1u64..6,
        dead in proptest::option::of(0u16..4),
    ) {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .seed(seed)
            .policy(LinkPolicy::jittered(1, jitter_max))
            .build_boxed(move |id| {
                if Some(id.0) == dead {
                    Box::new(tetrabft_suite::sim::SilentNode::new())
                } else {
                    Box::new(MultiShotNode::new(cfg, Params::new(15 + jitter_max), id))
                }
            });
        sim.run_until(Time(800));
        let chains: Vec<Vec<(Slot, BlockHash)>> = (0..4u16)
            .map(|i| {
                sim.outputs()
                    .iter()
                    .filter(|o| o.node == NodeId(i))
                    .map(|o| (o.output.slot, o.output.hash))
                    .collect()
            })
            .collect();
        let longest = chains.iter().max_by_key(|c| c.len()).unwrap().clone();
        for chain in &chains {
            prop_assert_eq!(&longest[..chain.len()], &chain[..]);
        }
    }

    /// Determinism: the same seed and configuration produce bit-identical
    /// outcomes — the property every experiment in EXPERIMENTS.md rests on.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), jitter_max in 1u64..6) {
        let run = || {
            let cfg = Config::new(4).unwrap();
            let mut sim = SimBuilder::new(4)
                .seed(seed)
                .policy(LinkPolicy::jittered(1, jitter_max))
                .build(move |id| {
                    TetraNode::new(cfg, Params::new(20), id, Value::from_u64(u64::from(id.0)))
                });
            sim.run_until_outputs(4, 20_000_000);
            (
                sim.outputs().to_vec(),
                sim.metrics().total_bytes_sent(),
                sim.metrics().total_msgs_sent(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
