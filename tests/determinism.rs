//! A simulation run is a pure function of `(protocol, policy, seed)` — the
//! property every experiment in the repository rests on. Same seed twice ⇒
//! bit-identical decision ticks, outputs, metrics, and event trace;
//! different seeds ⇒ different schedules that nevertheless all decide.

use tetrabft::{Message, Params, TetraNode};
use tetrabft_sim::{LinkPolicy, OutputRecord, SimBuilder, TraceEvent};
use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

/// Everything observable about one finished run.
#[derive(Debug, Clone, PartialEq)]
struct RunRecord {
    outputs: Vec<OutputRecord<Value>>,
    trace: Vec<TraceEvent<Message>>,
    bytes_sent: u64,
    msgs_sent: u64,
    events_processed: u64,
    final_time: u64,
}

fn run_single_shot(seed: u64, jitter_max: u64) -> RunRecord {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4)
        .seed(seed)
        .policy(LinkPolicy::jittered(1, jitter_max))
        .record_trace(true)
        .build(move |id| {
            TetraNode::new(cfg, Params::new(25 + jitter_max), id, Value::from_u64(u64::from(id.0)))
        });
    assert!(sim.run_until_outputs(4, 20_000_000), "seed {seed} must decide");
    RunRecord {
        outputs: sim.outputs().to_vec(),
        trace: sim.trace().unwrap().to_vec(),
        bytes_sent: sim.metrics().total_bytes_sent(),
        msgs_sent: sim.metrics().total_msgs_sent(),
        events_processed: sim.metrics().events_processed,
        final_time: sim.now().0,
    }
}

#[test]
fn same_seed_same_run_bit_for_bit() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let first = run_single_shot(seed, 5);
        let second = run_single_shot(seed, 5);
        assert_eq!(first, second, "seed {seed} diverged between runs");
    }
}

#[test]
fn decision_ticks_are_a_function_of_the_seed_only() {
    // Build the record three times and keep only the decision ticks: they
    // must agree with themselves run-to-run even when compared piecewise.
    let ticks = |seed: u64| -> Vec<(NodeId, u64)> {
        run_single_shot(seed, 7).outputs.iter().map(|o| (o.node, o.time.0)).collect()
    };
    for seed in [3u64, 17, 99] {
        assert_eq!(ticks(seed), ticks(seed));
    }
}

#[test]
fn different_seeds_still_decide_and_agree() {
    let mut schedules = std::collections::HashSet::new();
    for seed in 0..16u64 {
        let record = run_single_shot(seed, 9);
        // Liveness: four decisions; agreement: one value.
        assert_eq!(record.outputs.len(), 4, "seed {seed}");
        let first = record.outputs[0].output;
        assert!(record.outputs.iter().all(|o| o.output == first), "seed {seed} disagreed");
        // Record the full schedule shape to show seeds actually vary it.
        schedules.insert((record.final_time, record.events_processed, record.msgs_sent));
    }
    assert!(
        schedules.len() > 1,
        "sixteen different seeds produced one schedule — jitter is not seeded"
    );
}

#[test]
fn multishot_runs_are_equally_deterministic() {
    let run = |seed: u64| {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .seed(seed)
            .policy(LinkPolicy::jittered(1, 4))
            .build(|id| MultiShotNode::new(cfg, Params::new(20), id));
        sim.run_until(Time(400));
        let chain: Vec<(u64, u64)> = sim
            .outputs()
            .iter()
            .filter(|o| o.node == NodeId(0))
            .map(|o| (o.output.slot.0, o.output.hash.0))
            .collect();
        assert!(!chain.is_empty(), "seed {seed} finalized nothing by t=400");
        (chain, sim.metrics().total_bytes_sent(), sim.now().0)
    };
    for seed in [7u64, 1234, 0xFEED] {
        assert_eq!(run(seed), run(seed), "multishot seed {seed} diverged");
    }
}
