//! Comparative invariants across protocols — Table 1's ordering relations,
//! checked end to end rather than per protocol.

use tetrabft::{Params, TetraNode};
use tetrabft_baselines::{BlogNode, IthsNode, PbftNode, RepeatedTetra};
use tetrabft_multishot::MultiShotNode;
use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

fn good_case_latency_tetra(n: usize) -> u64 {
    let cfg = Config::new(n).unwrap();
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .build(move |id| TetraNode::new(cfg, Params::new(1_000), id, Value::from_u64(1)));
    assert!(sim.run_until_outputs(n, 20_000_000));
    sim.outputs()[0].time.0
}

fn good_case_latency_iths(n: usize) -> u64 {
    let cfg = Config::new(n).unwrap();
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .build(move |id| IthsNode::new(cfg, Params::new(1_000), id, Value::from_u64(1)));
    assert!(sim.run_until_outputs(n, 20_000_000));
    sim.outputs()[0].time.0
}

fn good_case_latency_blog(n: usize) -> u64 {
    let cfg = Config::new(n).unwrap();
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .build(move |id| BlogNode::new(cfg, Params::new(1_000), id, Value::from_u64(1)));
    assert!(sim.run_until_outputs(n, 20_000_000));
    sim.outputs()[0].time.0
}

fn good_case_latency_pbft(n: usize) -> u64 {
    let cfg = Config::new(n).unwrap();
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .build(move |id| PbftNode::new(cfg, Params::new(1_000), id, Value::from_u64(1)));
    assert!(sim.run_until_outputs(n, 20_000_000));
    sim.outputs()[0].time.0
}

#[test]
fn table1_latency_ordering_holds_across_sizes() {
    for n in [4usize, 7, 13] {
        let pbft = good_case_latency_pbft(n);
        let blog = good_case_latency_blog(n);
        let tetra = good_case_latency_tetra(n);
        let iths = good_case_latency_iths(n);
        assert_eq!((pbft, blog, tetra, iths), (3, 4, 5, 6), "n={n}");
    }
}

#[test]
fn tetra_beats_iths_by_exactly_one_delay_in_recovery_too() {
    // Crash leader 0 everywhere; compare post-timeout recovery.
    let recover = |proto: &str| -> u64 {
        let cfg = Config::new(4).unwrap();
        let delta = 10;
        match proto {
            "tetra" => {
                let mut sim =
                    SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                        if id == NodeId(0) {
                            Box::new(tetrabft_suite::sim::SilentNode::new())
                        } else {
                            Box::new(TetraNode::new(
                                cfg,
                                Params::new(delta),
                                id,
                                Value::from_u64(1),
                            ))
                        }
                    });
                assert!(sim.run_until_outputs(3, 20_000_000));
                sim.outputs()[0].time.0 - 9 * delta
            }
            _ => {
                let mut sim =
                    SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                        if id == NodeId(0) {
                            Box::new(tetrabft_suite::sim::SilentNode::new())
                        } else {
                            Box::new(IthsNode::new(cfg, Params::new(delta), id, Value::from_u64(1)))
                        }
                    });
                assert!(sim.run_until_outputs(3, 20_000_000));
                sim.outputs()[0].time.0 - 9 * delta
            }
        }
    };
    assert_eq!(recover("tetra"), 7);
    assert_eq!(recover("iths"), 9);
}

#[test]
fn pipelining_beats_repetition_by_about_five() {
    let cfg = Config::new(4).unwrap();
    let mut pipelined = SimBuilder::new(4)
        .policy(LinkPolicy::synchronous(1))
        .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
    pipelined.run_until(Time(300));
    let blocks = pipelined.outputs().iter().filter(|o| o.node == NodeId(0)).count() as f64;

    let mut repeated = SimBuilder::new(4)
        .policy(LinkPolicy::synchronous(1))
        .build(|id| RepeatedTetra::new(cfg, Params::new(1_000_000), id));
    repeated.run_until(Time(300));
    let decisions = repeated.outputs().iter().filter(|o| o.node == NodeId(0)).count() as f64;

    let ratio = blocks / decisions;
    assert!((4.5..=5.5).contains(&ratio), "pipelining factor {ratio:.2} should be ≈5");
}

#[test]
fn all_protocols_agree_under_crash() {
    // Same scenario, four protocols: everyone recovers and agrees.
    macro_rules! check {
        ($ctor:expr) => {{
            let cfg = Config::new(4).unwrap();
            let mut sim =
                SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                    if id == NodeId(0) {
                        Box::new(tetrabft_suite::sim::SilentNode::new())
                    } else {
                        Box::new($ctor(cfg, Params::new(10), id, Value::from_u64(9)))
                    }
                });
            assert!(sim.run_until_outputs(3, 20_000_000));
            let first = sim.outputs()[0].output;
            assert!(sim.outputs().iter().all(|o| o.output == first));
        }};
    }
    check!(TetraNode::new);
    check!(IthsNode::new);
    check!(BlogNode::new);
    check!(PbftNode::new);
}
