//! Cross-crate integration tests for the pipelined blockchain: long runs,
//! repeated recoveries, and the multi-shot consistency/liveness properties
//! of Definition 2.

use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

fn chains(sim: &Sim<MsMessage, Finalized>, n: usize) -> Vec<Vec<(Slot, BlockHash)>> {
    (0..n as u16)
        .map(|i| {
            sim.outputs()
                .iter()
                .filter(|o| o.node == NodeId(i))
                .map(|o| (o.output.slot, o.output.hash))
                .collect()
        })
        .collect()
}

fn assert_prefix_consistency(sim: &Sim<MsMessage, Finalized>, n: usize) {
    let all = chains(sim, n);
    let longest = all.iter().max_by_key(|c| c.len()).unwrap().clone();
    for (i, chain) in all.iter().enumerate() {
        assert_eq!(
            &longest[..chain.len()],
            &chain[..],
            "node {i}'s chain is not a prefix of the longest chain"
        );
        for (k, (slot, _)) in chain.iter().enumerate() {
            assert_eq!(slot.0, k as u64 + 1, "node {i} finalized out of order");
        }
    }
}

#[test]
fn long_run_thousand_blocks() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::synchronous(1))
        .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
    sim.run_until(Time(1_010));
    let chain_len = sim.outputs().iter().filter(|o| o.node == NodeId(0)).count();
    assert!(chain_len >= 1_000, "got {chain_len} blocks in 1010 delays");
    assert_prefix_consistency(&sim, 4);
}

#[test]
fn repeated_leader_crashes_never_fork() {
    // The silent node leads every 4th (slot+view); the chain stalls and
    // recovers over and over. Consistency must hold throughout.
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
        if id == NodeId(2) {
            Box::new(tetrabft_suite::sim::SilentNode::new())
        } else {
            Box::new(MultiShotNode::new(cfg, Params::new(5), id))
        }
    });
    sim.run_until(Time(1_500));
    assert_prefix_consistency(&sim, 4);
    let tip = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| o.output.slot.0)
        .max()
        .unwrap_or(0);
    assert!(tip >= 30, "chain must keep growing through repeated recoveries, tip={tip}");
}

#[test]
fn seven_nodes_two_crashes() {
    let cfg = Config::new(7).unwrap();
    let mut sim = SimBuilder::new(7).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
        if id.0 >= 5 {
            Box::new(tetrabft_suite::sim::SilentNode::new())
        } else {
            Box::new(MultiShotNode::new(cfg, Params::new(5), id))
        }
    });
    sim.run_until(Time(1_000));
    assert_prefix_consistency(&sim, 7);
    assert!(!sim.outputs().is_empty());
}

#[test]
fn asynchrony_then_recovery_keeps_consistency() {
    for seed in 0..4 {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .seed(seed)
            .policy(LinkPolicy::partial_synchrony(Time(150), 10, 2))
            .build(|id| MultiShotNode::new(cfg, Params::new(10), id));
        sim.run_until(Time(1_200));
        assert_prefix_consistency(&sim, 4);
        assert!(
            sim.outputs().iter().any(|o| o.node == NodeId(0)),
            "chain must grow after GST (seed {seed})"
        );
    }
}

#[test]
fn liveness_every_nodes_transaction_lands() {
    // Definition 2 liveness: a tx submitted to every well-behaved node
    // eventually appears in every finalized chain.
    let tx = b"the-universal-tx".to_vec();
    let cfg = Config::new(4).unwrap();
    let tx2 = tx.clone();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build(move |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(1_000), id);
        node.submit_tx(tx2.clone());
        node
    });
    sim.run_until(Time(60));
    for i in 0..4u16 {
        let included = sim
            .outputs()
            .iter()
            .filter(|o| o.node == NodeId(i))
            .any(|o| o.output.block.txs.contains(&tx));
        assert!(included, "node {i} must see the tx finalized");
    }
}

#[test]
fn blocks_carry_distinct_payloads_per_slot() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build(move |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(1_000), id);
        for k in 0..100 {
            node.submit_tx(format!("{id}-{k}").into_bytes());
        }
        node
    });
    sim.run_until(Time(40));
    let blocks: Vec<&Finalized> =
        sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| &o.output).collect();
    assert!(blocks.len() > 10);
    // Hash chain integrity: parent pointers line up.
    for pair in blocks.windows(2) {
        assert_eq!(pair[1].block.parent, pair[0].hash, "hash chain must link");
    }
}
