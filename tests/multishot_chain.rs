//! Cross-crate integration tests for the pipelined blockchain: long runs,
//! repeated recoveries, and the multi-shot consistency/liveness properties
//! of Definition 2.

use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

fn chains(sim: &Sim<MsMessage, Finalized>, n: usize) -> Vec<Vec<(Slot, BlockHash)>> {
    (0..n as u16)
        .map(|i| {
            sim.outputs()
                .iter()
                .filter(|o| o.node == NodeId(i))
                .map(|o| (o.output.slot, o.output.hash))
                .collect()
        })
        .collect()
}

fn assert_prefix_consistency(sim: &Sim<MsMessage, Finalized>, n: usize) {
    let all = chains(sim, n);
    let longest = all.iter().max_by_key(|c| c.len()).unwrap().clone();
    for (i, chain) in all.iter().enumerate() {
        assert_eq!(
            &longest[..chain.len()],
            &chain[..],
            "node {i}'s chain is not a prefix of the longest chain"
        );
        for (k, (slot, _)) in chain.iter().enumerate() {
            assert_eq!(slot.0, k as u64 + 1, "node {i} finalized out of order");
        }
    }
}

#[test]
fn long_run_thousand_blocks() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::synchronous(1))
        .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
    sim.run_until(Time(1_010));
    let chain_len = sim.outputs().iter().filter(|o| o.node == NodeId(0)).count();
    assert!(chain_len >= 1_000, "got {chain_len} blocks in 1010 delays");
    assert_prefix_consistency(&sim, 4);
}

#[test]
fn repeated_leader_crashes_never_fork() {
    // The silent node leads every 4th (slot+view); the chain stalls and
    // recovers over and over. Consistency must hold throughout.
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
        if id == NodeId(2) {
            Box::new(tetrabft_suite::sim::SilentNode::new())
        } else {
            Box::new(MultiShotNode::new(cfg, Params::new(5), id))
        }
    });
    sim.run_until(Time(1_500));
    assert_prefix_consistency(&sim, 4);
    let tip = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| o.output.slot.0)
        .max()
        .unwrap_or(0);
    assert!(tip >= 30, "chain must keep growing through repeated recoveries, tip={tip}");
}

#[test]
fn seven_nodes_two_crashes() {
    let cfg = Config::new(7).unwrap();
    let mut sim = SimBuilder::new(7).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
        if id.0 >= 5 {
            Box::new(tetrabft_suite::sim::SilentNode::new())
        } else {
            Box::new(MultiShotNode::new(cfg, Params::new(5), id))
        }
    });
    sim.run_until(Time(1_000));
    assert_prefix_consistency(&sim, 7);
    assert!(!sim.outputs().is_empty());
}

#[test]
fn asynchrony_then_recovery_keeps_consistency() {
    for seed in 0..4 {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .seed(seed)
            .policy(LinkPolicy::partial_synchrony(Time(150), 10, 2))
            .build(|id| MultiShotNode::new(cfg, Params::new(10), id));
        sim.run_until(Time(1_200));
        assert_prefix_consistency(&sim, 4);
        assert!(
            sim.outputs().iter().any(|o| o.node == NodeId(0)),
            "chain must grow after GST (seed {seed})"
        );
    }
}

#[test]
fn liveness_every_nodes_transaction_lands() {
    // Definition 2 liveness: a tx submitted to every well-behaved node
    // eventually appears in every finalized chain.
    let tx = b"the-universal-tx".to_vec();
    let cfg = Config::new(4).unwrap();
    let tx2 = tx.clone();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build(move |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(1_000), id);
        node.submit_tx(tx2.clone()).unwrap();
        node
    });
    sim.run_until(Time(60));
    for i in 0..4u16 {
        let included = sim
            .outputs()
            .iter()
            .filter(|o| o.node == NodeId(i))
            .any(|o| o.output.block.txs.contains(&tx));
        assert!(included, "node {i} must see the tx finalized");
    }
}

#[test]
fn batching_liveness_lands_within_bounded_slots() {
    // Stronger than eventual inclusion: with leaders rotating round-robin
    // over n nodes, a tx queued at every node must appear within the first
    // n slots (the first slot each node leads packs its FIFO head), on
    // every node's finalized chain.
    let n = 4;
    let tx = b"bounded-latency-tx".to_vec();
    let cfg = Config::new(n).unwrap();
    let tx2 = tx.clone();
    let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(1_000), id);
        node.submit_tx(tx2.clone()).unwrap();
        node
    });
    sim.run_until(Time(40));
    for i in 0..n as u16 {
        let slot = sim
            .outputs()
            .iter()
            .filter(|o| o.node == NodeId(i))
            .find(|o| o.output.block.txs.contains(&tx))
            .map(|o| o.output.slot.0);
        assert_eq!(slot, Some(1), "node {i}: slot 1's leader already queues the tx");
    }
}

#[test]
fn batch_drain_order_is_fifo_across_blocks() {
    // Node 0 queues 40 txs with max_block_txs = 8: its leadership slots
    // must drain them in submission order, 8 per block, across several of
    // its blocks — no reordering at the batching boundary.
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let params = Params::new(1_000).with_max_block_txs(8);
    let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| {
        let mut node = MultiShotNode::new(cfg, params, id);
        if id == NodeId(0) {
            for k in 0..40u32 {
                node.submit_tx(format!("fifo-{k:03}").into_bytes()).unwrap();
            }
        }
        node
    });
    sim.run_until(Time(80));
    // Under synchrony every block stays in view 0, so slot s's proposer is
    // leader_of(s, view 0); collect node 0's blocks in slot order.
    let drained: Vec<Vec<u8>> = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .filter(|o| MultiShotNode::leader_of(&cfg, o.output.slot, View(0)) == NodeId(0))
        .flat_map(|o| o.output.block.txs.iter().cloned())
        .collect();
    let expected: Vec<Vec<u8>> = (0..40u32).map(|k| format!("fifo-{k:03}").into_bytes()).collect();
    assert_eq!(drained, expected, "txs must finalize in submission order");
    let full_blocks = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0) && o.output.block.txs.len() == 8)
        .count();
    assert_eq!(full_blocks, 5, "40 txs at 8 per block fill exactly 5 blocks");
}

#[test]
fn admitted_txs_survive_lost_view_changes() {
    // Tx durability: node 0's outbound messages are blackholed until
    // t=200, while it still *hears* everyone. Its led slots keep getting
    // proposed locally (draining mempool batches into blocks nobody
    // receives), view-change away, and finalize under other leaders —
    // each time, the drained batch must return to node 0's mempool, so
    // that once its link heals every admitted tx still reaches the chain.
    use tetrabft_suite::sim::{LinkPolicy, Route};
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let policy = LinkPolicy::scripted(|env, _| {
        if env.from == NodeId(0) && env.now < Time(200) {
            Route::Drop
        } else {
            Route::DeliverAt(env.now + 1)
        }
    });
    let txs: Vec<Vec<u8>> = (0..10).map(|k| format!("durable-{k}").into_bytes()).collect();
    let txs2 = txs.clone();
    let mut sim = SimBuilder::new(n).policy(policy).build(move |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(5).with_max_block_txs(4), id);
        if id == NodeId(0) {
            for tx in &txs2 {
                node.submit_tx(tx.clone()).unwrap();
            }
        }
        node
    });
    sim.run_until(Time(800));
    let finalized: Vec<Vec<u8>> = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(1))
        .flat_map(|o| o.output.block.txs.iter().cloned())
        .collect();
    for tx in &txs {
        assert!(
            finalized.contains(tx),
            "tx {:?} was admitted but never finalized — lost with a defeated proposal",
            String::from_utf8_lossy(tx)
        );
    }
}

#[test]
fn blocks_carry_distinct_payloads_per_slot() {
    let cfg = Config::new(4).unwrap();
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build(move |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(1_000), id);
        for k in 0..100 {
            node.submit_tx(format!("{id}-{k}").into_bytes()).unwrap();
        }
        node
    });
    sim.run_until(Time(40));
    let blocks: Vec<&Finalized> =
        sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| &o.output).collect();
    assert!(blocks.len() > 10);
    // Hash chain integrity: parent pointers line up.
    for pair in blocks.windows(2) {
        assert_eq!(pair[1].block.parent, pair[0].hash, "hash chain must link");
    }
}
