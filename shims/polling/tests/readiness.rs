//! Readiness edge cases for the polling shim, run against BOTH backends
//! (epoll and the portable `poll(2)` fallback): spurious wakeups, EAGAIN
//! mid-frame writes, half-close, and oneshot re-arm — the exact cases
//! the reactor's correctness leans on.

use polling::{Backend, Event, Events, Poller};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Runs `case` once per backend so every edge case is checked against the
/// real epoll path and the emulated-oneshot poll path.
fn on_both_backends(case: impl Fn(&Poller, Backend)) {
    for backend in [Backend::Epoll, Backend::Poll] {
        let poller = Poller::with_backend(backend).expect("create poller");
        assert_eq!(poller.backend(), backend);
        case(&poller, backend);
    }
}

/// A connected nonblocking local TCP pair.
fn tcp_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let a = TcpStream::connect(addr).unwrap();
    let (b, _) = listener.accept().unwrap();
    a.set_nonblocking(true).unwrap();
    b.set_nonblocking(true).unwrap();
    (a, b)
}

fn wait(poller: &Poller, events: &mut Events, timeout: Duration) -> Vec<Event> {
    poller.wait(events, Some(timeout)).unwrap();
    events.iter().collect()
}

#[test]
fn spurious_wakeup_reports_no_events_and_loop_survives() {
    on_both_backends(|poller, backend| {
        let (_a, b) = tcp_pair();
        poller.add(&b, Event::readable(1)).unwrap();

        // A notify with no I/O pending is exactly a spurious wakeup: wait
        // returns early with zero events, and the caller's loop must simply
        // go around again.
        poller.notify().unwrap();
        let mut events = Events::new();
        let start = Instant::now();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert!(got.is_empty(), "{backend:?}: spurious wakeup must deliver no events");
        assert!(start.elapsed() < Duration::from_secs(1), "{backend:?}: must wake early");

        // The socket's interest is untouched by the spurious wakeup: data
        // arriving afterwards is still delivered.
        (&_a).write_all(b"ping").unwrap();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert_eq!(got.len(), 1, "{backend:?}: real readiness after spurious wake");
        assert_eq!(got[0].key, 1);
        assert!(got[0].readable);
        poller.delete(&b).unwrap();
    });
}

#[test]
fn eagain_mid_frame_write_then_writable_again() {
    on_both_backends(|poller, backend| {
        let (a, b) = tcp_pair();

        // Fill the send buffer until a mid-"frame" write hits EAGAIN, like
        // the reactor flushing a frame into a congested peer socket.
        let chunk = vec![0xABu8; 64 * 1024];
        let mut sent = 0usize;
        let stalled = loop {
            match (&a).write(&chunk) {
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break true,
                Err(e) => panic!("{backend:?}: unexpected write error: {e}"),
            }
            if sent > 512 * 1024 * 1024 {
                break false; // absurdly large buffers; cannot happen locally
            }
        };
        assert!(stalled, "{backend:?}: expected the send buffer to fill");

        // Blocked writer: arm write interest; nothing may fire while the
        // peer has not drained.
        poller.add(&a, Event::writable(7)).unwrap();
        let mut events = Events::new();
        let got = wait(poller, &mut events, Duration::from_millis(100));
        assert!(got.is_empty(), "{backend:?}: no writable while the buffer is full");

        // Drain on the peer side until the writer is reported writable and
        // the rest of the "frame" goes through.
        let mut drain = vec![0u8; 256 * 1024];
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut writable = false;
        while Instant::now() < deadline {
            loop {
                match (&b).read(&mut drain) {
                    Ok(0) => panic!("{backend:?}: peer closed unexpectedly"),
                    Ok(_) => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => panic!("{backend:?}: unexpected read error: {e}"),
                }
            }
            let got = wait(poller, &mut events, Duration::from_millis(50));
            if got.iter().any(|ev| ev.key == 7 && ev.writable) {
                writable = true;
                break;
            }
            // Oneshot: if anything else fired, re-arm and keep draining.
            poller.modify(&a, Event::writable(7)).unwrap();
        }
        assert!(writable, "{backend:?}: writable readiness after the peer drained");
        let n = (&a).write(&chunk).expect("write resumes after EAGAIN");
        assert!(n > 0, "{backend:?}: resumed write makes progress");
        poller.delete(&a).unwrap();
    });
}

#[test]
fn half_close_is_reported_as_readable_eof() {
    on_both_backends(|poller, backend| {
        let (a, b) = tcp_pair();
        poller.add(&b, Event::readable(3)).unwrap();

        // Peer half-closes its write side: the registered socket must wake
        // readable, and the read must observe EOF (Ok(0)).
        a.shutdown(std::net::Shutdown::Write).unwrap();
        let mut events = Events::new();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert_eq!(got.len(), 1, "{backend:?}: half-close wakes the reader");
        assert_eq!(got[0].key, 3);
        assert!(got[0].readable, "{backend:?}: half-close surfaces as readability");
        let mut buf = [0u8; 16];
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "{backend:?}: read sees EOF");

        // The other direction stays usable after the half-close.
        (&b).write_all(b"still-open").unwrap();
        let mut back = [0u8; 10];
        let mut a_blocking = a;
        a_blocking.set_nonblocking(false).unwrap();
        a_blocking.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"still-open");
        poller.delete(&b).unwrap();
    });
}

#[test]
fn oneshot_delivery_disarms_until_rearmed() {
    on_both_backends(|poller, backend| {
        let (a, b) = tcp_pair();
        poller.add(&b, Event::readable(9)).unwrap();
        (&a).write_all(b"first").unwrap();

        let mut events = Events::new();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert_eq!(got.len(), 1, "{backend:?}: first delivery");
        assert!(got[0].readable);

        // The data is deliberately NOT drained. Oneshot means the source is
        // disarmed after the delivery: a still-readable socket must not fire
        // again until re-armed — this is what stops a busy loop.
        let got = wait(poller, &mut events, Duration::from_millis(100));
        assert!(got.is_empty(), "{backend:?}: no redelivery before re-arm");

        poller.modify(&b, Event::readable(9)).unwrap();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert_eq!(got.len(), 1, "{backend:?}: re-arm redelivers the level condition");
        assert!(got[0].readable);

        // Re-arm with no interest parks the source entirely.
        poller.modify(&b, Event::none(9)).unwrap();
        let got = wait(poller, &mut events, Duration::from_millis(100));
        assert!(got.is_empty(), "{backend:?}: Event::none() disarms");
        poller.delete(&b).unwrap();
    });
}

#[test]
fn delete_stops_all_deliveries() {
    on_both_backends(|poller, backend| {
        let (a, b) = tcp_pair();
        poller.add(&b, Event::readable(4)).unwrap();
        poller.delete(&b).unwrap();
        (&a).write_all(b"late").unwrap();
        let mut events = Events::new();
        let got = wait(poller, &mut events, Duration::from_millis(100));
        assert!(got.is_empty(), "{backend:?}: deleted sources never fire");
    });
}

#[test]
fn two_sources_deliver_with_their_own_keys() {
    on_both_backends(|poller, backend| {
        let (a1, b1) = tcp_pair();
        let (a2, b2) = tcp_pair();
        poller.add(&b1, Event::readable(11)).unwrap();
        poller.add(&b2, Event::readable(22)).unwrap();
        (&a1).write_all(b"one").unwrap();
        (&a2).write_all(b"two").unwrap();

        let mut events = Events::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut seen = Vec::new();
        while seen.len() < 2 && Instant::now() < deadline {
            for ev in wait(poller, &mut events, Duration::from_millis(200)) {
                seen.push(ev.key);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![11, 22], "{backend:?}: both sources, correct keys");
        poller.delete(&b1).unwrap();
        poller.delete(&b2).unwrap();
    });
}

#[test]
fn nonblocking_connect_success_and_refusal() {
    on_both_backends(|poller, backend| {
        // Success path: dial a live listener, wait writable, SO_ERROR clean.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = polling::os::connect_stream(&addr).unwrap();
        poller.add(&stream, Event::writable(1)).unwrap();
        let mut events = Events::new();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert!(
            got.iter().any(|ev| ev.key == 1 && ev.writable),
            "{backend:?}: pending connect becomes writable"
        );
        assert!(stream.take_error().unwrap().is_none(), "{backend:?}: SO_ERROR clean");
        poller.delete(&stream).unwrap();

        // Refusal path: dial a port nobody listens on; readiness fires and
        // SO_ERROR (or the first write) reports the refusal.
        drop(listener);
        let stream = match polling::os::connect_stream(&addr) {
            Ok(s) => s,
            // Localhost refusals may complete synchronously inside connect().
            Err(e) => {
                assert_eq!(e.kind(), ErrorKind::ConnectionRefused, "{backend:?}");
                return;
            }
        };
        poller.add(&stream, Event::all(2)).unwrap();
        let got = wait(poller, &mut events, Duration::from_secs(5));
        assert!(!got.is_empty(), "{backend:?}: refused connect wakes the poller");
        let verdict = stream.take_error().unwrap();
        assert!(verdict.is_some(), "{backend:?}: SO_ERROR reports the refusal");
        poller.delete(&stream).unwrap();
    });
}
