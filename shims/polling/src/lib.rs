//! Minimal offline stand-in for the `polling` crate: portable readiness
//! polling for the reactor-based network runtime.
//!
//! The repository builds in environments without a crates.io mirror, so
//! this shim provides the small slice of a readiness API `tetrabft-net`
//! and `tetrabft-load` need, in the style of smol's `polling` crate:
//!
//! * [`Poller`] — an OS readiness queue: **epoll** on Linux, with a
//!   portable **`poll(2)`** fallback selected on other Unixes or forced
//!   via `TETRABFT_FORCE_POLL=1` (the CI runs the readiness test suite
//!   against both backends on the same machine);
//! * **oneshot semantics** — an event delivery disarms the source's
//!   interest until it is re-armed with [`Poller::modify`], so a level
//!   condition (readable socket nobody drained) can never spin the loop;
//! * [`Poller::notify`] — a cross-thread waker (self-pipe) that makes
//!   [`Poller::wait`] return without reporting an event;
//! * [`os`] — the two syscall helpers `std` cannot express: a genuinely
//!   non-blocking `connect` and an `RLIMIT_NOFILE` raise.
//!
//! # Examples
//!
//! ```
//! use polling::{Event, Events, Poller};
//! use std::io::Write;
//!
//! let poller = Poller::new().unwrap();
//! let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
//! b.set_nonblocking(true).unwrap();
//! poller.add(&b, Event::readable(7)).unwrap();
//! a.write_all(b"x").unwrap();
//! let mut events = Events::new();
//! poller.wait(&mut events, Some(std::time::Duration::from_secs(1))).unwrap();
//! let got: Vec<_> = events.iter().collect();
//! assert_eq!(got.len(), 1);
//! assert!(got[0].readable && got[0].key == 7);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

mod sys;

/// Syscall helpers that round out `std`'s socket API for readiness-based
/// runtimes.
pub mod os {
    pub use crate::sys::{connect_stream, raise_nofile_limit};
}

/// The key reserved for the poller's internal notifier; user keys must be
/// smaller.
const NOTIFY_KEY: u64 = u64::MAX;

/// Interest in (or readiness of) one registered source, tagged with the
/// caller's `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen tag identifying the source.
    pub key: usize,
    /// Interested in / ready for reading. Errors and hang-ups surface as
    /// readability (the next `read` reports them).
    pub readable: bool,
    /// Interested in / ready for writing. Errors also surface here so a
    /// pending non-blocking `connect` learns its fate.
    pub writable: bool,
}

impl Event {
    /// Read interest only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Write interest only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Read and write interest.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest — keeps the source registered but disarmed.
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// A reusable buffer of delivered [`Event`]s.
#[derive(Default)]
pub struct Events {
    list: Vec<Event>,
    /// Scratch for the epoll backend (reused across waits).
    raw: Vec<sys::EpollEvent>,
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.list.iter()).finish()
    }
}

/// How many kernel events one wait can deliver; more simply arrive on the
/// next wait.
const WAIT_CAPACITY: usize = 1024;

impl Events {
    /// An empty, reusable event buffer.
    pub fn new() -> Events {
        Events { list: Vec::with_capacity(WAIT_CAPACITY), raw: Vec::new() }
    }

    /// Iterates the events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// `true` if the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// Which OS mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` with `EPOLLONESHOT`.
    Epoll,
    /// Portable `poll(2)`; oneshot is emulated by the shim.
    Poll,
}

#[derive(Debug, Clone, Copy)]
struct Reg {
    key: usize,
    readable: bool,
    writable: bool,
}

enum BackendImpl {
    Epoll { ep: std::os::fd::OwnedFd },
    Poll { regs: Mutex<HashMap<RawFd, Reg>> },
}

/// A readiness queue over one of the [`Backend`]s.
///
/// Registered sources deliver at most one event per arming
/// ([`Poller::add`] / [`Poller::modify`]); [`Poller::wait`] blocks until
/// an event, a [`Poller::notify`], or the timeout.
pub struct Poller {
    backend: BackendImpl,
    /// Self-pipe: `notify` writes one byte, `wait` drains and wakes.
    notify_rx: UnixStream,
    notify_tx: UnixStream,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("backend", &self.backend()).finish_non_exhaustive()
    }
}

impl Poller {
    /// Creates a poller on the platform's best backend: epoll on Linux
    /// (unless `TETRABFT_FORCE_POLL` is set), `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        let backend =
            if cfg!(target_os = "linux") && std::env::var_os("TETRABFT_FORCE_POLL").is_none() {
                Backend::Epoll
            } else {
                Backend::Poll
            };
        Poller::with_backend(backend)
    }

    /// Creates a poller on an explicit backend (the readiness test suite
    /// runs every case against both).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let (notify_tx, notify_rx) = UnixStream::pair()?;
        notify_tx.set_nonblocking(true)?;
        notify_rx.set_nonblocking(true)?;
        let backend = match backend {
            Backend::Epoll => {
                let ep = sys::epoll_create()?;
                // The notifier is level-triggered and never disarmed: a
                // pending wake must survive until the wait that drains it.
                sys::epoll_control(
                    ep.as_raw_fd(),
                    sys::EPOLL_CTL_ADD,
                    notify_rx.as_raw_fd(),
                    Some(sys::EpollEvent { events: sys::EPOLLIN, data: NOTIFY_KEY }),
                )?;
                BackendImpl::Epoll { ep }
            }
            Backend::Poll => BackendImpl::Poll { regs: Mutex::new(HashMap::new()) },
        };
        Ok(Poller { backend, notify_rx, notify_tx })
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.backend {
            BackendImpl::Epoll { .. } => Backend::Epoll,
            BackendImpl::Poll { .. } => Backend::Poll,
        }
    }

    /// Registers `source` with an initial interest. The source must stay
    /// open until [`Poller::delete`]; `ev.key` tags its deliveries.
    ///
    /// # Errors
    ///
    /// The OS error of the underlying registration call.
    pub fn add(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        assert!((ev.key as u64) < NOTIFY_KEY, "key {} is reserved", ev.key);
        match &self.backend {
            BackendImpl::Epoll { ep } => sys::epoll_control(
                ep.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                source.as_raw_fd(),
                Some(epoll_interest(ev)),
            ),
            BackendImpl::Poll { regs } => {
                let mut regs = regs.lock().expect("poller lock");
                regs.insert(
                    source.as_raw_fd(),
                    Reg { key: ev.key, readable: ev.readable, writable: ev.writable },
                );
                Ok(())
            }
        }
    }

    /// Re-arms (or changes) the interest of a registered source — the
    /// oneshot counterpart of "I have handled the last delivery".
    ///
    /// # Errors
    ///
    /// The OS error of the underlying modification call.
    pub fn modify(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        assert!((ev.key as u64) < NOTIFY_KEY, "key {} is reserved", ev.key);
        match &self.backend {
            BackendImpl::Epoll { ep } => sys::epoll_control(
                ep.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                source.as_raw_fd(),
                Some(epoll_interest(ev)),
            ),
            BackendImpl::Poll { regs } => {
                let mut regs = regs.lock().expect("poller lock");
                match regs.get_mut(&source.as_raw_fd()) {
                    Some(reg) => {
                        *reg = Reg { key: ev.key, readable: ev.readable, writable: ev.writable };
                        Ok(())
                    }
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "modify of an unregistered source",
                    )),
                }
            }
        }
    }

    /// Unregisters a source (call before closing its fd).
    ///
    /// # Errors
    ///
    /// The OS error of the underlying deregistration call.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.backend {
            BackendImpl::Epoll { ep } => {
                sys::epoll_control(ep.as_raw_fd(), sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
            }
            BackendImpl::Poll { regs } => {
                regs.lock().expect("poller lock").remove(&source.as_raw_fd());
                Ok(())
            }
        }
    }

    /// Blocks until at least one event, a [`Poller::notify`], or the
    /// timeout (`None` = forever). Delivered events land in `events`
    /// (cleared first); their sources are disarmed until re-armed with
    /// [`Poller::modify`]. Returns the number of delivered events — which
    /// is 0 for a pure notify wake, the "spurious wakeup" callers must
    /// tolerate.
    ///
    /// # Errors
    ///
    /// The OS error of the underlying wait (EINTR is retried internally).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.list.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let ms = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    // Round up so a 0.5 ms wait cannot spin as 0 ms.
                    left.as_millis().min(i32::MAX as u128) as i32
                        + i32::from(left.subsec_nanos() % 1_000_000 != 0)
                }
            };
            let res = match &self.backend {
                BackendImpl::Epoll { ep } => self.wait_epoll(ep.as_raw_fd(), events, ms),
                BackendImpl::Poll { regs } => self.wait_poll(regs, events, ms),
            };
            match res {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
                Ok(woke) => {
                    // Wake on: delivered events, an explicit notify, or an
                    // expired deadline. A pure EINTR-free wake with neither
                    // (possible under poll when only the notifier fired
                    // mid-drain) retries until the deadline.
                    if !events.list.is_empty()
                        || woke
                        || deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        return Ok(events.list.len());
                    }
                }
            }
        }
    }

    fn wait_epoll(&self, ep: RawFd, events: &mut Events, ms: i32) -> io::Result<bool> {
        events.raw.resize(WAIT_CAPACITY, sys::EpollEvent { events: 0, data: 0 });
        let n = sys::epoll_wait_raw(ep, &mut events.raw, ms)?;
        let mut notified = false;
        for raw in &events.raw[..n] {
            let (bits, data) = (raw.events, raw.data);
            if data == NOTIFY_KEY {
                notified = true;
                self.drain_notifications();
                continue;
            }
            let readable =
                bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0;
            let writable = bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0;
            if readable || writable {
                events.list.push(Event { key: data as usize, readable, writable });
            }
        }
        Ok(notified)
    }

    fn wait_poll(
        &self,
        regs: &Mutex<HashMap<RawFd, Reg>>,
        events: &mut Events,
        ms: i32,
    ) -> io::Result<bool> {
        // The registration table stays locked across the syscall: only the
        // owning reactor thread registers, so this never contends (notify
        // does not touch the table).
        let mut regs = regs.lock().expect("poller lock");
        let mut fds = Vec::with_capacity(regs.len() + 1);
        fds.push(sys::PollFd { fd: self.notify_rx.as_raw_fd(), events: sys::POLLIN, revents: 0 });
        let mut keys = Vec::with_capacity(regs.len());
        for (fd, reg) in regs.iter() {
            let mut interest = 0;
            if reg.readable {
                interest |= sys::POLLIN | sys::POLLRDHUP;
            }
            if reg.writable {
                interest |= sys::POLLOUT;
            }
            if interest != 0 {
                fds.push(sys::PollFd { fd: *fd, events: interest, revents: 0 });
                keys.push(*fd);
            }
        }
        sys::poll_raw(&mut fds, ms)?;
        let mut notified = false;
        if fds[0].revents != 0 {
            notified = true;
            self.drain_notifications();
        }
        for (slot, fd) in fds[1..].iter().zip(keys) {
            if slot.revents == 0 {
                continue;
            }
            let err = slot.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            let readable = slot.revents & (sys::POLLIN | sys::POLLRDHUP) != 0 || err;
            let writable = slot.revents & sys::POLLOUT != 0 || err;
            if let Some(reg) = regs.get_mut(&fd) {
                // Emulated oneshot: a delivery disarms the source entirely,
                // exactly like EPOLLONESHOT.
                reg.readable = false;
                reg.writable = false;
                events.list.push(Event { key: reg.key, readable, writable });
            }
        }
        Ok(notified)
    }

    fn drain_notifications(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.notify_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Wakes a concurrent (or the next) [`Poller::wait`] without
    /// delivering an event. Callable from any thread; coalesces.
    ///
    /// # Errors
    ///
    /// The OS error of the self-pipe write (a full pipe is *not* an
    /// error — a wake is already pending).
    pub fn notify(&self) -> io::Result<()> {
        match (&self.notify_tx).write(&[1]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

fn epoll_interest(ev: Event) -> sys::EpollEvent {
    let mut bits = sys::EPOLLONESHOT | sys::EPOLLRDHUP;
    if ev.readable {
        bits |= sys::EPOLLIN;
    }
    if ev.writable {
        bits |= sys::EPOLLOUT;
    }
    sys::EpollEvent { events: bits, data: ev.key as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_wakes_without_an_event() {
        for backend in [Backend::Epoll, Backend::Poll] {
            let poller = Poller::with_backend(backend).unwrap();
            poller.notify().unwrap();
            let mut events = Events::new();
            let start = Instant::now();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 0, "{backend:?}: a notify delivers no event");
            assert!(start.elapsed() < Duration::from_secs(1), "{backend:?}: must not time out");
            // Drained: the next wait times out instead of waking again.
            let n = poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
            assert_eq!(n, 0, "{backend:?}: notification must not persist");
        }
    }

    #[test]
    fn notify_coalesces_from_many_threads() {
        for backend in [Backend::Epoll, Backend::Poll] {
            let poller = std::sync::Arc::new(Poller::with_backend(backend).unwrap());
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let p = std::sync::Arc::clone(&poller);
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            p.notify().unwrap();
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let mut events = Events::new();
            poller.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            assert_eq!(n, 0, "{backend:?}: 8000 notifies drain to silence");
        }
    }

    #[test]
    fn reserved_key_is_rejected() {
        let poller = Poller::new().unwrap();
        let (_a, b) = UnixStream::pair().unwrap();
        let err = std::panic::catch_unwind(|| poller.add(&b, Event::readable(usize::MAX)));
        assert!(err.is_err(), "the notifier key is reserved");
    }
}
