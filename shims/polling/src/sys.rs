//! The raw syscall layer: `epoll_*`, `poll(2)`, `socket`/`connect`, and
//! `getrlimit`/`setrlimit`, declared directly against the C library that
//! `std` already links (no `libc` crate in the offline build environment).
//!
//! Everything `unsafe` in the shim lives here; the wrappers exposed to the
//! rest of the crate are safe and return `io::Error::last_os_error()` on
//! the C side's `-1`.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_short, c_uint, c_ulong, c_void};

// ---- epoll -----------------------------------------------------------

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CLOEXEC: c_int = 0o2000000;

/// The kernel ABI's `struct epoll_event`. Packed on x86-64 (the kernel
/// declares it `__attribute__((packed))` there), naturally aligned on
/// every other architecture — mirroring the C library's definition.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: a non-negative return from epoll_create1 is a freshly opened
    // fd this process owns exclusively.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// One `epoll_ctl` call; `event` may be `None` only for `EPOLL_CTL_DEL`.
pub fn epoll_control(
    epfd: RawFd,
    op: c_int,
    fd: RawFd,
    event: Option<EpollEvent>,
) -> io::Result<()> {
    let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// One `epoll_wait` call into `buf`; `timeout` in milliseconds, `-1` for
/// infinite. Returns the number of ready entries.
pub fn epoll_wait_raw(epfd: RawFd, buf: &mut [EpollEvent], timeout: c_int) -> io::Result<usize> {
    let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

// ---- poll ------------------------------------------------------------

pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;
pub const POLLNVAL: c_short = 0x020;
pub const POLLRDHUP: c_short = 0x2000;

/// The C library's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// One `poll(2)` call; `timeout` in milliseconds, `-1` for infinite.
/// Returns how many entries have non-zero `revents`.
pub fn poll_raw(fds: &mut [PollFd], timeout: c_int) -> io::Result<usize> {
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

// ---- non-blocking connect --------------------------------------------

const AF_INET: c_int = 2;
#[cfg(target_os = "linux")]
const AF_INET6: c_int = 10;
#[cfg(not(target_os = "linux"))]
const AF_INET6: c_int = 30; // macOS/BSD value; unused on the Linux CI
const SOCK_STREAM: c_int = 1;
#[cfg(target_os = "linux")]
const SOCK_NONBLOCK: c_int = 0o4000;
#[cfg(target_os = "linux")]
const SOCK_CLOEXEC: c_int = 0o2000000;
const EINPROGRESS: i32 = 115;

#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Big-endian.
    port: u16,
    /// Big-endian.
    addr: u32,
    zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    /// Big-endian.
    port: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

extern "C" {
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: c_uint) -> c_int;
}

/// Starts a non-blocking TCP connection to `addr` and returns the socket
/// as a [`TcpStream`] whose connect may still be in progress.
///
/// The caller waits for *writable* readiness and then checks
/// [`TcpStream::take_error`] for the `SO_ERROR` verdict — the classic
/// readiness-based dial, which `std` alone cannot express (its `connect`
/// blocks and its `connect_timeout` blocks up to the timeout).
pub fn connect_stream(addr: &SocketAddr) -> io::Result<TcpStream> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    #[cfg(target_os = "linux")]
    let ty = SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC;
    #[cfg(not(target_os = "linux"))]
    let ty = SOCK_STREAM;
    let fd = unsafe { socket(family, ty, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: a non-negative return from socket(2) is a fresh fd owned
    // exclusively by this process; OwnedFd closes it on every error path.
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    let stream = TcpStream::from(owned);
    #[cfg(not(target_os = "linux"))]
    stream.set_nonblocking(true)?;

    let rc = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from_ne_bytes(v4.ip().octets()),
                zero: [0; 8],
            };
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn>() as c_uint,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn6).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn6>() as c_uint,
                )
            }
        }
    };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            return Err(err);
        }
    }
    Ok(stream)
}

// ---- rlimit ----------------------------------------------------------

const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the
/// resulting soft limit. A 10k-connection harness outgrows the usual
/// 1024-fd default; this is the standard server start-up move.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        lim.cur = lim.max;
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(lim.cur)
}
