//! Minimal offline stand-in for the `criterion` crate.
//!
//! The repository builds in environments without a crates.io mirror, so this
//! shim reimplements the benchmark API surface `crates/bench` uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the per-iteration mean and
//! min. There are no statistics, plots, or baselines — the goal is that
//! `cargo bench` produces honest wall-clock numbers and that bench targets
//! keep compiling against the real criterion API shape. Passing `--test`
//! (as `cargo test --benches` does) runs every benchmark body exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    smoke_test: bool,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Runs `body` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.smoke_test {
            black_box(body());
            return;
        }
        // Warm-up, and a probe for how many iterations fit one sample.
        let warmup = Instant::now();
        let mut probe_iters: u32 = 0;
        while warmup.elapsed() < Duration::from_millis(50) {
            black_box(body());
            probe_iters += 1;
            if probe_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup.elapsed() / probe_iters.max(1);
        // Aim for samples of ~2ms, bounded so slow bodies still finish.
        let iters_per_sample =
            (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1)) as u32;
        let iters_per_sample = iters_per_sample.clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let budget = Instant::now();
        let mut taken = 0usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            let sample = start.elapsed() / iters_per_sample;
            total += sample;
            min = min.min(sample);
            taken += 1;
            if budget.elapsed() > Duration::from_secs(5) {
                break; // keep slow benches bounded
            }
        }
        self.result = Some((total / taken.max(1) as u32, min));
    }
}

fn run_one(name: &str, samples: usize, smoke_test: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, smoke_test, result: None };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => println!("{name:<40} mean {mean:>12.2?}   min {min:>12.2?}"),
        None if smoke_test => println!("{name:<40} ok (smoke test)"),
        None => println!("{name:<40} (no measurement taken)"),
    }
}

/// Throughput annotation (accepted and ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, smoke_test }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time (accepted for API compatibility; this shim
    /// bounds each benchmark internally instead).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, self.smoke_test, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self, sample_size: None }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Accepts a throughput annotation (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("  {}", id.id), samples, self.criterion.smoke_test, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("  {name}"), samples, self.criterion.smoke_test, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion { sample_size: 3, smoke_test: false };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { sample_size: 2, smoke_test: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(4));
        group
            .bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| b.iter(|| black_box(n * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
