//! Minimal offline stand-in for the `proptest` crate.
//!
//! The repository builds in environments without a crates.io mirror, so this
//! shim reimplements the slice of proptest the test suites rely on:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`;
//! * [`any`] for integers and `bool`, range strategies, tuple strategies,
//!   [`Just`], [`collection::vec`], [`option::of`], and `prop_oneof!`;
//! * the `proptest!` macro (with optional `#![proptest_config(..)]` header)
//!   plus `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, and
//!   `prop_assume!`.
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! deterministic per test (seeded from the test's module path and name, so
//! failures reproduce exactly), and shrinking is a **bounded greedy pass**
//! rather than a full shrink tree — on failure the runner asks each
//! strategy for smaller candidates ([`Strategy::shrink`]: integers halve
//! toward their lower bound, vectors truncate and shrink elementwise,
//! options drop to `None`, tuples shrink one component at a time), keeps
//! any candidate that still fails, and stops after a fixed candidate
//! budget — the panic reports both the original and the minimized inputs.
//! `prop_map` and `prop_oneof!` outputs do not shrink (a map cannot be
//! inverted, a union does not know which arm produced the value).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator used for all sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Raw generator state. Captured by `proptest!` before each case so a
    /// failing case's exact inputs can be persisted and replayed; pair with
    /// [`TestRng::from_state`].
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state previously captured with
    /// [`TestRng::state`]; sampling continues bit-for-bit from there.
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }
}

/// Derives the per-test seed from the test's fully qualified name, so every
/// test gets an independent but fixed random stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(hash)
}

/// How a `proptest!`-generated case ends.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; carries the rendered message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

/// Test-runner configuration (`ProptestConfig` in the prelude).
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Successful (non-rejected) cases required.
        pub cases: u32,
        /// Persist the rng state of failing cases to a
        /// `proptest-regressions/` file in the consumer crate and replay
        /// persisted states before fresh sampling on the next run.
        pub persist: bool,
    }

    impl Config {
        /// A config running `cases` cases (persistence on, as in real
        /// proptest).
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, persist: true }
        }

        /// Disables failure persistence — for properties that fail by
        /// design (e.g. harness self-tests) and must not write files.
        pub fn no_persist(mut self) -> Self {
            self.persist = false;
            self
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; the heavy simulator-driven
            // properties make a smaller default the right trade here.
            Config { cases: 48, persist: true }
        }
    }
}

/// Failure-seed persistence, mirroring real proptest's
/// `proptest-regressions/` files in a simplified single-file format.
///
/// Each line is `cc <module_path::test_name> <rng state>`; `#` lines are
/// comments. `proptest!` captures the [`TestRng`] state immediately before
/// each sample, appends it here when the case fails, and replays every
/// persisted state for the test *before* fresh sampling on the next run —
/// so a once-seen failure stays fatal until fixed. Commit the file to lock
/// regressions in.
pub mod regressions {
    use std::fs;
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    /// Directory created inside the consumer crate's manifest dir.
    pub const DIR_NAME: &str = "proptest-regressions";
    /// File inside [`DIR_NAME`] holding one failing seed per line.
    pub const FILE_NAME: &str = "regressions.txt";

    fn file_path(dir: &Path) -> PathBuf {
        dir.join(FILE_NAME)
    }

    /// Parses persisted rng states for `test_name` from an explicit
    /// directory (the unit-testable core of [`load`]).
    pub fn load_from(dir: &Path, test_name: &str) -> Vec<u64> {
        let Ok(text) = fs::read_to_string(file_path(dir)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("cc") {
                continue;
            }
            let (Some(name), Some(state)) = (parts.next(), parts.next()) else {
                continue;
            };
            if name != test_name {
                continue;
            }
            let digits = state.trim_start_matches("0x");
            if let Ok(v) = u64::from_str_radix(digits, 16) {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Appends `state` for `test_name` under an explicit directory unless
    /// an identical entry already exists. I/O errors are swallowed:
    /// persistence must never turn a red test into a different red test.
    pub fn save_to(dir: &Path, test_name: &str, state: u64) {
        if load_from(dir, test_name).contains(&state) {
            return;
        }
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = file_path(dir);
        let mut entry = String::new();
        if !path.exists() {
            entry.push_str(
                "# Seeds of failing proptest cases (offline-shim format).\n\
                 # Each line: cc <module_path::test_name> <rng state>\n\
                 # Replayed before fresh sampling on the next run; commit this file\n\
                 # to lock the regression in.\n",
            );
        }
        entry.push_str(&format!("cc {test_name} {state:#018x}\n"));
        let _ = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(entry.as_bytes()));
    }

    /// Macro entry point: loads persisted states for `test_name` from
    /// `<manifest_dir>/proptest-regressions/`.
    pub fn load(manifest_dir: &str, test_name: &str) -> Vec<u64> {
        load_from(&Path::new(manifest_dir).join(DIR_NAME), test_name)
    }

    /// Macro entry point: persists a failing state for `test_name` under
    /// `<manifest_dir>/proptest-regressions/`.
    pub fn save(manifest_dir: &str, test_name: &str, state: u64) {
        save_to(&Path::new(manifest_dir).join(DIR_NAME), test_name, state);
    }
}

/// A generator of values of type `Self::Value`.
///
/// This shim's strategies are sampling functions with an optional
/// one-step shrinker; there is no persistent shrink tree. `sample` takes
/// `&self` so one strategy can generate many values (e.g. inside
/// [`collection::vec`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing `value`, most
    /// aggressive first. The runner keeps a candidate only if it still
    /// fails, so candidates need not stay inside the strategy's support
    /// in spirit — but every implementation here does. Default: no
    /// candidates (the value is already minimal or cannot be shrunk).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, func: f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
    fn shrink_dyn(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }

    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.func)(self.strategy.sample(rng))
    }
}

/// A type-erased strategy. Boxing preserves the inner shrinker.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

/// Builds a [`Union`]; used by the `prop_oneof!` expansion.
pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
    Union { arms }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Smaller variants of a failing value (see [`Strategy::shrink`]).
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                // Toward zero: the origin, the halfway point, one step.
                let step = if v > 0 { v - 1 } else { v + 1 };
                let mut out = vec![0, v / 2, step];
                out.dedup();
                out.retain(|c| *c != v);
                out
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> std::fmt::Debug for Any<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }

    fn shrink(&self, value: &A) -> Vec<A> {
        value.shrink()
    }
}

/// The strategy of all values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                // Full-width ranges (e.g. 0u64..=u64::MAX) span 2^64, which
                // truncates to 0 in u64 — draw raw bits for those instead.
                let span = (hi - lo + 1) as u128;
                let offset = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (lo + offset as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Candidates between a range's lower bound and a failing value: the
/// bound itself, the halfway point, and one step down — the integer
/// shrink ladder every range strategy shares.
fn shrink_toward(lo: i128, v: i128) -> Vec<i128> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
    out.dedup();
    out.retain(|c| *c != v);
    out
}

macro_rules! impl_tuple_strategy {
    ($($idx:tt => $name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }

            // One component at a time, the others held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut tuple = value.clone();
                        tuple.$idx = cand;
                        out.push(tuple);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(0 => A);
impl_tuple_strategy!(0 => A, 1 => B);
impl_tuple_strategy!(0 => A, 1 => B, 2 => C);
impl_tuple_strategy!(0 => A, 1 => B, 2 => C, 3 => D);
impl_tuple_strategy!(0 => A, 1 => B, 2 => C, 3 => D, 4 => E);
impl_tuple_strategy!(0 => A, 1 => B, 2 => C, 3 => D, 4 => E, 5 => F);

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }

        // `None` first (the biggest step down), then the inner ladder.
        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(inner) => std::iter::once(None)
                    .chain(self.0.shrink(inner).into_iter().map(Some))
                    .collect(),
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length interval for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors whose length falls in `size`, elementwise drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }

        // Truncations first (never below the length floor), then each
        // element's first shrink candidate in place.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            let half = self.size.lo + len.saturating_sub(self.size.lo) / 2;
            for shorter in [self.size.lo, half, len.saturating_sub(1)] {
                let dup = out.iter().any(|c: &Vec<_>| c.len() == shorter);
                if shorter >= self.size.lo && shorter < len && !dup {
                    out.push(value[..shorter].to_vec());
                }
            }
            for (i, elem) in value.iter().enumerate() {
                if let Some(cand) = self.elem.shrink(elem).into_iter().next() {
                    let mut copy = value.clone();
                    copy[i] = cand;
                    out.push(copy);
                }
            }
            out
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests.
///
/// Supports the subset of real proptest syntax the suites use: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let strat = ($(($strat),)+);
            // Rebinds the sampled tuple through the user's patterns and
            // runs the body; shrinking re-invokes it on candidates. The
            // helper pins the closure's argument to the strategy's value
            // type so the body type-checks before the first call.
            fn __typed<V, F>(_: &impl $crate::Strategy<Value = V>, f: F) -> F
            where
                F: Fn(&V) -> ::std::result::Result<(), $crate::TestCaseError>,
            {
                f
            }
            let run = __typed(&strat, |vals| {
                let ($($arg,)+) = ::std::clone::Clone::clone(vals);
                $body
                ::std::result::Result::Ok(())
            });
            let persist_root = env!("CARGO_MANIFEST_DIR");
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            // (failing inputs, failure message, seed provenance note)
            let mut failing = ::std::option::Option::None;
            // Persisted failures replay before any fresh sampling, so a
            // once-seen regression stays fatal until actually fixed.
            if config.persist {
                for state in $crate::regressions::load(persist_root, test_name) {
                    let mut replay = $crate::TestRng::from_state(state);
                    let vals = $crate::Strategy::sample(&strat, &mut replay);
                    if let ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) =
                        run(&vals)
                    {
                        failing = ::std::option::Option::Some((
                            vals,
                            msg,
                            format!("replayed persisted seed {state:#018x}"),
                        ));
                        break;
                    }
                }
            }
            // Give rejection-heavy properties (prop_assume!) room to find
            // enough accepted cases without looping forever.
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while failing.is_none() && accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                // Captured *before* sampling: this state replays the case.
                let case_state = rng.state();
                let vals = $crate::Strategy::sample(&strat, &mut rng);
                match run(&vals) {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        let note = if config.persist {
                            $crate::regressions::save(persist_root, test_name, case_state);
                            format!(
                                "seed {case_state:#018x} persisted to {}/{} (replays first on the next run)",
                                $crate::regressions::DIR_NAME,
                                $crate::regressions::FILE_NAME
                            )
                        } else {
                            ::std::string::String::from("seed persistence disabled for this property")
                        };
                        failing = ::std::option::Option::Some((vals, msg, note));
                    }
                }
            }
            if let ::std::option::Option::Some((vals, msg, note)) = failing {
                // Bounded greedy shrink: keep the first candidate that
                // still fails, restart from it, give up once the candidate
                // budget is spent or no candidate reproduces the failure.
                let mut best = ::std::clone::Clone::clone(&vals);
                let mut best_msg = msg;
                let mut budget: u32 = 64;
                'shrinking: loop {
                    let mut improved = false;
                    for cand in $crate::Strategy::shrink(&strat, &best) {
                        if budget == 0 {
                            break 'shrinking;
                        }
                        budget -= 1;
                        if let ::std::result::Result::Err($crate::TestCaseError::Fail(m)) =
                            run(&cand)
                        {
                            best = cand;
                            best_msg = m;
                            improved = true;
                            break;
                        }
                    }
                    if !improved {
                        break;
                    }
                }
                panic!(
                    "property `{}` failed at case {} (attempt {})\n\
                     {}\n\
                     original input: {:?}\n\
                     minimal failing input: {:?}\n{}",
                    stringify!($name),
                    accepted,
                    attempts,
                    note,
                    vals,
                    best,
                    best_msg
                );
            }
            // A property that never got past its prop_assume! guards proved
            // nothing; vacuous success must not look green.
            assert!(
                accepted > 0,
                "property `{}`: all {} attempts were rejected by prop_assume!",
                stringify!($name),
                attempts
            );
            if accepted < config.cases {
                eprintln!(
                    "warning: property `{}` accepted only {}/{} cases ({} attempts)",
                    stringify!($name),
                    accepted,
                    config.cases,
                    attempts
                );
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for("x::z");
        assert_ne!(crate::rng_for("x::y").next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = crate::rng_for("bounds");
        let strat = (1u64..10, 0u8..=3).prop_map(|(a, b)| a + u64::from(b));
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..=12).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::rng_for("vec");
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u8>(), 3..=3);
        assert_eq!(exact.sample(&mut rng).len(), 3);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::rng_for("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The macro itself: args bind, asserts pass, assume rejects.
        #[test]
        fn macro_end_to_end(x in 0u64..100, pair in (any::<bool>(), 1usize..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(pair.1, pair.1);
            prop_assert_ne!(pair.1, 0);
        }
    }

    #[test]
    fn range_shrink_steps_toward_the_lower_bound() {
        let strat = 5u64..100;
        assert_eq!(strat.shrink(&80), vec![5, 42, 79]);
        assert_eq!(strat.shrink(&6), vec![5]);
        assert!(strat.shrink(&5).is_empty(), "the lower bound is minimal");
        let signed = -8i32..=8;
        for cand in signed.shrink(&8) {
            assert!((-8..8).contains(&cand), "{cand} escaped the range");
        }
    }

    #[test]
    fn any_shrinks_toward_zero_and_false() {
        assert_eq!(any::<u64>().shrink(&9), vec![0, 4, 8]);
        assert!(any::<u64>().shrink(&0).is_empty());
        assert_eq!(any::<i32>().shrink(&-7), vec![0, -3, -6]);
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
    }

    #[test]
    fn vec_shrink_truncates_but_respects_the_length_floor() {
        let strat = crate::collection::vec(0u8..10, 2..=6);
        let failing = vec![7u8, 7, 7, 7, 7, 7];
        let candidates = strat.shrink(&failing);
        assert!(candidates.iter().all(|c| c.len() >= 2), "floor violated: {candidates:?}");
        assert!(candidates.contains(&vec![7u8, 7]), "must try the floor truncation");
        assert!(
            candidates.contains(&vec![0u8, 7, 7, 7, 7, 7]),
            "must try shrinking elements in place"
        );
        assert!(strat.shrink(&vec![0u8, 0]).is_empty(), "floor of zeros is minimal");
    }

    #[test]
    fn option_and_tuple_and_boxed_shrinks_compose() {
        let opt = crate::option::of(1u8..50);
        assert_eq!(opt.shrink(&Some(10)), vec![None, Some(1), Some(5), Some(9)]);
        assert!(opt.shrink(&None).is_empty());
        let tuple = (0u8..10, 0u8..10);
        let cands = tuple.shrink(&(4, 0));
        assert!(cands.iter().all(|&(_, b)| b == 0), "minimal component must stay fixed");
        assert!(cands.contains(&(0, 0)) && cands.contains(&(2, 0)) && cands.contains(&(3, 0)));
        let boxed = (3u64..90).boxed();
        assert_eq!(boxed.shrink(&60), vec![3, 31, 59], "boxing must preserve the shrinker");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8).no_persist())]
        // No `#[test]`: this property exists to fail and is driven by
        // `failing_property_reports_the_minimized_input` below. It fails by
        // design, so persistence is off — it must not write files.
        fn shrink_probe(x in 0u64..1000) {
            prop_assert!(x < 17, "x = {} reached the forbidden zone", x);
        }
    }

    #[test]
    fn failing_property_reports_the_minimized_input() {
        let payload = std::panic::catch_unwind(shrink_probe).expect_err("probe must fail");
        let msg = payload.downcast_ref::<String>().expect("panic carries a String");
        assert!(
            msg.contains("minimal failing input: (17,)"),
            "greedy shrink must land exactly on the threshold:\n{msg}"
        );
        assert!(msg.contains("original input: ("), "the unshrunk case must also be reported");
        assert!(
            msg.contains("persistence disabled"),
            "no_persist must be reported instead of writing files:\n{msg}"
        );
    }

    #[test]
    fn captured_state_replays_identical_samples() {
        let mut rng = crate::rng_for("replay");
        let strat = (0u64..1000, any::<bool>(), crate::collection::vec(0u8..9, 1..4));
        for _ in 0..10 {
            let state = rng.state();
            let original = strat.sample(&mut rng);
            let mut replay = crate::TestRng::from_state(state);
            assert_eq!(strat.sample(&mut replay), original, "replay must be bit-for-bit");
        }
    }

    #[test]
    fn regressions_round_trip_dedup_and_isolation() {
        let dir =
            std::env::temp_dir().join(format!("tetrabft-proptest-shim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(crate::regressions::load_from(&dir, "mod::prop_a").is_empty());

        crate::regressions::save_to(&dir, "mod::prop_a", 0xdead_beef);
        crate::regressions::save_to(&dir, "mod::prop_a", 0xdead_beef); // dup ignored
        crate::regressions::save_to(&dir, "mod::prop_a", 0x1234);
        crate::regressions::save_to(&dir, "mod::prop_b", 0xffff);

        assert_eq!(
            crate::regressions::load_from(&dir, "mod::prop_a"),
            vec![0xdead_beef, 0x1234],
            "states come back in insertion order, deduplicated"
        );
        assert_eq!(
            crate::regressions::load_from(&dir, "mod::prop_b"),
            vec![0xffff],
            "per-test isolation"
        );
        let text = std::fs::read_to_string(dir.join(crate::regressions::FILE_NAME)).unwrap();
        assert!(text.starts_with('#'), "file carries its format header:\n{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
