//! Minimal offline stand-in for the `rand` crate.
//!
//! The repository builds in environments without a crates.io mirror, so this
//! shim provides the small slice of the `rand` 0.9 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is all the discrete
//! event simulator requires (simulation runs must be a pure function of the
//! seed). It is **not** a cryptographic RNG and never needs to be.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256**).
    ///
    /// Unlike the real `rand::rngs::StdRng` this generator is stable across
    /// shim versions; simulation traces keyed by seed stay reproducible.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                if span == 0 {
                    // Full-width u128 wrap can only happen for 128-bit types,
                    // which this shim does not cover.
                    unreachable!()
                }
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(3..9);
            assert!((3..9).contains(&x));
            let y: u64 = rng.random_range(2..=5);
            assert!((2..=5).contains(&y));
            let z: i8 = rng.random_range(-4i8..4);
            assert!((-4..4).contains(&z));
        }
    }
}
