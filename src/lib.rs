//! Umbrella crate for the TetraBFT reproduction: re-exports every workspace
//! crate and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! Start with [`consensus`] ([`tetrabft`]) for single-shot consensus,
//! [`multishot`] for the pipelined blockchain (mempool, batching, and the
//! sharded mode included), [`ledger`] for the account state machine and
//! state roots executed on top, [`engine`] for the unified driver loop
//! every runtime shares, [`sim`] for the deterministic test harness, and
//! [`net`] for real TCP deployment.
//!
//! # Examples
//!
//! ```
//! use tetrabft_suite::prelude::*;
//!
//! let cfg = Config::new(4)?;
//! let mut sim = SimBuilder::new(4)
//!     .policy(LinkPolicy::synchronous(1))
//!     .build(|id| TetraNode::new(cfg, Params::new(100), id, Value::from_u64(3)));
//! assert!(sim.run_until_outputs(4, 100_000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tetrabft as consensus;
pub use tetrabft_baselines as baselines;
pub use tetrabft_engine as engine;
pub use tetrabft_ledger as ledger;
pub use tetrabft_mc as mc;
pub use tetrabft_multishot as multishot;
pub use tetrabft_net as net;
pub use tetrabft_sim as sim;
pub use tetrabft_types as types;
pub use tetrabft_wire as wire;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use tetrabft::{Message, Params, TetraNode};
    pub use tetrabft_ledger::{
        shard_of_account, transfer_admission, Account, AccountId, Ledger, LedgerReplica, StateRoot,
        StateRootMismatch, Transfer,
    };
    pub use tetrabft_multishot::{
        Block, BlockHash, Finalized, FinalizedMerge, GlobalFinalized, Mempool, MsMessage,
        MultiShotNode, RawBytes, ShardSpec, ShardedSim, SubmitError, Transaction, Tx, TxId,
        GENESIS_HASH,
    };
    pub use tetrabft_sim::{Input, LinkPolicy, Node, Sim, SimBuilder, Submitter, Time};
    pub use tetrabft_types::{Config, NodeId, Phase, Slot, Value, View};
}
