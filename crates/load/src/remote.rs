//! Parent side of the child-process fleet.
//!
//! One process cannot hold 10k client sockets *and* the cluster's own
//! sockets under a 20k file-descriptor rlimit, so the big fleets run in
//! a child process with a descriptor table of its own: the parent
//! re-executes its own binary with `TETRABFT_LOAD_CHILD=1` (the child's
//! `main` must call [`maybe_run_child`](crate::maybe_run_child) first
//! thing) and drives it over stdio with the protocol documented there.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use tetrabft_multishot::TxId;

use crate::fleet::{FleetReport, FleetSpec};

/// A fleet running in a re-executed child of the current binary.
pub struct RemoteFleet {
    child: Child,
    stdin: Option<BufWriter<ChildStdin>>,
    stdout: BufReader<ChildStdout>,
}

impl RemoteFleet {
    /// Re-executes the current binary as a fleet child and ships it
    /// `spec`.
    ///
    /// # Errors
    ///
    /// Fails if the child cannot be spawned or its pipes wired up.
    pub fn spawn(spec: &FleetSpec) -> io::Result<RemoteFleet> {
        let exe = std::env::current_exe()?;
        let mut child = Command::new(exe)
            .env("TETRABFT_LOAD_CHILD", "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut fleet = RemoteFleet {
            child,
            stdin: Some(BufWriter::new(stdin)),
            stdout: BufReader::new(stdout),
        };
        let pipe = fleet.stdin.as_mut().expect("stdin open");
        writeln!(pipe, "{}", spec.to_line())?;
        pipe.flush()?;
        Ok(fleet)
    }

    /// Blocks until the child's fleet has dialed every client; returns
    /// the connected count.
    ///
    /// # Errors
    ///
    /// Fails on a broken pipe or a malformed `READY` line.
    pub fn wait_ready(&mut self) -> io::Result<u64> {
        let mut line = String::new();
        self.stdout.read_line(&mut line)?;
        line.trim()
            .strip_prefix("READY ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad READY: {line}")))
    }

    /// Starts the child's submit window.
    ///
    /// # Errors
    ///
    /// Fails on a broken pipe.
    pub fn go(&mut self) -> io::Result<()> {
        let pipe = self.stdin.as_mut().expect("stdin open");
        writeln!(pipe, "GO")?;
        pipe.flush()
    }

    /// Forwards one finalized transaction id (buffered; call
    /// [`RemoteFleet::flush`] after a batch).
    ///
    /// # Errors
    ///
    /// Fails on a broken pipe.
    pub fn finalized(&mut self, id: TxId) -> io::Result<()> {
        self.stdin.as_mut().expect("stdin open").write_all(&id.0.to_le_bytes())
    }

    /// Flushes buffered finalized ids to the child.
    ///
    /// # Errors
    ///
    /// Fails on a broken pipe.
    pub fn flush(&mut self) -> io::Result<()> {
        self.stdin.as_mut().expect("stdin open").flush()
    }

    /// Closes the child's stdin (ending its run) and reads its report.
    ///
    /// # Errors
    ///
    /// Fails if the child exits abnormally or its report is malformed.
    pub fn finish(mut self) -> io::Result<FleetReport> {
        drop(self.stdin.take());
        let mut report = FleetReport::default();

        let mut line = String::new();
        self.stdout.read_line(&mut line)?;
        let stats = line.trim().strip_prefix("STATS ").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad STATS: {line}"))
        })?;
        for field in stats.split_whitespace() {
            let Some((key, value)) = field.split_once('=') else { continue };
            let value: u64 = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad STATS value"))?;
            match key {
                "connected" => report.connected = value,
                "submitted" => report.submitted = value,
                "confirmed" => report.confirmed = value,
                "inflight_hwm" => report.inflight_hwm = value,
                _ => {}
            }
        }

        line.clear();
        self.stdout.read_line(&mut line)?;
        let count: usize = line
            .trim()
            .strip_prefix("SAMPLES ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad SAMPLES"))?;
        let mut word = [0u8; 4];
        report.samples_us.reserve(count);
        for _ in 0..count {
            self.stdout.read_exact(&mut word)?;
            report.samples_us.push(u32::from_le_bytes(word));
        }

        let status = self.child.wait()?;
        if !status.success() {
            return Err(io::Error::other(format!("load child exited with {status}")));
        }
        Ok(report)
    }
}

impl Drop for RemoteFleet {
    fn drop(&mut self) {
        // Normal shutdown goes through `finish`; on an error path make
        // sure the child does not outlive the harness.
        drop(self.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
