//! Measurement results: latency percentiles, per-shard utilization, the
//! saturation knee, and the printed latency/throughput matrix.

use std::time::Duration;

/// One load point: what was offered, what the cluster finalized, and
/// what the commit latency distribution looked like.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Aggregate offered load (tx/s) across the fleet.
    pub offered_tps: u64,
    /// Clients that completed the handshake and submitted.
    pub connected: u64,
    /// Transactions submitted during the window.
    pub submitted: u64,
    /// Submitted transactions matched to a finalization.
    pub confirmed: u64,
    /// Finalized throughput actually achieved, tx/s.
    pub achieved_tps: f64,
    /// Median commit latency, microseconds.
    pub p50_us: u32,
    /// 99th-percentile commit latency, microseconds.
    pub p99_us: u32,
    /// 99.9th-percentile commit latency, microseconds.
    pub p999_us: u32,
    /// High-water mark of in-flight (unconfirmed) transactions.
    pub inflight_hwm: u64,
    /// Per-shard share of the finalized traffic.
    pub per_shard: Vec<ShardUtil>,
}

/// How much of a run's finalized traffic one shard carried.
#[derive(Debug, Clone)]
pub struct ShardUtil {
    /// Shard index.
    pub shard: usize,
    /// Transactions this shard finalized during the window.
    pub txs: u64,
    /// Blocks this shard finalized during the window.
    pub blocks: u64,
    /// This shard's fraction of all finalized transactions.
    pub share: f64,
}

/// `p`-th percentile (0 < p < 100) of a latency sample set, nearest-rank
/// on a sorted copy. Returns 0 for an empty set.
#[must_use]
pub fn percentile_us(samples: &[u32], p: f64) -> u32 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Index of the saturation knee in a rate-ordered sweep: the first load
/// point where the cluster either finalizes less than 90% of what was
/// offered, or let the in-flight backlog grow past one full second's
/// worth of offered load. The second clause catches open-loop saturation
/// that the first one misses: the post-window grace drain can push
/// *confirmed* back over 90% even while the queue was growing without
/// bound — but an unbounded queue always leaves a backlog high-water
/// mark of the order `(offered − capacity) × window`, several seconds of
/// offered load, while everything short of saturation (steady-state
/// in-flight population, even a one-off view-change stall) stays well
/// under a second's worth. Returns `reports.len()` if no point
/// saturated.
#[must_use]
pub fn knee_index(reports: &[LoadReport]) -> usize {
    reports
        .iter()
        .position(|r| r.achieved_tps < 0.9 * r.offered_tps as f64 || r.inflight_hwm > r.offered_tps)
        .unwrap_or(reports.len())
}

fn fmt_ms(us: u32) -> String {
    format!("{:.1}", f64::from(us) / 1000.0)
}

/// Pretty-prints a sweep as a Markdown-ish latency/throughput matrix,
/// one row per load point (the shape `wan_latency` prints its tables
/// in).
pub fn print_matrix(title: &str, reports: &[LoadReport]) {
    let header = [
        "offered tx/s",
        "finalized tx/s",
        "clients",
        "p50 ms",
        "p99 ms",
        "p99.9 ms",
        "inflight hwm",
        "shard shares",
    ];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let shares: Vec<String> =
                r.per_shard.iter().map(|s| format!("{:.0}%", s.share * 100.0)).collect();
            vec![
                r.offered_tps.to_string(),
                format!("{:.0}", r.achieved_tps),
                r.connected.to_string(),
                fmt_ms(r.p50_us),
                fmt_ms(r.p99_us),
                fmt_ms(r.p999_us),
                r.inflight_hwm.to_string(),
                shares.join("/"),
            ]
        })
        .collect();

    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        format!("| {} |", padded.join(" | "))
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in &rows {
        println!("{}", fmt_row(row));
    }
}

/// Builds a [`LoadReport`] from a fleet report plus per-shard tallies.
#[must_use]
pub fn assemble(
    offered_tps: u64,
    duration: Duration,
    fleet: &crate::FleetReport,
    shard_txs: &[u64],
    shard_blocks: &[u64],
) -> LoadReport {
    let total: u64 = shard_txs.iter().sum::<u64>().max(1);
    let per_shard = shard_txs
        .iter()
        .zip(shard_blocks)
        .enumerate()
        .map(|(shard, (&txs, &blocks))| ShardUtil {
            shard,
            txs,
            blocks,
            share: txs as f64 / total as f64,
        })
        .collect();
    LoadReport {
        offered_tps,
        connected: fleet.connected,
        submitted: fleet.submitted,
        confirmed: fleet.confirmed,
        achieved_tps: fleet.confirmed as f64 / duration.as_secs_f64(),
        p50_us: percentile_us(&fleet.samples_us, 50.0),
        p99_us: percentile_us(&fleet.samples_us, 99.0),
        p999_us: percentile_us(&fleet.samples_us, 99.9),
        inflight_hwm: fleet.inflight_hwm,
        per_shard,
    }
}
