//! The client fleet: `k` open-loop Poisson submitters multiplexed onto
//! **one** reactor thread over the `polling` shim.
//!
//! Every client is a non-blocking TCP connection speaking the
//! [`CLIENT_HELLO_ID`] dial protocol of `tetrabft-net`'s reactor: a
//! 10-byte hello, an 8-byte incarnation ack, then varint-framed
//! transaction payloads. Submissions are **open loop** — each client
//! draws exponential inter-arrival gaps (seeded `rand` shim, hand-rolled
//! inverse-CDF) and timestamps a transaction the moment it is *due*, not
//! the moment the socket accepts it, so queueing delay under saturation
//! shows up in the latency percentiles instead of silently throttling
//! the offered rate.
//!
//! Confirmations flow back out of band: the harness observes block
//! finalizations on the cluster side and feeds the finalized [`TxId`]s
//! to the fleet (in-process channel, or the stdin pipe of a
//! [`spawn_remote`](crate::spawn_remote) child process). The frame
//! payload *is* the raw transaction, and both sides digest it with the
//! same FNV-1a [`TxId::of`], so submissions and finalizations pair up
//! with no extra protocol.

use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{os::connect_stream, Event, Events, Poller};
use rand::{Rng, SeedableRng, StdRng};
use tetrabft_multishot::TxId;
use tetrabft_wire::frame::encode_frame_into;

use crate::CLIENT_HELLO_ID;

/// Hard ceiling on concurrently in-flight dials, so a 10k-client ramp
/// never overruns a node listener's accept backlog.
const DIAL_WAVE: usize = 512;

/// Reactor tick when the fleet has nothing scheduled sooner.
const POLL: Duration = Duration::from_millis(25);

/// Give up on clients whose dial never resolves after this long.
const DIAL_PHASE_CAP: Duration = Duration::from_secs(60);

/// How long after the submit window the fleet keeps matching late
/// confirmations if its control channel is never closed (safety net; the
/// harness normally closes the channel much earlier).
const LINGER_CAP: Duration = Duration::from_secs(30);

/// What one fleet run is asked to do.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Node addresses; client `c` dials `addrs[c % addrs.len()]`.
    pub addrs: Vec<SocketAddr>,
    /// Number of concurrent client connections.
    pub clients: usize,
    /// Aggregate offered load, transactions per second across the fleet.
    pub rate_tps: u64,
    /// Length of the submit window, measured from the GO signal.
    pub duration: Duration,
    /// Payload size per transaction (floored at 20 bytes of unique header).
    pub payload_bytes: usize,
    /// Seed for the Poisson arrival process and payload tags.
    pub seed: u64,
}

impl FleetSpec {
    /// One-line wire form for the child-process control pipe.
    #[must_use]
    pub fn to_line(&self) -> String {
        let addrs: Vec<String> = self.addrs.iter().map(ToString::to_string).collect();
        format!(
            "addrs={} clients={} rate={} duration_ms={} payload={} seed={}",
            addrs.join(","),
            self.clients,
            self.rate_tps,
            self.duration.as_millis(),
            self.payload_bytes,
            self.seed
        )
    }

    /// Parses [`FleetSpec::to_line`] output.
    #[must_use]
    pub fn from_line(line: &str) -> Option<FleetSpec> {
        let mut addrs = Vec::new();
        let (mut clients, mut rate, mut duration_ms, mut payload, mut seed) =
            (None, None, None, None, None);
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "addrs" => {
                    for a in value.split(',') {
                        addrs.push(a.parse().ok()?);
                    }
                }
                "clients" => clients = value.parse().ok(),
                "rate" => rate = value.parse().ok(),
                "duration_ms" => duration_ms = value.parse().ok(),
                "payload" => payload = value.parse().ok(),
                "seed" => seed = value.parse().ok(),
                _ => return None,
            }
        }
        Some(FleetSpec {
            addrs,
            clients: clients?,
            rate_tps: rate?,
            duration: Duration::from_millis(duration_ms?),
            payload_bytes: payload?,
            seed: seed?,
        })
    }
}

/// What one fleet run measured.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Clients sustained to the end of the run: completed the hello/ack
    /// handshake and never torn down mid-window.
    pub connected: u64,
    /// Transactions submitted during the window.
    pub submitted: u64,
    /// Submitted transactions matched to a finalization.
    pub confirmed: u64,
    /// High-water mark of submitted-but-unconfirmed transactions.
    pub inflight_hwm: u64,
    /// Commit latency samples, microseconds, one per confirmation.
    pub samples_us: Vec<u32>,
}

/// Control messages the harness sends into a running fleet.
#[derive(Debug)]
pub enum FleetMsg {
    /// Start the submit window now.
    Go,
    /// One transaction id was finalized by the cluster.
    Finalized(TxId),
}

/// Caller-side handle pairing the control channel with the fleet's
/// poller, so every send can wake the reactor out of `wait`.
#[derive(Clone)]
pub struct FleetLink {
    tx: Sender<FleetMsg>,
    poller: Arc<Poller>,
    connected: Arc<AtomicU64>,
}

impl FleetLink {
    /// Sends one control message and wakes the fleet reactor.
    pub fn send(&self, msg: FleetMsg) {
        if self.tx.send(msg).is_ok() {
            let _ = self.poller.notify();
        }
    }

    /// Clients currently connected (post-handshake), sampled live.
    #[must_use]
    pub fn connected_now(&self) -> u64 {
        self.connected.load(Ordering::Relaxed)
    }
}

/// Spawns the fleet reactor on its own thread.
///
/// Returns once every client has been dialed and the handshakes have
/// settled, i.e. when the fleet is ready for [`FleetMsg::Go`]. Dropping
/// all [`FleetLink`] clones (closing the channel) ends the run; the
/// join handle then yields the [`FleetReport`].
///
/// # Errors
///
/// Propagates poller or thread creation failure; per-client dial
/// failures show up in [`FleetReport::connected`] instead of failing
/// the run.
pub fn spawn_fleet(
    spec: FleetSpec,
) -> io::Result<(FleetLink, std::thread::JoinHandle<FleetReport>)> {
    let poller = Arc::new(Poller::new()?);
    let (tx, rx) = std::sync::mpsc::channel();
    let connected = Arc::new(AtomicU64::new(0));
    let link = FleetLink { tx, poller: Arc::clone(&poller), connected: Arc::clone(&connected) };
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("load-fleet".into())
        .spawn(move || run_fleet(&spec, &poller, &rx, &connected, &ready_tx))?;
    match ready_rx.recv() {
        Ok(()) => Ok((link, handle)),
        // The fleet thread died before signalling readiness.
        Err(_) => match handle.join() {
            Ok(_) => Err(io::Error::other("fleet exited before becoming ready")),
            Err(panic) => std::panic::resume_unwind(panic),
        },
    }
}

/// Per-connection progress through the dial protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    /// Non-blocking connect in flight.
    Connecting,
    /// Connected; writing the 10-byte client hello.
    Hello,
    /// Hello sent; reading the node's 8-byte incarnation ack.
    Ack { got: usize },
    /// Streaming framed transactions.
    Up,
    /// Dial failed or the node hung up; the client sits out the run.
    Dead,
}

struct Client {
    /// Poller key == index in the fleet's client table.
    key: usize,
    stream: Option<TcpStream>,
    state: ClientState,
    /// Framed bytes the socket has not accepted yet (open-loop queue).
    out: Vec<u8>,
    cursor: usize,
    /// Interest currently armed with the poller, oneshot-style.
    armed: Option<(bool, bool)>,
    /// Transactions this client has generated (payload tag).
    seq: u64,
}

impl Client {
    fn new(key: usize) -> Client {
        Client {
            key,
            stream: None,
            state: ClientState::Dead,
            out: Vec::new(),
            cursor: 0,
            armed: None,
            seq: 0,
        }
    }

    /// Writes as much pending output as the socket will take; leaves
    /// writable interest armed iff bytes remain. Returns `false` on a
    /// dead connection.
    fn flush(&mut self, poller: &Poller) -> bool {
        let Some(stream) = self.stream.as_ref() else { return false };
        while self.cursor < self.out.len() {
            match stream_write(stream, &self.out[self.cursor..]) {
                Ok(0) => return false,
                Ok(n) => self.cursor += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => return false,
            }
        }
        if self.cursor == self.out.len() {
            self.out.clear();
            self.cursor = 0;
        }
        let want_write = !self.out.is_empty();
        self.sync_interest(poller, (false, want_write));
        true
    }

    /// Oneshot re-arm: modifies registered interest only when it changed.
    fn sync_interest(&mut self, poller: &Poller, want: (bool, bool)) {
        if self.armed == Some(want) {
            return;
        }
        if let Some(stream) = self.stream.as_ref() {
            let ev = Event { key: self.key, readable: want.0, writable: want.1 };
            if poller.modify(stream, ev).is_ok() {
                self.armed = Some(want);
            }
        }
    }

    /// Deregisters and drops the socket; the client sits out the run.
    fn retire(&mut self, poller: &Poller) {
        if let Some(stream) = self.stream.take() {
            // Poll-backend registrations key on the raw fd: always
            // delete before the fd closes.
            let _ = poller.delete(&stream);
        }
        self.state = ClientState::Dead;
        self.armed = None;
        self.out.clear();
        self.cursor = 0;
    }

    /// Starts one non-blocking dial and registers it writable.
    fn dial(&mut self, addr: SocketAddr, poller: &Poller) -> io::Result<()> {
        let stream = connect_stream(&addr)?;
        stream.set_nodelay(true)?;
        poller.add(&stream, Event { key: self.key, readable: false, writable: true })?;
        self.stream = Some(stream);
        self.state = ClientState::Connecting;
        self.armed = Some((false, true));
        Ok(())
    }

    /// Drives connect → hello → ack one readiness event at a time.
    fn advance_handshake(&mut self, poller: &Poller) {
        if self.stream.is_none() {
            self.state = ClientState::Dead;
            return;
        }
        if self.state == ClientState::Connecting {
            match self.stream.as_ref().expect("stream present").take_error() {
                Ok(None) => {
                    self.state = ClientState::Hello;
                    self.out.clear();
                    self.cursor = 0;
                    self.out.extend_from_slice(&CLIENT_HELLO_ID.to_be_bytes());
                    self.out.extend_from_slice(&0u64.to_be_bytes());
                }
                _ => {
                    self.retire(poller);
                    return;
                }
            }
        }
        if self.state == ClientState::Hello {
            if !self.flush(poller) {
                self.retire(poller);
                return;
            }
            if self.out.is_empty() {
                self.state = ClientState::Ack { got: 0 };
                self.sync_interest(poller, (true, false));
            } else {
                return; // hello partially written; flush left writable armed
            }
        }
        if let ClientState::Ack { got } = self.state {
            let mut got = got;
            let mut buf = [0u8; 8];
            loop {
                let read = {
                    let mut stream = self.stream.as_ref().expect("stream present");
                    stream.read(&mut buf[..8 - got])
                };
                match read {
                    Ok(0) => {
                        self.retire(poller);
                        return;
                    }
                    Ok(n) => {
                        got += n;
                        if got == 8 {
                            self.state = ClientState::Up;
                            self.sync_interest(poller, (false, false));
                            return;
                        }
                        self.state = ClientState::Ack { got };
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.state = ClientState::Ack { got };
                        self.sync_interest(poller, (true, false));
                        return;
                    }
                    Err(_) => {
                        self.retire(poller);
                        return;
                    }
                }
            }
        }
    }
}

/// EINTR-tolerant write on a shared non-blocking stream.
fn stream_write(mut stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
    loop {
        match stream.write(buf) {
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            other => return other,
        }
    }
}

/// Draws one exponential inter-arrival gap for a process of
/// `rate_per_us` events per microsecond (inverse CDF over the top 53
/// bits of a uniform draw — the `rand` shim has no float sampling of
/// its own).
fn exp_gap(rng: &mut StdRng, rate_per_us: f64) -> Duration {
    let u = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / 9_007_199_254_740_992.0);
    let gap_us = -u.ln() / rate_per_us;
    // Cap pathological tail draws so one unlucky sample cannot idle a
    // client past the whole submit window.
    Duration::from_micros(gap_us.min(10_000_000.0) as u64)
}

fn run_fleet(
    spec: &FleetSpec,
    poller: &Poller,
    ctl: &Receiver<FleetMsg>,
    connected: &AtomicU64,
    ready: &Sender<()>,
) -> FleetReport {
    let mut clients: Vec<Client> = (0..spec.clients).map(Client::new).collect();
    let mut report = FleetReport::default();
    let mut events = Events::new();

    // ---- dial phase: ramp every client up, DIAL_WAVE at a time --------
    let dial_deadline = Instant::now() + DIAL_PHASE_CAP;
    let mut next_dial = 0usize;
    let mut in_flight = 0usize;
    let mut settled = 0usize;
    while settled + in_flight < spec.clients || in_flight > 0 {
        while in_flight < DIAL_WAVE && next_dial < spec.clients {
            let key = next_dial;
            next_dial += 1;
            let addr = spec.addrs[key % spec.addrs.len()];
            match clients[key].dial(addr, poller) {
                Ok(()) => in_flight += 1,
                Err(_) => settled += 1, // stays Dead
            }
        }
        if Instant::now() > dial_deadline {
            for client in clients.iter_mut().filter(|c| c.state != ClientState::Up) {
                client.retire(poller);
            }
            break;
        }
        if poller.wait(&mut events, Some(POLL)).is_err() {
            break;
        }
        for ev in events.iter() {
            let client = &mut clients[ev.key];
            client.armed = Some((false, false));
            let was_pending = !matches!(client.state, ClientState::Up | ClientState::Dead);
            client.advance_handshake(poller);
            if was_pending && matches!(client.state, ClientState::Up | ClientState::Dead) {
                settled += 1;
                in_flight -= 1;
                if client.state == ClientState::Up {
                    connected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    report.connected = connected.load(Ordering::Relaxed);
    let _ = ready.send(());

    // ---- wait for GO ---------------------------------------------------
    loop {
        match ctl.recv() {
            Ok(FleetMsg::Go) => break,
            Ok(FleetMsg::Finalized(_)) => {} // nothing submitted yet
            Err(_) => return report,         // harness gave up before GO
        }
    }

    // ---- submit window -------------------------------------------------
    let started = Instant::now();
    let deadline = started + spec.duration;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let per_client_rate = spec.rate_tps as f64 / 1e6 / report.connected.max(1) as f64;

    let mut due: BinaryHeap<std::cmp::Reverse<(Instant, usize)>> = BinaryHeap::new();
    for client in &clients {
        if client.state == ClientState::Up {
            due.push(std::cmp::Reverse((started + exp_gap(&mut rng, per_client_rate), client.key)));
        }
    }

    let mut pending: HashMap<TxId, Instant> = HashMap::new();
    let mut payload = vec![0u8; spec.payload_bytes.max(20)];
    let mut frame: Vec<u8> = Vec::with_capacity(payload.len() + 4);
    payload[..8].copy_from_slice(&spec.seed.to_le_bytes());

    loop {
        let now = Instant::now();

        // 1. Confirmations (channel close = end of run).
        loop {
            match ctl.try_recv() {
                Ok(FleetMsg::Finalized(id)) => {
                    if let Some(at) = pending.remove(&id) {
                        let us = now.saturating_duration_since(at).as_micros();
                        report.samples_us.push(u32::try_from(us).unwrap_or(u32::MAX));
                        report.confirmed += 1;
                    }
                }
                Ok(FleetMsg::Go) => {}
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // `connected` now reports what was *sustained*: every
                    // client that died mid-window has subtracted itself.
                    report.connected = connected.load(Ordering::Relaxed);
                    return report;
                }
            }
        }

        // 2. Due submissions (open loop: timestamp at the due instant).
        while let Some(&std::cmp::Reverse((at, key))) = due.peek() {
            if at >= deadline {
                due.clear();
                break;
            }
            if at > now {
                break;
            }
            due.pop();
            let client = &mut clients[key];
            if client.state != ClientState::Up {
                continue;
            }
            client.seq += 1;
            payload[8..12].copy_from_slice(&(key as u32).to_le_bytes());
            payload[12..20].copy_from_slice(&client.seq.to_le_bytes());
            let id = TxId::of(&payload);
            pending.insert(id, at);
            report.submitted += 1;
            report.inflight_hwm = report.inflight_hwm.max(pending.len() as u64);
            frame.clear();
            encode_frame_into(&payload, &mut frame).expect("payload under frame limit");
            client.out.extend_from_slice(&frame);
            if client.flush(poller) {
                due.push(std::cmp::Reverse((at + exp_gap(&mut rng, per_client_rate), key)));
            } else {
                client.retire(poller);
                connected.fetch_sub(1, Ordering::Relaxed);
            }
        }

        // 3. Sleep until the next due submission (or a notify).
        if now >= deadline + LINGER_CAP {
            report.connected = connected.load(Ordering::Relaxed);
            return report;
        }
        let wait = match due.peek() {
            Some(&std::cmp::Reverse((at, _))) => at.saturating_duration_since(now).min(POLL),
            None => POLL,
        };
        if poller.wait(&mut events, Some(wait.max(Duration::from_millis(1)))).is_err() {
            report.connected = connected.load(Ordering::Relaxed);
            return report;
        }
        for ev in events.iter() {
            let client = &mut clients[ev.key];
            client.armed = Some((false, false));
            if client.state == ClientState::Up {
                if ev.writable && !client.flush(poller) {
                    client.retire(poller);
                    connected.fetch_sub(1, Ordering::Relaxed);
                }
            } else if client.state != ClientState::Dead {
                client.advance_handshake(poller);
            }
        }
    }
}

/// Child-process entry: if `TETRABFT_LOAD_CHILD` is set, run a fleet
/// bridged over stdio and exit; otherwise return immediately.
///
/// Call this first thing in a bench or test `main` that uses
/// [`spawn_remote`](crate::spawn_remote): the parent re-executes its own
/// binary with the variable set, giving the 10k-socket fleet a file
/// descriptor table of its own.
///
/// Control protocol (parent → child stdin): one [`FleetSpec::to_line`]
/// line, then a `GO` line, then raw 8-byte little-endian finalized
/// [`TxId`]s until EOF. Child stdout: `READY <connected>` once dialing
/// settles, then after EOF a `STATS` line, a `SAMPLES <count>` line,
/// and `count` little-endian `u32` microsecond samples.
pub fn maybe_run_child() {
    if std::env::var_os("TETRABFT_LOAD_CHILD").is_none() {
        return;
    }
    let code = match run_child() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("load child failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn run_child() -> io::Result<()> {
    let stdin = io::stdin();
    let mut input = stdin.lock();
    let mut line = String::new();
    input.read_line(&mut line)?;
    let spec = FleetSpec::from_line(line.trim())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad fleet spec"))?;

    let (link, handle) = spawn_fleet(spec)?;
    {
        let mut out = io::stdout().lock();
        writeln!(out, "READY {}", link.connected_now())?;
        out.flush()?;
    }

    line.clear();
    input.read_line(&mut line)?;
    if line.trim() != "GO" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected GO"));
    }
    link.send(FleetMsg::Go);
    let mut word = [0u8; 8];
    loop {
        match input.read_exact(&mut word) {
            Ok(()) => link.send(FleetMsg::Finalized(TxId(u64::from_le_bytes(word)))),
            Err(ref e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
    }
    drop(link); // close the channel: the fleet wraps up
    let report = handle.join().map_err(|_| io::Error::other("fleet thread panicked"))?;

    let mut out = io::BufWriter::new(io::stdout().lock());
    writeln!(
        out,
        "STATS connected={} submitted={} confirmed={} inflight_hwm={}",
        report.connected, report.submitted, report.confirmed, report.inflight_hwm
    )?;
    writeln!(out, "SAMPLES {}", report.samples_us.len())?;
    for s in &report.samples_us {
        out.write_all(&s.to_le_bytes())?;
    }
    out.flush()
}
