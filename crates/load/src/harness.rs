//! The measurement harness: spawns a sharded serving cluster, points a
//! client fleet at it, bridges finalizations back to the fleet, and
//! assembles one [`LoadReport`] per load point.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tetrabft::Params;
use tetrabft_multishot::{MultiShotNode, TxId};
use tetrabft_net::ClusterBuilder;
use tetrabft_types::Config;

use crate::fleet::{spawn_fleet, FleetLink, FleetMsg, FleetReport, FleetSpec};
use crate::remote::RemoteFleet;
use crate::report::{assemble, LoadReport};

/// How long a drainer blocks per poll of its shard's output channel.
const DRAIN_TICK: Duration = Duration::from_millis(50);

/// After the submit window, how long the harness keeps forwarding late
/// finalizations before closing the fleet down.
const GRACE: Duration = Duration::from_secs(5);

/// The window counts as drained once no transaction has finalized for
/// this long past the deadline.
const QUIET: Duration = Duration::from_millis(750);

/// Sample spacing for the pre-GO health barrier: every shard must
/// finalize at least one new slot inside one tick to count as live.
const HEALTH_TICK: Duration = Duration::from_millis(100);

/// Give up waiting for chain health after this long and start the
/// window anyway (best effort; the report will show the damage).
const HEALTH_CAP: Duration = Duration::from_secs(30);

/// One load point's worth of configuration.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Independent consensus shards (one TCP cluster each).
    pub shards: usize,
    /// Replicas per shard.
    pub nodes_per_shard: usize,
    /// Concurrent client connections across the whole fleet.
    pub clients: usize,
    /// Aggregate offered load, tx/s across all clients.
    pub rate_tps: u64,
    /// Submit window length.
    pub duration: Duration,
    /// Transaction payload size in bytes.
    pub payload_bytes: usize,
    /// Consensus `δ` (ms) for the nodes' view timeouts.
    pub delta_ms: u64,
    /// Seed for the fleet's arrival process.
    pub seed: u64,
    /// Run the fleet in a re-executed child process (required for
    /// 10k-scale fleets: the sockets need their own fd table).
    pub remote_fleet: bool,
}

impl LoadOptions {
    /// A small single-shard configuration; override fields as needed.
    #[must_use]
    pub fn new(clients: usize, rate_tps: u64, duration: Duration) -> LoadOptions {
        LoadOptions {
            shards: 1,
            nodes_per_shard: 4,
            clients,
            rate_tps,
            duration,
            payload_bytes: 64,
            // Loopback: a small Δ keeps the 9Δ view timeout — the price
            // of a stall under CPU contention — well under a window.
            delta_ms: 100,
            seed: 7,
            remote_fleet: false,
        }
    }
}

/// In-process or child-process fleet, same driving surface.
enum Driver {
    Local { link: FleetLink, handle: std::thread::JoinHandle<FleetReport> },
    Remote(RemoteFleet),
}

impl Driver {
    fn ready(&mut self) -> io::Result<u64> {
        match self {
            Driver::Local { link, .. } => Ok(link.connected_now()),
            Driver::Remote(fleet) => fleet.wait_ready(),
        }
    }

    fn go(&mut self) -> io::Result<()> {
        match self {
            Driver::Local { link, .. } => {
                link.send(FleetMsg::Go);
                Ok(())
            }
            Driver::Remote(fleet) => fleet.go(),
        }
    }

    fn finalized(&mut self, id: TxId) -> io::Result<()> {
        match self {
            Driver::Local { link, .. } => {
                link.send(FleetMsg::Finalized(id));
                Ok(())
            }
            Driver::Remote(fleet) => fleet.finalized(id),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Driver::Local { .. } => Ok(()),
            Driver::Remote(fleet) => fleet.flush(),
        }
    }

    fn finish(self) -> io::Result<FleetReport> {
        match self {
            Driver::Local { link, handle } => {
                drop(link);
                handle.join().map_err(|_| io::Error::other("fleet thread panicked"))
            }
            Driver::Remote(fleet) => fleet.finish(),
        }
    }
}

/// Runs one load point end to end and reports it.
///
/// Spawns `shards` independent serving TCP clusters, dials
/// `opts.clients` open-loop clients at them (round-robin over every
/// node), offers `opts.rate_tps` aggregate for `opts.duration`, and
/// matches finalized [`TxId`]s back to submissions for commit-latency
/// percentiles.
///
/// # Errors
///
/// Fails if the clusters or the fleet cannot be spawned, or the fleet
/// control pipe breaks mid-run.
pub fn run_load(opts: &LoadOptions) -> io::Result<LoadReport> {
    let cfg = Config::new(opts.nodes_per_shard)
        .map_err(|e| io::Error::other(format!("bad shard size: {e}")))?;
    let params = Params::new(opts.delta_ms)
        .with_mempool_capacity(1 << 17)
        .with_max_block_txs(4096)
        .with_max_tx_bytes(opts.payload_bytes.max(64))
        // Idle chains free-run empty blocks at CPU speed — across
        // `shards × nodes` engines that is enough to starve each other
        // (and the fleet) into view timeouts on a small box. Pacing
        // empty proposals a few ms apart keeps the idle burn negligible
        // at the cost of that pause on the first tx after a lull.
        .with_idle_pacing(5);

    let mut clusters = Vec::with_capacity(opts.shards);
    let mut addrs = Vec::new();
    for _ in 0..opts.shards {
        let ((cluster, _handles), _control) = ClusterBuilder::new(opts.nodes_per_shard)
            .spawn_serving(|id| MultiShotNode::new(cfg, params, id))
            .map_err(|e| io::Error::other(format!("shard spawn failed: {e}")))?;
        addrs.extend(cluster.topology().addrs().iter().copied());
        clusters.push(cluster);
    }

    // One drainer thread per shard, started *before* the fleet dials:
    // the chains free-run from the moment they spawn (empty blocks at
    // full tilt), and an undrained output channel grows by tens of
    // thousands of finalizations per second — a drainer that starts
    // after the dial phase never catches back up to real time, and the
    // submitted transactions' finalizations rot at the tail of the
    // queue. Each drainer dedups the n per-node copies of a slot down
    // to one (nodes emit slots in strictly increasing order, so a
    // high-watermark forwards every slot exactly once, at its earliest
    // appearance), tallies the submit window's blocks/txs, and forwards
    // only non-empty blocks to the matching loop below.
    let stop = Arc::new(AtomicBool::new(false));
    let counting = Arc::new(AtomicBool::new(false));
    let tallies: Arc<Vec<(AtomicU64, AtomicU64)>> =
        Arc::new((0..opts.shards).map(|_| (AtomicU64::new(0), AtomicU64::new(0))).collect());
    let watermarks: Arc<Vec<AtomicU64>> =
        Arc::new((0..opts.shards).map(|_| AtomicU64::new(0)).collect());
    let (fin_tx, fin_rx) = mpsc::channel::<(usize, Vec<u64>)>();
    let drainers: Vec<_> = clusters
        .into_iter()
        .enumerate()
        .map(|(shard, mut cluster)| {
            let fin_tx = fin_tx.clone();
            let stop = Arc::clone(&stop);
            let counting = Arc::clone(&counting);
            let tallies = Arc::clone(&tallies);
            let watermarks = Arc::clone(&watermarks);
            std::thread::spawn(move || {
                let mut watermark = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Some((_, fin)) = cluster.next_output_timeout(DRAIN_TICK) {
                        if fin.slot.0 > watermark {
                            watermark = fin.slot.0;
                            watermarks[shard].store(watermark, Ordering::Relaxed);
                            if counting.load(Ordering::Relaxed) {
                                let (blocks, txs) = &tallies[shard];
                                blocks.fetch_add(1, Ordering::Relaxed);
                                txs.fetch_add(fin.block.txs.len() as u64, Ordering::Relaxed);
                            }
                            if !fin.block.txs.is_empty() {
                                let ids = fin.block.txs.iter().map(|tx| TxId::of(tx).0).collect();
                                if fin_tx.send((shard, ids)).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                }
            })
        })
        .collect();
    drop(fin_tx);

    let spec = FleetSpec {
        addrs,
        clients: opts.clients,
        rate_tps: opts.rate_tps,
        duration: opts.duration,
        payload_bytes: opts.payload_bytes,
        seed: opts.seed,
    };
    let mut driver = if opts.remote_fleet {
        Driver::Remote(RemoteFleet::spawn(&spec)?)
    } else {
        let (link, handle) = spawn_fleet(spec)?;
        Driver::Local { link, handle }
    };

    // The ready count is the dial-time census; the report's `connected`
    // is the (possibly lower) count *sustained* to the end of the run.
    driver.ready()?;

    // Pre-GO health barrier. The dial ramp above is the most contended
    // stretch of the whole run — hundreds of simultaneous connects
    // racing the free-running chains for CPU — and can push a shard
    // into a view change whose 9Δ timeout outlives the submit window.
    // Hold GO until every shard finalized a fresh slot within one tick,
    // i.e. every chain is live again and every drainer is at real time.
    let barrier_cap = Instant::now() + HEALTH_CAP;
    loop {
        let before: Vec<u64> = watermarks.iter().map(|w| w.load(Ordering::Relaxed)).collect();
        std::thread::sleep(HEALTH_TICK);
        let live = watermarks.iter().zip(&before).all(|(w, b)| w.load(Ordering::Relaxed) > *b);
        if live || Instant::now() >= barrier_cap {
            break;
        }
    }

    counting.store(true, Ordering::Relaxed);
    driver.go()?;
    let started = Instant::now();
    let deadline = started + opts.duration;

    let mut last_tx_seen = started;
    loop {
        let now = Instant::now();
        if now >= deadline + GRACE {
            break;
        }
        if now >= deadline && now.duration_since(last_tx_seen) >= QUIET {
            break;
        }
        match fin_rx.recv_timeout(DRAIN_TICK) {
            Ok((_, ids)) => {
                last_tx_seen = Instant::now();
                for id in ids {
                    driver.finalized(TxId(id))?;
                }
                driver.flush()?;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    counting.store(false, Ordering::Relaxed);

    let fleet_report = driver.finish()?;
    stop.store(true, Ordering::Relaxed);
    for drainer in drainers {
        let _ = drainer.join();
    }

    let shard_blocks: Vec<u64> =
        tallies.iter().map(|(blocks, _)| blocks.load(Ordering::Relaxed)).collect();
    let shard_txs: Vec<u64> = tallies.iter().map(|(_, txs)| txs.load(Ordering::Relaxed)).collect();

    Ok(assemble(opts.rate_tps, opts.duration, &fleet_report, &shard_txs, &shard_blocks))
}

/// Runs [`run_load`] once per offered rate, reusing `base` for
/// everything else — the saturation sweep.
///
/// # Errors
///
/// As [`run_load`].
pub fn sweep(base: &LoadOptions, rates: &[u64]) -> io::Result<Vec<LoadReport>> {
    rates.iter().map(|&rate_tps| run_load(&LoadOptions { rate_tps, ..base.clone() })).collect()
}
