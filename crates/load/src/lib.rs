//! Open-loop load generation and saturation measurement for TetraBFT
//! clusters.
//!
//! The paper's claim is latency-*optimal* commit (5δ); this crate prices
//! that latency **under load**. A fleet of up to tens of thousands of
//! TCP clients (one reactor thread over the `polling` shim, not one
//! thread per socket) submits transactions open-loop — Poisson
//! arrivals at a target aggregate rate, timestamped when *due* rather
//! than when the socket drains, so saturation shows up as latency, not
//! as silently reduced offered load. The harness runs the sharded
//! serving cluster in-process, matches finalized [`TxId`]s back to
//! submissions, and reports p50/p99/p999 commit latency, achieved vs
//! offered throughput, and per-shard utilization, swept across rates to
//! locate the saturation knee.
//!
//! Fleets at the 10k-client scale run in a re-executed child process
//! ([`RemoteFleet`], [`maybe_run_child`]) so their sockets get a file
//! descriptor table of their own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tetrabft_multishot::TxId;
pub use tetrabft_net::CLIENT_HELLO_ID;

mod fleet;
mod harness;
mod remote;
mod report;

pub use fleet::{maybe_run_child, spawn_fleet, FleetLink, FleetMsg, FleetReport, FleetSpec};
pub use harness::{run_load, sweep, LoadOptions};
pub use remote::RemoteFleet;
pub use report::{knee_index, percentile_us, print_matrix, LoadReport, ShardUtil};
