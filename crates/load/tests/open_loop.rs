//! End-to-end exercise of the open-loop harness at a deliberately tiny
//! scale: a real serving TCP cluster, a real client fleet over the
//! `polling` shim, real commit-latency samples.

use std::time::Duration;

use tetrabft_load::{knee_index, percentile_us, run_load, LoadOptions, LoadReport};

fn point(offered_tps: u64, achieved_tps: f64, inflight_hwm: u64) -> LoadReport {
    LoadReport {
        offered_tps,
        connected: 1,
        submitted: offered_tps,
        confirmed: offered_tps,
        achieved_tps,
        p50_us: 1,
        p99_us: 2,
        p999_us: 3,
        inflight_hwm,
        per_shard: Vec::new(),
    }
}

#[test]
fn knee_flags_throughput_and_backlog_saturation() {
    // Pure throughput shortfall.
    assert_eq!(knee_index(&[point(100, 99.0, 3), point(200, 150.0, 9)]), 1);
    // Grace-masked saturation: confirmed catches back up, but the
    // backlog high-water mark betrays the growing queue.
    assert_eq!(knee_index(&[point(100, 99.0, 3), point(200, 199.0, 600)]), 1);
    // A one-off stall's backlog (well under a second of offered load)
    // does not count as a knee.
    assert_eq!(knee_index(&[point(100, 99.0, 48), point(200, 199.0, 9)]), 2);
}

#[test]
fn percentiles_are_nearest_rank() {
    let samples: Vec<u32> = (1..=100).collect();
    assert_eq!(percentile_us(&samples, 50.0), 50);
    assert_eq!(percentile_us(&samples, 99.0), 99);
    assert_eq!(percentile_us(&samples, 99.9), 100);
    assert_eq!(percentile_us(&[], 50.0), 0);
    assert_eq!(percentile_us(&[42], 99.9), 42);
}

#[test]
fn small_open_loop_run_confirms_submissions() {
    let mut opts = LoadOptions::new(16, 120, Duration::from_secs(2));
    opts.delta_ms = 400;
    let report = run_load(&opts).expect("load point runs");

    assert_eq!(report.connected, 16, "every client handshakes");
    assert!(report.submitted > 0, "open loop submitted transactions");
    // The cluster is idle at 120 tx/s: essentially everything offered
    // inside the window must finalize (the tail that was still in
    // flight at the deadline is bounded by the grace drain).
    assert!(
        report.confirmed * 10 >= report.submitted * 9,
        "expected >=90% confirmed, got {}/{}",
        report.confirmed,
        report.submitted
    );
    assert!(report.p50_us > 0 && report.p50_us <= report.p99_us);
    assert_eq!(report.per_shard.len(), 1);
    assert_eq!(report.per_shard[0].txs, report.confirmed);

    // An unsaturated single point has its knee past the end.
    assert_eq!(knee_index(&[report]), 1);
}
