//! The engine loop shared by every runtime.
//!
//! Both the deterministic simulator (`tetrabft-sim`) and the TCP runtime
//! (`tetrabft-net`) used to hand-roll the same three pieces of machinery:
//! timer generations (a re-armed timer must orphan its queued firing),
//! [`Action`] dispatch, and the event mux that turns raw runtime events
//! into [`Node`] inputs. [`Engine`] owns all three once; runtimes shrink
//! to [`Transport`] implementations that only know how to move bytes,
//! schedule wakeups, and surface outputs.

use std::collections::HashMap;

use tetrabft_types::NodeId;

use crate::node::{Action, ActionBuf, Context, Dest, Input, Node, TimerId};
use crate::time::Time;

/// What an [`Engine`] asks its runtime to do.
///
/// A transport is intentionally dumber than a [`Node`] context: it never
/// sees cancellations (the engine absorbs them into generation bumps) and
/// every arming it sees already carries the generation that makes stale
/// firings detectable.
pub trait Transport<M, O> {
    /// Ship `msg` to `dest` (a peer or everyone, loopback included).
    fn send(&mut self, dest: Dest, msg: M);

    /// Schedule timer `id` to fire `after` ticks from now, tagged with
    /// `generation`. The runtime must echo the tag back through
    /// [`Engine::on_timer`]; it never interprets it.
    fn arm_timer(&mut self, id: TimerId, generation: u64, after: u64);

    /// Surface a protocol output to the application.
    fn deliver_output(&mut self, out: O);

    /// Called exactly once after every action of one engine input has been
    /// dispatched — or once per *batch* of inputs when the runtime steps
    /// through [`Engine::step_batch`] / the `*_buffered` entry points.
    /// Buffering transports hand their staged sends to the network here —
    /// one handoff per input (or batch) rather than one per message — so a
    /// broadcast plus its follow-ups leave as a single batch. The default
    /// is a no-op for transports that ship eagerly.
    fn flush(&mut self) {}
}

/// A multiplexed engine input: everything that can wake a node.
///
/// Runtimes funnel their raw event sources (sockets, wakeup heaps, client
/// queues, a virtual-time event queue) into this one enum and hand it to
/// [`Engine::on_event`]; the engine routes each case, so no runtime
/// re-implements the mux.
#[derive(Debug)]
pub enum EngineEvent<M, R = std::convert::Infallible> {
    /// The node boots (exactly once).
    Start,
    /// A peer message arrived over the transport.
    Deliver {
        /// Authenticated sender.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A scheduled timer came due; `generation` is the tag the engine
    /// attached when arming. Stale generations are dropped here.
    Timer {
        /// Which timer.
        id: TimerId,
        /// Arming tag; only the newest arming per id is live.
        generation: u64,
    },
    /// A client submitted a request (e.g. a transaction for the mempool).
    Submit(R),
}

/// A node that accepts client-submitted requests through the engine's
/// input mux — the third input class next to deliveries and timers.
///
/// Admission is synchronous and may be refused (backpressure): a bounded
/// mempool returns its typed rejection here rather than growing without
/// bound.
pub trait Submitter: Node {
    /// What clients submit.
    type Request;
    /// Why a submission may be refused.
    type SubmitError;

    /// Accepts or rejects one client request.
    fn accept(&mut self, req: Self::Request) -> Result<(), Self::SubmitError>;
}

/// A request clients can ship over a byte-framed transport: the decode
/// half of the submit path, for runtimes where submissions arrive as
/// length-prefixed frames on a socket rather than through an in-process
/// handle.
///
/// The encode half is the client's business (for opaque-payload requests
/// the frame payload *is* the request); a runtime serving framed clients
/// requires `Submitter::Request: FrameRequest` to turn each frame back
/// into a typed request at the door.
pub trait FrameRequest: Sized {
    /// Decodes one request from a client frame's payload; `None` drops
    /// the frame (malformed client traffic is ignored, like malformed
    /// peer traffic).
    fn from_frame(bytes: &[u8]) -> Option<Self>;
}

/// The protocol-driving loop around one [`Node`].
///
/// The engine owns the node, its timer-generation table, and the
/// translation of node [`Action`]s into [`Transport`] calls. A runtime
/// feeds it events ([`Engine::start`], [`Engine::on_deliver`],
/// [`Engine::on_timer`], [`Engine::submit`] — or the combined
/// [`Engine::on_event`] mux) together with the current time and a
/// transport to act through.
///
/// # Timer generations
///
/// `SetTimer` tags the arming with a generation drawn from one counter
/// that is global across all timer ids and never reused; a firing whose
/// generation is not the id's current one is ignored, which implements
/// both replace and cancel without the runtime ever deleting queued
/// events. Because generations are globally unique, entries for fired and
/// cancelled timers can be dropped immediately — an orphaned queued
/// firing can never collide with a later arming — so the table holds only
/// the currently-armed timers (O(armed), not O(ids ever used); protocols
/// that key timers by an unbounded sequence number, like multi-shot's
/// per-slot view timers, would otherwise leak an entry per key).
///
/// # Examples
///
/// ```
/// use tetrabft_engine::{Context, Dest, Engine, Input, Node, Time, Transport, WireSize};
/// use tetrabft_types::NodeId;
///
/// #[derive(Clone)]
/// struct Ping;
/// impl WireSize for Ping {
///     fn wire_size(&self) -> usize { 1 }
/// }
/// struct Hello;
/// impl Node for Hello {
///     type Msg = Ping;
///     type Output = &'static str;
///     fn handle(&mut self, input: Input<Ping>, ctx: &mut Context<'_, Ping, &'static str>) {
///         if matches!(input, Input::Start) {
///             ctx.broadcast(Ping);
///             ctx.output("booted");
///         }
///     }
/// }
///
/// #[derive(Default)]
/// struct Recorder { sends: usize, outputs: Vec<&'static str> }
/// impl Transport<Ping, &'static str> for Recorder {
///     fn send(&mut self, _dest: Dest, _msg: Ping) { self.sends += 1 }
///     fn arm_timer(&mut self, _id: tetrabft_engine::TimerId, _generation: u64, _after: u64) {}
///     fn deliver_output(&mut self, out: &'static str) { self.outputs.push(out) }
/// }
///
/// let mut engine = Engine::new(Hello, NodeId(0), 4);
/// let mut transport = Recorder::default();
/// engine.start(Time(0), &mut transport);
/// assert_eq!(transport.sends, 1);
/// assert_eq!(transport.outputs, vec!["booted"]);
/// ```
#[derive(Debug)]
pub struct Engine<N> {
    node: N,
    me: NodeId,
    n: usize,
    /// Live generation per *armed* timer; fired/cancelled entries are
    /// removed (safe because generations are never reused across ids).
    generations: HashMap<TimerId, u64>,
    next_generation: u64,
}

impl<N: Node> Engine<N> {
    /// Wraps `node` (node `me` of `n`) in an engine with no armed timers.
    pub fn new(node: N, me: NodeId, n: usize) -> Self {
        Engine { node, me, n, generations: HashMap::new(), next_generation: 0 }
    }

    /// Number of currently armed timers (the size of the generation
    /// table — bounded by the protocol's live timers, not its history).
    pub fn armed_timers(&self) -> usize {
        self.generations.len()
    }

    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the system.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The wrapped node.
    #[inline]
    pub fn node(&self) -> &N {
        &self.node
    }

    /// Mutable access to the wrapped node (test inspection, submissions
    /// outside the mux).
    #[inline]
    pub fn node_mut(&mut self) -> &mut N {
        &mut self.node
    }

    /// Unwraps the engine, returning the node.
    pub fn into_node(self) -> N {
        self.node
    }

    /// Boots the node (deliver exactly once, before any other event).
    pub fn start<T: Transport<N::Msg, N::Output>>(&mut self, now: Time, transport: &mut T) {
        self.dispatch(Input::Start, now, transport);
    }

    /// Feeds one peer message to the node.
    pub fn on_deliver<T: Transport<N::Msg, N::Output>>(
        &mut self,
        from: NodeId,
        msg: N::Msg,
        now: Time,
        transport: &mut T,
    ) {
        self.dispatch(Input::Deliver { from, msg }, now, transport);
    }

    /// Feeds one timer firing to the node, unless its generation is stale
    /// (the timer was replaced or cancelled after this firing was queued).
    /// Returns whether the node ran.
    pub fn on_timer<T: Transport<N::Msg, N::Output>>(
        &mut self,
        id: TimerId,
        generation: u64,
        now: Time,
        transport: &mut T,
    ) -> bool {
        if !self.consume_timer(id, generation) {
            return false;
        }
        self.dispatch(Input::Timer { id }, now, transport);
        true
    }

    /// Batched variant of [`Engine::on_deliver`]: runs the node but defers
    /// the persist/flush seal to [`Engine::finish_batch`]. Callers that
    /// drain several queued inputs in one go pay one storage sync and one
    /// network handoff per *batch* instead of per input.
    ///
    /// Every sequence of `*_buffered` calls **must** be closed with
    /// [`Engine::finish_batch`] before the runtime goes back to waiting —
    /// otherwise staged sends sit unflushed and durable votes unpersisted.
    pub fn on_deliver_buffered<T: Transport<N::Msg, N::Output>>(
        &mut self,
        from: NodeId,
        msg: N::Msg,
        now: Time,
        transport: &mut T,
    ) {
        self.dispatch_buffered(Input::Deliver { from, msg }, now, transport);
    }

    /// Batched variant of [`Engine::on_timer`]: same staleness filtering,
    /// but the persist/flush seal is deferred to [`Engine::finish_batch`].
    /// Returns whether the node ran.
    pub fn on_timer_buffered<T: Transport<N::Msg, N::Output>>(
        &mut self,
        id: TimerId,
        generation: u64,
        now: Time,
        transport: &mut T,
    ) -> bool {
        if !self.consume_timer(id, generation) {
            return false;
        }
        self.dispatch_buffered(Input::Timer { id }, now, transport);
        true
    }

    /// Seals a batch of `*_buffered` dispatches: persists the node once,
    /// then flushes the transport once. The write-ahead ordering holds for
    /// the whole batch — everything the batch's inputs changed is durable
    /// before any message they produced leaves the process.
    pub fn finish_batch<T: Transport<N::Msg, N::Output>>(&mut self, transport: &mut T) {
        self.node.persist();
        transport.flush();
    }

    /// `true` iff `generation` is the live arming of `id`; consumes the
    /// arming (the handler may re-arm with a fresh, never-reused
    /// generation, so removal cannot resurrect any queued firing).
    fn consume_timer(&mut self, id: TimerId, generation: u64) -> bool {
        if self.generations.get(&id) != Some(&generation) {
            return false;
        }
        self.generations.remove(&id);
        true
    }

    fn dispatch<T: Transport<N::Msg, N::Output>>(
        &mut self,
        input: Input<N::Msg>,
        now: Time,
        transport: &mut T,
    ) {
        self.dispatch_buffered(input, now, transport);
        self.finish_batch(transport);
    }

    /// Runs the node on one input and interprets its actions, without the
    /// trailing persist/flush seal (a batch seals once, at the end).
    fn dispatch_buffered<T: Transport<N::Msg, N::Output>>(
        &mut self,
        input: Input<N::Msg>,
        now: Time,
        transport: &mut T,
    ) {
        // The buffer lives on the stack: a good-case step emits well under
        // its inline capacity, so dispatch itself performs no allocation.
        let mut actions: ActionBuf<N::Msg, N::Output> = ActionBuf::new();
        {
            let mut ctx = Context::buffered(self.me, self.n, now, &mut actions);
            self.node.handle(input, &mut ctx);
        }
        for action in actions {
            match action {
                Action::Send { dest, msg } => transport.send(dest, msg),
                Action::SetTimer { id, after } => {
                    self.next_generation += 1;
                    let generation = self.next_generation;
                    self.generations.insert(id, generation);
                    transport.arm_timer(id, generation, after);
                }
                Action::CancelTimer { id } => {
                    // Dropping the entry orphans any queued firing: its
                    // generation can never match a future arming's.
                    self.generations.remove(&id);
                }
                Action::Output(out) => transport.deliver_output(out),
            }
        }
    }
}

impl<N: Submitter> Engine<N> {
    /// Admits one client request into the node (mempool admission); the
    /// typed error is the backpressure signal.
    pub fn submit(&mut self, req: N::Request) -> Result<(), N::SubmitError> {
        self.node.accept(req)
    }

    /// The full input mux: routes a runtime event to the node. Returns
    /// whether the node ran (`false` for stale timers and refused
    /// submissions).
    pub fn on_event<T: Transport<N::Msg, N::Output>>(
        &mut self,
        event: EngineEvent<N::Msg, N::Request>,
        now: Time,
        transport: &mut T,
    ) -> bool {
        match event {
            EngineEvent::Start => {
                self.start(now, transport);
                true
            }
            EngineEvent::Deliver { from, msg } => {
                self.on_deliver(from, msg, now, transport);
                true
            }
            EngineEvent::Timer { id, generation } => self.on_timer(id, generation, now, transport),
            EngineEvent::Submit(req) => self.submit(req).is_ok(),
        }
    }

    /// Drains a whole batch of runtime events through the node with **one**
    /// persist/flush seal at the end, instead of one per event.
    ///
    /// This is the hot-path entry point for runtimes that pull events off a
    /// queue or channel: dispatch overhead (storage sync, staged-send
    /// handoff, lock round-trips in the caller) is amortized over the
    /// batch. Semantics are otherwise identical to feeding each event
    /// through [`Engine::on_event`] — same ordering, same staleness
    /// filtering, same backpressure for submissions — and the write-ahead
    /// guarantee still holds batch-wide: the single persist covers every
    /// input before the single flush releases any of their messages.
    ///
    /// Returns how many events ran the node (stale timer firings and
    /// refused submissions do not). The seal runs only if at least one
    /// event dispatched, so an all-stale batch is free.
    pub fn step_batch<T, I>(&mut self, events: I, now: Time, transport: &mut T) -> usize
    where
        T: Transport<N::Msg, N::Output>,
        I: IntoIterator<Item = EngineEvent<N::Msg, N::Request>>,
    {
        let mut ran = 0;
        let mut dispatched = false;
        for event in events {
            match event {
                EngineEvent::Start => {
                    self.dispatch_buffered(Input::Start, now, transport);
                    dispatched = true;
                    ran += 1;
                }
                EngineEvent::Deliver { from, msg } => {
                    self.dispatch_buffered(Input::Deliver { from, msg }, now, transport);
                    dispatched = true;
                    ran += 1;
                }
                EngineEvent::Timer { id, generation } => {
                    if self.consume_timer(id, generation) {
                        self.dispatch_buffered(Input::Timer { id }, now, transport);
                        dispatched = true;
                        ran += 1;
                    }
                }
                // Admission never dispatches the node, so it does not by
                // itself force a seal.
                EngineEvent::Submit(req) => ran += usize::from(self.submit(req).is_ok()),
            }
        }
        if dispatched {
            self.finish_batch(transport);
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::WireSize;

    #[derive(Clone, Debug, PartialEq)]
    struct Msg(u64);
    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// A node that re-arms timer 1 on start and echoes timer firings.
    struct TimerNode;
    impl Node for TimerNode {
        type Msg = Msg;
        type Output = u64;
        fn handle(&mut self, input: Input<Msg>, ctx: &mut Context<'_, Msg, u64>) {
            match input {
                Input::Start => {
                    ctx.set_timer(TimerId(1), 10);
                    ctx.set_timer(TimerId(1), 3); // replaces the first arming
                    ctx.set_timer(TimerId(2), 5);
                    ctx.cancel_timer(TimerId(2));
                }
                Input::Timer { id } => ctx.output(id.0),
                Input::Deliver { msg, .. } => ctx.output(msg.0),
            }
        }
    }

    #[derive(Default)]
    struct Recorder {
        sends: Vec<(Dest, Msg)>,
        armed: Vec<(TimerId, u64, u64)>,
        outputs: Vec<u64>,
        flushes: usize,
    }
    impl Transport<Msg, u64> for Recorder {
        fn send(&mut self, dest: Dest, msg: Msg) {
            self.sends.push((dest, msg));
        }
        fn arm_timer(&mut self, id: TimerId, generation: u64, after: u64) {
            self.armed.push((id, generation, after));
        }
        fn deliver_output(&mut self, out: u64) {
            self.outputs.push(out);
        }
        fn flush(&mut self) {
            self.flushes += 1;
        }
    }

    #[test]
    fn replaced_and_cancelled_timers_are_generation_filtered() {
        let mut engine = Engine::new(TimerNode, NodeId(0), 1);
        let mut t = Recorder::default();
        engine.start(Time(0), &mut t);
        // Generations come from one global never-reused counter: timer 1
        // armed twice (gen 1, then replaced by gen 2), timer 2 once
        // (gen 3, then cancelled — its entry is dropped, not bumped).
        assert_eq!(t.armed, vec![(TimerId(1), 1, 10), (TimerId(1), 2, 3), (TimerId(2), 3, 5)]);
        // The replaced arming is stale; the replacement fires.
        assert!(!engine.on_timer(TimerId(1), 1, Time(10), &mut t));
        assert!(engine.on_timer(TimerId(1), 2, Time(3), &mut t));
        // The cancelled timer's queued firing is stale too.
        assert!(!engine.on_timer(TimerId(2), 3, Time(5), &mut t));
        assert_eq!(t.outputs, vec![1]);
        // A consumed firing cannot replay.
        assert!(!engine.on_timer(TimerId(1), 2, Time(3), &mut t));
    }

    #[test]
    fn generation_table_stays_bounded_by_armed_timers() {
        // A protocol keying timers by an unbounded sequence number (one
        // fresh id per "slot", fired or cancelled soon after) must not
        // leak a table entry per id — the production-longevity regression.
        struct Churn;
        impl Node for Churn {
            type Msg = Msg;
            type Output = u64;
            fn handle(&mut self, input: Input<Msg>, ctx: &mut Context<'_, Msg, u64>) {
                if let Input::Deliver { msg, .. } = input {
                    ctx.set_timer(TimerId(msg.0), 1); // arm slot timer
                    if msg.0 >= 2 {
                        ctx.cancel_timer(TimerId(msg.0 - 2)); // retire an old one
                    }
                }
            }
        }
        let mut engine = Engine::new(Churn, NodeId(0), 1);
        let mut t = Recorder::default();
        for k in 0..10_000 {
            engine.on_deliver(NodeId(0), Msg(k), Time(k), &mut t);
        }
        assert!(engine.armed_timers() <= 2, "got {}", engine.armed_timers());
        // And firing the survivors empties the table entirely.
        for (id, generation, _) in t.armed.clone().iter().rev().take(2) {
            engine.on_timer(*id, *generation, Time(10_000), &mut t);
        }
        assert_eq!(engine.armed_timers(), 0);
    }

    #[test]
    fn deliveries_reach_the_node_and_outputs_the_transport() {
        let mut engine = Engine::new(TimerNode, NodeId(0), 1);
        let mut t = Recorder::default();
        engine.on_deliver(NodeId(0), Msg(42), Time(1), &mut t);
        assert_eq!(t.outputs, vec![42]);
    }

    #[test]
    fn flush_runs_exactly_once_per_dispatched_input() {
        // Batching transports coalesce everything one input produced into a
        // single network handoff; the engine guarantees the once-per-input
        // cadence (stale timer firings never reach dispatch, so no flush).
        let mut engine = Engine::new(TimerNode, NodeId(0), 1);
        let mut t = Recorder::default();
        engine.start(Time(0), &mut t);
        engine.on_deliver(NodeId(0), Msg(1), Time(1), &mut t);
        assert_eq!(t.flushes, 2);
        assert!(!engine.on_timer(TimerId(1), 1, Time(10), &mut t), "stale");
        assert_eq!(t.flushes, 2, "a filtered firing dispatches nothing");
        assert!(engine.on_timer(TimerId(1), 2, Time(10), &mut t));
        assert_eq!(t.flushes, 3);
    }

    /// A submitter whose pool holds one request.
    struct OneSlot {
        held: Option<u64>,
    }
    impl Node for OneSlot {
        type Msg = Msg;
        type Output = u64;
        fn handle(&mut self, input: Input<Msg>, ctx: &mut Context<'_, Msg, u64>) {
            if matches!(input, Input::Start) {
                if let Some(v) = self.held.take() {
                    ctx.output(v);
                }
            }
        }
    }
    impl Submitter for OneSlot {
        type Request = u64;
        type SubmitError = &'static str;
        fn accept(&mut self, req: u64) -> Result<(), &'static str> {
            if self.held.is_some() {
                return Err("full");
            }
            self.held = Some(req);
            Ok(())
        }
    }

    #[test]
    fn buffered_dispatches_seal_once_per_batch() {
        let mut engine = Engine::new(TimerNode, NodeId(0), 1);
        let mut t = Recorder::default();
        engine.on_deliver_buffered(NodeId(0), Msg(1), Time(1), &mut t);
        engine.on_deliver_buffered(NodeId(0), Msg(2), Time(1), &mut t);
        engine.on_deliver_buffered(NodeId(0), Msg(3), Time(1), &mut t);
        assert_eq!(t.flushes, 0, "nothing seals until finish_batch");
        assert_eq!(t.outputs, vec![1, 2, 3], "actions still dispatch eagerly");
        engine.finish_batch(&mut t);
        assert_eq!(t.flushes, 1, "one flush covers the whole batch");
    }

    #[test]
    fn buffered_timer_filtering_matches_single_step() {
        let mut engine = Engine::new(TimerNode, NodeId(0), 1);
        let mut t = Recorder::default();
        engine.start(Time(0), &mut t);
        assert!(!engine.on_timer_buffered(TimerId(1), 1, Time(10), &mut t), "replaced arming");
        assert!(engine.on_timer_buffered(TimerId(1), 2, Time(3), &mut t));
        assert!(!engine.on_timer_buffered(TimerId(2), 3, Time(5), &mut t), "cancelled");
        engine.finish_batch(&mut t);
        assert_eq!(t.outputs, vec![1]);
        assert_eq!(t.flushes, 2, "start sealed itself; the batch sealed once");
    }

    #[test]
    fn step_batch_drains_events_with_one_seal() {
        let mut engine = Engine::new(OneSlot { held: None }, NodeId(0), 1);
        let mut t = Recorder::default();
        let ran = engine.step_batch(
            vec![
                EngineEvent::Submit(7),
                EngineEvent::Submit(8), // refused: pool is full
                EngineEvent::Start,
                EngineEvent::Deliver { from: NodeId(0), msg: Msg(5) },
                EngineEvent::Timer { id: TimerId(9), generation: 99 }, // stale
            ],
            Time(0),
            &mut t,
        );
        assert_eq!(ran, 3, "one admitted submit, start, one delivery");
        assert_eq!(t.outputs, vec![7], "the admitted request drained on start");
        assert_eq!(t.flushes, 1, "the whole batch sealed exactly once");
    }

    #[test]
    fn step_batch_of_stale_events_never_seals() {
        let mut engine = Engine::new(OneSlot { held: None }, NodeId(0), 1);
        let mut t = Recorder::default();
        let ran = engine.step_batch(
            vec![EngineEvent::Timer { id: TimerId(1), generation: 1 }],
            Time(0),
            &mut t,
        );
        assert_eq!(ran, 0);
        assert_eq!(t.flushes, 0, "no dispatch, no seal");
    }

    #[test]
    fn submit_mux_applies_backpressure() {
        let mut engine = Engine::new(OneSlot { held: None }, NodeId(0), 1);
        let mut t = Recorder::default();
        assert!(engine.on_event(EngineEvent::Submit(7), Time(0), &mut t));
        assert!(!engine.on_event(EngineEvent::Submit(8), Time(0), &mut t), "pool is full");
        assert_eq!(engine.submit(9), Err("full"));
        engine.on_event(EngineEvent::Start, Time(0), &mut t);
        assert_eq!(t.outputs, vec![7], "the admitted request drains on start");
    }
}
