//! The unified engine layer of the TetraBFT suite.
//!
//! Every runtime in the workspace drives the same deterministic, sans-I/O
//! [`Node`] state machines; this crate is the one place that knows *how*
//! to drive them. It owns:
//!
//! * the node abstraction itself — [`Node`], [`Input`], [`Action`],
//!   [`Context`], [`TimerId`], [`WireSize`], virtual [`Time`];
//! * the [`Engine`] loop — the input mux (deliver / timer / client-submit
//!   via [`Submitter`]), timer-generation bookkeeping, and the dispatch of
//!   node [`Action`]s into a runtime-provided [`Transport`].
//!
//! `tetrabft-sim` plugs a deterministic virtual-time transport underneath
//! (an event queue plus link policies), `tetrabft-net` a threaded TCP
//! transport (sockets, a wall-clock timer heap, client channels). Neither
//! re-implements dispatch or timer semantics, so a fix or feature here —
//! batching, backpressure, new input classes — lands in both at once.
//!
//! # Examples
//!
//! See [`Engine`] for driving a node by hand with a recording transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod node;
mod time;

pub use driver::{Engine, EngineEvent, FrameRequest, Submitter, Transport};
pub use node::{Action, ActionBuf, Context, Dest, Input, Node, TimerId, WireSize};
pub use time::{Time, NEVER};
