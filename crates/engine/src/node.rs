//! The protocol-facing state-machine interface (sans-I/O).

use tetrabft_types::{InlineVec, NodeId};

use crate::time::Time;

/// How many bytes a message occupies on the wire.
///
/// The simulator charges this size to the communication metrics; protocol
/// crates implement it by delegating to their codec's `wire_len`.
pub trait WireSize {
    /// Encoded size in bytes.
    fn wire_size(&self) -> usize;

    /// Coarse phase label for per-kind byte accounting ("proposal",
    /// "vote-1", "suggest", …). The simulator's metrics bucket traffic by
    /// this label; the default lumps everything together, which is fine
    /// for test doubles.
    fn wire_kind(&self) -> &'static str {
        "message"
    }

    /// The write-once register this message claims, if any — the hook the
    /// accountability audit hangs off. Protocol messages that commit their
    /// sender to one value per `(slot, view, phase)` register (proposals,
    /// votes) return `Some`; recovery traffic and test doubles return the
    /// default `None` and are never audited.
    fn audit_claim(&self) -> Option<tetrabft_types::AuditClaim> {
        None
    }
}

/// Identifier of a protocol timer, chosen by the protocol.
///
/// Setting a timer with an id that is already pending *replaces* it; firing
/// and cancellation are matched per id. The id space is the full `u64` so
/// protocols may key timers by unbounded sequence numbers (multi-shot keys
/// them by slot) without aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// Destination of a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Every node in the system, including the sender (loopback is
    /// delivered with zero delay and charged zero bytes).
    All,
    /// A single node.
    Node(NodeId),
}

/// An input event delivered to a [`Node`].
#[derive(Debug, Clone)]
pub enum Input<M> {
    /// The node boots; delivered exactly once at time zero.
    Start,
    /// A message arrived. `from` is trustworthy — this is precisely the
    /// authenticated-channels assumption of the paper.
    Deliver {
        /// The true sender of the message.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A previously set timer fired.
    Timer {
        /// Which timer.
        id: TimerId,
    },
}

/// A deterministic protocol state machine.
///
/// Implementations must be pure: all effects go through the [`Context`].
/// The same state machine is driven by the simulator, by the TCP runtime
/// in `tetrabft-net`, and by schedule exploration in tests — all through
/// the shared [`Engine`](crate::Engine) loop.
pub trait Node {
    /// Message type exchanged with peers.
    type Msg: WireSize + Clone;
    /// Protocol output (e.g. a decided value, a finalized block).
    type Output;

    /// Processes one input event, emitting effects into `ctx`.
    fn handle(&mut self, input: Input<Self::Msg>, ctx: &mut Context<'_, Self::Msg, Self::Output>);

    /// Flushes durable state to stable storage.
    ///
    /// The [`Engine`](crate::Engine) calls this exactly once per dispatched
    /// input — or, when the runtime steps through the batched entry points
    /// ([`Engine::step_batch`](crate::Engine::step_batch) and the
    /// `*_buffered` methods), exactly once per *batch* of inputs — after
    /// every action has been handed to the transport but *before*
    /// [`Transport::flush`](crate::Transport::flush). Either way a
    /// buffering transport (like the TCP runtime, which stages sends until
    /// flush) gives write-ahead semantics for free: votes hit disk before
    /// the messages that depend on them leave the process. In-memory nodes
    /// keep the default no-op.
    fn persist(&mut self) {}

    /// Monotone restart counter of this node's durable state, exchanged in
    /// transport handshakes so peers can detect a restart (and drop frames
    /// buffered for the previous incarnation). Nodes without durable state
    /// return 0: they cannot restart-with-state, so no peer ever needs to
    /// distinguish their incarnations.
    fn incarnation(&self) -> u64 {
        0
    }
}

impl<N: Node + ?Sized> Node for Box<N> {
    type Msg = N::Msg;
    type Output = N::Output;
    fn handle(&mut self, input: Input<Self::Msg>, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        (**self).handle(input, ctx)
    }
    fn persist(&mut self) {
        (**self).persist()
    }
    fn incarnation(&self) -> u64 {
        (**self).incarnation()
    }
}

/// An effect a node asked its environment to perform.
///
/// The [`Engine`](crate::Engine) interprets these against a
/// [`Transport`](crate::Transport); embedders that drive nodes by hand
/// (protocol wrappers like the repeated-single-shot baseline) obtain them
/// via [`Context::buffered`].
#[derive(Debug)]
pub enum Action<M, O> {
    /// Send `msg` to `dest`.
    Send {
        /// Destination (a node or everyone).
        dest: Dest,
        /// The message.
        msg: M,
    },
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Which timer.
        id: TimerId,
        /// Ticks from now.
        after: u64,
    },
    /// Cancel a pending timer.
    CancelTimer {
        /// Which timer.
        id: TimerId,
    },
    /// Emit a protocol output.
    Output(O),
}

/// The action buffer one [`Node::handle`] call writes into.
///
/// A good-case step emits at most a handful of effects (a broadcast, a
/// timer re-arm, maybe an output), so the buffer keeps 8 slots inline and
/// only touches the heap on bursts — the per-dispatch `Vec` allocation was
/// one of the hottest sites in the consensus pipeline.
pub type ActionBuf<M, O> = InlineVec<Action<M, O>, 8>;

/// Effect sink and environment view handed to [`Node::handle`].
pub struct Context<'a, M, O> {
    pub(crate) me: NodeId,
    pub(crate) n: usize,
    pub(crate) now: Time,
    pub(crate) effects: &'a mut ActionBuf<M, O>,
}

impl<'a, M, O> Context<'a, M, O> {
    /// Creates a context that records every effect into `buf`, for driving
    /// a [`Node`] outside an engine (protocol wrappers, tests).
    ///
    /// # Examples
    ///
    /// ```
    /// use tetrabft_engine::{ActionBuf, Context};
    /// use tetrabft_types::NodeId;
    ///
    /// let mut buf: ActionBuf<u8, ()> = ActionBuf::new();
    /// let mut ctx = Context::buffered(NodeId(0), 4, tetrabft_engine::Time(0), &mut buf);
    /// ctx.send(NodeId(1), 42u8);
    /// assert_eq!(buf.len(), 1);
    /// ```
    pub fn buffered(me: NodeId, n: usize, now: Time, buf: &'a mut ActionBuf<M, O>) -> Self {
        Context { me, n, now, effects: buf }
    }
}

impl<M, O> Context<'_, M, O> {
    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the system.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual (or wall-clock-derived) time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to a single node.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Action::Send { dest: Dest::Node(to), msg });
    }

    /// Broadcasts `msg` to every node, itself included.
    pub fn broadcast(&mut self, msg: M) {
        self.effects.push(Action::Send { dest: Dest::All, msg });
    }

    /// Arms (or re-arms) timer `id` to fire `after` ticks from now.
    pub fn set_timer(&mut self, id: TimerId, after: u64) {
        self.effects.push(Action::SetTimer { id, after });
    }

    /// Cancels timer `id` if pending.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Action::CancelTimer { id });
    }

    /// Emits a protocol output (decision, finalization, …).
    pub fn output(&mut self, out: O) {
        self.effects.push(Action::Output(out));
    }
}
