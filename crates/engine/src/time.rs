//! Virtual time.

use std::fmt;
use std::ops::Add;

/// A point in virtual time (ticks since simulation start).
///
/// Under the canonical unit-delay policy one tick equals one message delay,
/// which is the latency unit used throughout the paper. The TCP runtime in
/// `tetrabft-net` maps one tick to one millisecond of wall-clock time.
///
/// # Examples
///
/// ```
/// use tetrabft_engine::Time;
/// assert_eq!(Time(3) + 2, Time(5));
/// assert!(Time(1) < Time(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A sentinel far beyond any simulated horizon.
pub const NEVER: Time = Time(u64::MAX);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// Saturating difference `self − earlier`.
    #[inline]
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, ticks: u64) -> Time {
        Time(self.0.saturating_add(ticks))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Time::ZERO + 7, Time(7));
        assert_eq!(Time(9).since(Time(4)), 5);
        assert_eq!(Time(4).since(Time(9)), 0, "since saturates");
        assert_eq!(NEVER + 1, NEVER, "addition saturates at NEVER");
    }
}
