//! Kernel types shared by every crate in the TetraBFT reproduction.
//!
//! This crate has no protocol logic of its own; it defines the vocabulary the
//! protocol crates speak:
//!
//! * identifiers — [`NodeId`], [`View`], [`Slot`];
//! * the opaque consensus [`Value`];
//! * the system [`Config`] with the paper's quorum arithmetic
//!   (`n > 3f`, quorum = `n − f`, blocking set = `f + 1`);
//! * the constant-size persistent [`VoteBook`] of Section 3.1 (highest
//!   vote-1..4 plus the second-highest vote-1/vote-2 carrying a different
//!   value);
//! * the vote [`Phase`] newtype used throughout.
//!
//! # Examples
//!
//! ```
//! use tetrabft_types::{Config, NodeId, View};
//!
//! let cfg = Config::new(4).expect("4 nodes tolerate 1 fault");
//! assert_eq!(cfg.f(), 1);
//! assert_eq!(cfg.quorum(), 3);
//! assert_eq!(cfg.blocking(), 2);
//! assert_eq!(cfg.leader_of(View::ZERO), NodeId(0));
//! assert_eq!(cfg.leader_of(View(5)), NodeId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod evidence;
mod fsync;
mod ids;
mod inline_vec;
mod phase;
mod value;
mod votebook;

pub use config::{Config, ConfigError};
pub use evidence::{AuditClaim, Evidence};
pub use fsync::FsyncPolicy;
pub use ids::{NodeId, Slot, View};
pub use inline_vec::InlineVec;
pub use phase::Phase;
pub use value::Value;
pub use votebook::{VoteBook, VoteInfo};
