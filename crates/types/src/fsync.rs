//! Durability policy for the write-ahead store.

/// When the durable store forces written records to stable media.
///
/// The paper's storage claim is about *size* (six registers per live
/// slot); this knob governs *when* those bytes are `fsync`ed. All three
/// policies write every record to the OS immediately — they differ only
/// in how much of the tail a power loss may roll back (a plain process
/// crash loses nothing under any policy, because the bytes are already
/// in the kernel).
///
/// # Examples
///
/// ```
/// use tetrabft_types::FsyncPolicy;
/// assert!(FsyncPolicy::Always.sync_due(1));
/// assert!(!FsyncPolicy::Never.sync_due(1_000));
/// assert!(FsyncPolicy::Batch(8).sync_due(8));
/// assert!(!FsyncPolicy::Batch(8).sync_due(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: a power loss rolls back at most the
    /// torn tail of the final record.
    Always,
    /// `fsync` once every `n` records: bounded rollback window, a small
    /// fraction of `Always`'s latency cost.
    Batch(u32),
    /// Never `fsync` explicitly; durability rides on the OS page cache.
    /// Survives process crashes, not power loss.
    Never,
}

impl FsyncPolicy {
    /// `true` if a sync is due after `pending` unsynced records.
    #[inline]
    pub fn sync_due(self, pending: u32) -> bool {
        match self {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => pending >= n.max(1),
            FsyncPolicy::Never => false,
        }
    }
}

impl Default for FsyncPolicy {
    /// `Batch(32)`: bounded power-loss rollback without paying a sync on
    /// every vote.
    fn default() -> Self {
        FsyncPolicy::Batch(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_zero_behaves_like_always() {
        assert!(FsyncPolicy::Batch(0).sync_due(1));
        assert!(!FsyncPolicy::Batch(0).sync_due(0));
    }

    #[test]
    fn default_is_batched() {
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Batch(32));
    }
}
