//! Accountability: typed claims and equivocation evidence.
//!
//! TetraBFT's registers are write-once per `(view, phase)`: an honest node
//! proposes at most one value per view and casts at most one `vote-i` per
//! view. A message therefore *claims* a register slot, and two claims for
//! the same slot with different values are cryptographically-free proof of
//! misbehaviour (channels are authenticated, so the sender attribution is
//! trusted). [`AuditClaim`] is the slot a message claims; [`Evidence`] is a
//! pair of conflicting claims pinned to the node that made them — the
//! auditable record pod-style accountability calls for: not "violations: 1"
//! but "node 3 voted both v and v′ in view 7".

use std::fmt;

use crate::{NodeId, Phase, Slot, Value, View};

/// The write-once register a message claims, extracted by
/// `WireSize::audit_claim`.
///
/// Two claims from the same sender for the same `(slot, view, phase)` with
/// different values constitute [`Evidence`] of equivocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AuditClaim {
    /// Chain slot the claim is scoped to; `None` for single-shot consensus.
    pub slot: Option<Slot>,
    /// View the register belongs to.
    pub view: View,
    /// Vote phase, or `None` for a leader proposal.
    pub phase: Option<Phase>,
    /// The value claimed (for chain messages, the block hash as a value).
    pub value: Value,
}

/// An auditable equivocation record: `node` claimed both `first` and
/// `second` for the same write-once register.
///
/// # Examples
///
/// ```
/// use tetrabft_types::{Evidence, NodeId, Phase, Value, View};
///
/// let ev = Evidence {
///     node: NodeId(3),
///     slot: None,
///     view: View(7),
///     phase: Some(Phase::VOTE1),
///     first: Value::from_u64(1),
///     second: Value::from_u64(2),
/// };
/// assert_eq!(
///     ev.to_string(),
///     "node 3 voted both val:0000000000000001 and val:0000000000000002 in view 7 (vote-1)"
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Evidence {
    /// The misbehaving node.
    pub node: NodeId,
    /// Chain slot, when the equivocation is in multi-shot traffic.
    pub slot: Option<Slot>,
    /// View of the conflicting claims.
    pub view: View,
    /// Vote phase, or `None` when the node equivocated as a proposer.
    pub phase: Option<Phase>,
    /// The first value the node claimed.
    pub first: Value,
    /// The conflicting value it claimed later.
    pub second: Value,
}

impl Evidence {
    /// Builds evidence from two conflicting claims by `node`.
    ///
    /// Returns `None` unless the claims name the same register with
    /// different values.
    pub fn from_claims(node: NodeId, a: AuditClaim, b: AuditClaim) -> Option<Evidence> {
        if a.slot == b.slot && a.view == b.view && a.phase == b.phase && a.value != b.value {
            Some(Evidence {
                node,
                slot: a.slot,
                view: a.view,
                phase: a.phase,
                first: a.value,
                second: b.value,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = if self.phase.is_some() { "voted" } else { "proposed" };
        write!(
            f,
            "node {} {verb} both {} and {} in view {}",
            self.node.0, self.first, self.second, self.view.0
        )?;
        if let Some(phase) = self.phase {
            write!(f, " ({phase})")?;
        }
        if let Some(slot) = self.slot {
            write!(f, " at slot {}", slot.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(view: u64, phase: Option<Phase>, value: u64) -> AuditClaim {
        AuditClaim { slot: None, view: View(view), phase, value: Value::from_u64(value) }
    }

    #[test]
    fn conflicting_claims_yield_evidence() {
        let a = claim(7, Some(Phase::VOTE2), 1);
        let b = claim(7, Some(Phase::VOTE2), 2);
        let ev = Evidence::from_claims(NodeId(3), a, b).expect("conflict");
        assert_eq!(ev.view, View(7));
        assert_eq!(ev.first, Value::from_u64(1));
        assert_eq!(ev.second, Value::from_u64(2));
    }

    #[test]
    fn same_value_or_different_register_is_not_evidence() {
        let a = claim(7, Some(Phase::VOTE2), 1);
        assert!(Evidence::from_claims(NodeId(0), a, a).is_none());
        assert!(Evidence::from_claims(NodeId(0), a, claim(8, Some(Phase::VOTE2), 2)).is_none());
        assert!(Evidence::from_claims(NodeId(0), a, claim(7, Some(Phase::VOTE3), 2)).is_none());
        let slotted = AuditClaim { slot: Some(Slot(4)), ..claim(7, Some(Phase::VOTE2), 2) };
        assert!(Evidence::from_claims(NodeId(0), a, slotted).is_none());
    }

    #[test]
    fn display_names_node_views_and_values() {
        let ev = Evidence {
            node: NodeId(3),
            slot: Some(Slot(4)),
            view: View(7),
            phase: None,
            first: Value::from_u64(1),
            second: Value::from_u64(2),
        };
        let text = ev.to_string();
        assert!(text.contains("node 3 proposed both"), "{text}");
        assert!(text.contains("in view 7"), "{text}");
        assert!(text.contains("at slot 4"), "{text}");
    }
}
