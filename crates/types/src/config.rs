//! System configuration and quorum arithmetic.

use std::fmt;

use crate::{NodeId, View};

/// Errors produced when constructing a [`Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than four nodes cannot tolerate any Byzantine fault while
    /// satisfying `n > 3f` with `f ≥ 1`; `n ≥ 1` is still accepted with
    /// `f = 0`, so this fires only for `n == 0`.
    NoNodes,
    /// An explicit fault budget violated `n > 3f`.
    TooManyFaults {
        /// Number of nodes requested.
        n: usize,
        /// Fault budget requested.
        f: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "system must contain at least one node"),
            ConfigError::TooManyFaults { n, f: faults } => {
                write!(f, "n > 3f violated: n={n}, f={faults}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Static system configuration: the node count `n` and fault budget `f`.
///
/// The paper assumes `n > 3f`. A *quorum* is any set of `n − f` nodes and a
/// *blocking set* any set of `f + 1` nodes (Section 1.1). Leaders are
/// assigned round-robin by view number (Section 3.2).
///
/// # Examples
///
/// ```
/// use tetrabft_types::{Config, NodeId, View};
/// let cfg = Config::new(7)?;
/// assert_eq!(cfg.f(), 2);
/// assert_eq!(cfg.quorum(), 5);
/// assert_eq!(cfg.blocking(), 3);
/// assert_eq!(cfg.leader_of(View(8)), NodeId(1));
/// # Ok::<(), tetrabft_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    n: usize,
    f: usize,
}

impl Config {
    /// Creates a configuration with the maximum fault budget `f = ⌊(n−1)/3⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoNodes`] when `n == 0`.
    pub fn new(n: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoNodes);
        }
        Ok(Config { n, f: (n - 1) / 3 })
    }

    /// Creates a configuration with an explicit fault budget.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TooManyFaults`] unless `n > 3f`, and
    /// [`ConfigError::NoNodes`] when `n == 0`.
    pub fn with_faults(n: usize, f: usize) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoNodes);
        }
        if n <= 3 * f {
            return Err(ConfigError::TooManyFaults { n, f });
        }
        Ok(Config { n, f })
    }

    /// Total number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault budget `f` (maximum number of Byzantine nodes tolerated).
    #[inline]
    pub fn f(&self) -> usize {
        self.f
    }

    /// Quorum size `n − f`.
    #[inline]
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// Blocking-set size `f + 1`.
    #[inline]
    pub fn blocking(&self) -> usize {
        self.f + 1
    }

    /// The pre-determined leader of `view`, assigned round-robin.
    #[inline]
    pub fn leader_of(&self, view: View) -> NodeId {
        NodeId((view.0 % self.n as u64) as u16)
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u16).map(NodeId)
    }

    /// `true` when `count` messages constitute a quorum.
    #[inline]
    pub fn is_quorum(&self, count: usize) -> bool {
        count >= self.quorum()
    }

    /// `true` when `count` messages constitute a blocking set.
    #[inline]
    pub fn is_blocking(&self, count: usize) -> bool {
        count >= self.blocking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic_small_systems() {
        for (n, f, q, b) in [(1, 0, 1, 1), (3, 0, 3, 1), (4, 1, 3, 2), (7, 2, 5, 3), (10, 3, 7, 4)]
        {
            let cfg = Config::new(n).unwrap();
            assert_eq!(cfg.f(), f, "n={n}");
            assert_eq!(cfg.quorum(), q, "n={n}");
            assert_eq!(cfg.blocking(), b, "n={n}");
        }
    }

    #[test]
    fn explicit_fault_budget_validation() {
        assert!(Config::with_faults(4, 1).is_ok());
        assert_eq!(Config::with_faults(3, 1), Err(ConfigError::TooManyFaults { n: 3, f: 1 }));
        assert_eq!(Config::with_faults(0, 0), Err(ConfigError::NoNodes));
        assert_eq!(Config::new(0), Err(ConfigError::NoNodes));
    }

    #[test]
    fn quorum_intersection_contains_correct_node() {
        // Structural sanity: two quorums intersect in > f nodes, so at least
        // one member of the intersection is well-behaved.
        for n in 1..50 {
            let cfg = Config::new(n).unwrap();
            let overlap = 2 * cfg.quorum() as isize - n as isize;
            assert!(overlap > cfg.f() as isize, "quorum intersection must exceed f (n={n})");
        }
    }

    #[test]
    fn quorum_meets_blocking_set() {
        // A quorum and a blocking set always intersect: (n-f) + (f+1) > n.
        for n in 1..50 {
            let cfg = Config::new(n).unwrap();
            assert!(cfg.quorum() + cfg.blocking() > cfg.n());
        }
    }

    #[test]
    fn round_robin_leader() {
        let cfg = Config::new(4).unwrap();
        let leaders: Vec<_> = (0..8).map(|v| cfg.leader_of(View(v)).0).collect();
        assert_eq!(leaders, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn nodes_iterator_is_complete() {
        let cfg = Config::new(5).unwrap();
        let ids: Vec<_> = cfg.nodes().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], NodeId(0));
        assert_eq!(ids[4], NodeId(4));
    }

    #[test]
    fn predicates() {
        let cfg = Config::new(4).unwrap();
        assert!(cfg.is_quorum(3));
        assert!(!cfg.is_quorum(2));
        assert!(cfg.is_blocking(2));
        assert!(!cfg.is_blocking(1));
    }
}
