//! The constant-size persistent vote storage of Section 3.1.

use crate::{Phase, Value, View};

/// A recorded vote: the view it was cast in and the value it carried.
///
/// # Examples
///
/// ```
/// use tetrabft_types::{Value, View, VoteInfo};
/// let vote = VoteInfo { view: View(3), value: Value::from_u64(9) };
/// assert_eq!(vote.view, View(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoteInfo {
    /// View the vote was cast in.
    pub view: View,
    /// Value the vote carried.
    pub value: Value,
}

impl VoteInfo {
    /// Convenience constructor.
    #[inline]
    pub fn new(view: View, value: Value) -> Self {
        VoteInfo { view, value }
    }
}

/// The constant-size persistent vote book of Section 3.1.
///
/// "Throughout the views, a node needs only to store the highest `vote-1`,
/// `vote-2`, `vote-3` and `vote-4` messages it sent, along with the second
/// highest `vote-1` and `vote-2` messages that carry a different value from
/// their respective highest messages." — six registers in total, so storage
/// is O(1) regardless of how many views execute (the Table 1 storage column).
///
/// [`VoteBook::record`] maintains the invariant that `prev(p)` is the
/// highest-view vote in phase `p` whose value differs from `highest(p)`'s
/// value, relying on the protocol guarantee that a well-behaved node votes at
/// most once per phase per view and that its views are non-decreasing.
///
/// # Examples
///
/// ```
/// use tetrabft_types::{Phase, Value, View, VoteBook};
/// let mut book = VoteBook::default();
/// book.record(Phase::VOTE2, View(1), Value::from_u64(7));
/// book.record(Phase::VOTE2, View(4), Value::from_u64(9));
/// let h = book.highest(Phase::VOTE2).unwrap();
/// let p = book.prev(Phase::VOTE2).unwrap();
/// assert_eq!((h.view, h.value.as_u64()), (View(4), 9));
/// assert_eq!((p.view, p.value.as_u64()), (View(1), 7));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VoteBook {
    highest: [Option<VoteInfo>; 4],
    // Second-highest with a different value; tracked for vote-1 and vote-2
    // only (indices 0 and 1), as required by proof/suggest messages.
    prev: [Option<VoteInfo>; 2],
}

impl VoteBook {
    /// Creates an empty vote book.
    pub fn new() -> Self {
        VoteBook::default()
    }

    /// Records that this node cast a vote in `phase` for `(view, value)`.
    ///
    /// Votes with a view lower than the current highest for the phase are
    /// ignored (a well-behaved node never produces them; ignoring makes the
    /// type safe to drive from replayed inputs). A duplicate vote for the
    /// same view is a no-op.
    pub fn record(&mut self, phase: Phase, view: View, value: Value) {
        let i = phase.index();
        match self.highest[i] {
            Some(h) if view <= h.view => {
                // Replay or stale input: the book already reflects this phase
                // at an equal-or-higher view.
            }
            Some(h) => {
                if h.value != value && i < 2 {
                    // The outgoing highest is the best-known vote with a value
                    // different from the *new* highest.
                    self.prev[i] = Some(h);
                }
                self.highest[i] = Some(VoteInfo::new(view, value));
            }
            None => {
                self.highest[i] = Some(VoteInfo::new(view, value));
            }
        }
    }

    /// The highest vote sent in `phase`, if any.
    #[inline]
    pub fn highest(&self, phase: Phase) -> Option<VoteInfo> {
        self.highest[phase.index()]
    }

    /// The highest vote sent in `phase` for a value *different* from the
    /// value of [`VoteBook::highest`]. Only tracked for `vote-1`/`vote-2`
    /// (what proof/suggest messages carry); `None` for later phases.
    #[inline]
    pub fn prev(&self, phase: Phase) -> Option<VoteInfo> {
        if phase.index() < 2 {
            self.prev[phase.index()]
        } else {
            None
        }
    }

    /// `true` if the node has already voted in `phase` at `view` (or later).
    #[inline]
    pub fn has_voted_at_or_after(&self, phase: Phase, view: View) -> bool {
        self.highest(phase).is_some_and(|h| h.view >= view)
    }

    /// Fields a `suggest` message carries: the highest `vote-2`, the
    /// second-highest different-valued `vote-2`, and the highest `vote-3`.
    #[inline]
    pub fn suggest_fields(&self) -> (Option<VoteInfo>, Option<VoteInfo>, Option<VoteInfo>) {
        (self.highest(Phase::VOTE2), self.prev(Phase::VOTE2), self.highest(Phase::VOTE3))
    }

    /// Fields a `proof` message carries: the highest `vote-1`, the
    /// second-highest different-valued `vote-1`, and the highest `vote-4`.
    #[inline]
    pub fn proof_fields(&self) -> (Option<VoteInfo>, Option<VoteInfo>, Option<VoteInfo>) {
        (self.highest(Phase::VOTE1), self.prev(Phase::VOTE1), self.highest(Phase::VOTE4))
    }

    /// Size in bytes of the persistent state, used by the storage
    /// measurements of experiment E1/E6. Constant by construction.
    pub fn persistent_bytes(&self) -> usize {
        // 6 registers, each an optional (view: u64, value: 8 bytes) + tag.
        6 * (1 + 8 + 8)
    }

    /// The six registers in persistence order: highest vote-1..4 followed
    /// by the second-highest different-valued vote-1/vote-2. Together with
    /// [`VoteBook::from_registers`] this is the durable-store boundary —
    /// exactly what the paper says a node must keep across crashes.
    #[inline]
    pub fn registers(&self) -> [Option<VoteInfo>; 6] {
        [
            self.highest[0],
            self.highest[1],
            self.highest[2],
            self.highest[3],
            self.prev[0],
            self.prev[1],
        ]
    }

    /// Rebuilds a book from the six registers of [`VoteBook::registers`].
    ///
    /// No invariant repair is attempted: the registers are trusted to come
    /// from a book this process (or a crashed ancestor) wrote, so restore
    /// is byte-faithful — `from_registers(b.registers()) == b`.
    #[inline]
    pub fn from_registers(regs: [Option<VoteInfo>; 6]) -> Self {
        VoteBook { highest: [regs[0], regs[1], regs[2], regs[3]], prev: [regs[4], regs[5]] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(raw: u64) -> Value {
        Value::from_u64(raw)
    }

    #[test]
    fn empty_book() {
        let book = VoteBook::new();
        for p in Phase::ALL {
            assert_eq!(book.highest(p), None);
            assert_eq!(book.prev(p), None);
        }
    }

    #[test]
    fn same_value_votes_do_not_create_prev() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE1, View(1), v(5));
        book.record(Phase::VOTE1, View(2), v(5));
        book.record(Phase::VOTE1, View(9), v(5));
        assert_eq!(book.highest(Phase::VOTE1), Some(VoteInfo::new(View(9), v(5))));
        assert_eq!(book.prev(Phase::VOTE1), None);
    }

    #[test]
    fn value_switch_moves_old_highest_to_prev() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE2, View(1), v(5));
        book.record(Phase::VOTE2, View(3), v(7));
        assert_eq!(book.highest(Phase::VOTE2), Some(VoteInfo::new(View(3), v(7))));
        assert_eq!(book.prev(Phase::VOTE2), Some(VoteInfo::new(View(1), v(5))));
    }

    #[test]
    fn alternating_values_track_paper_definition() {
        // Votes (1,A) (2,B) (3,A): highest=(3,A), prev must be (2,B) — the
        // highest vote with a value different from A.
        let mut book = VoteBook::new();
        book.record(Phase::VOTE2, View(1), v(0xA));
        book.record(Phase::VOTE2, View(2), v(0xB));
        book.record(Phase::VOTE2, View(3), v(0xA));
        assert_eq!(book.highest(Phase::VOTE2), Some(VoteInfo::new(View(3), v(0xA))));
        assert_eq!(book.prev(Phase::VOTE2), Some(VoteInfo::new(View(2), v(0xB))));
    }

    #[test]
    fn three_distinct_values() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE1, View(1), v(1));
        book.record(Phase::VOTE1, View(2), v(2));
        book.record(Phase::VOTE1, View(3), v(3));
        assert_eq!(book.highest(Phase::VOTE1), Some(VoteInfo::new(View(3), v(3))));
        assert_eq!(book.prev(Phase::VOTE1), Some(VoteInfo::new(View(2), v(2))));
    }

    #[test]
    fn stale_and_duplicate_votes_are_ignored() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE3, View(5), v(1));
        book.record(Phase::VOTE3, View(5), v(2)); // duplicate view
        book.record(Phase::VOTE3, View(2), v(3)); // stale view
        assert_eq!(book.highest(Phase::VOTE3), Some(VoteInfo::new(View(5), v(1))));
    }

    #[test]
    fn phases_three_and_four_never_report_prev() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE3, View(1), v(1));
        book.record(Phase::VOTE3, View(2), v(2));
        book.record(Phase::VOTE4, View(1), v(1));
        book.record(Phase::VOTE4, View(2), v(2));
        assert_eq!(book.prev(Phase::VOTE3), None);
        assert_eq!(book.prev(Phase::VOTE4), None);
    }

    #[test]
    fn has_voted_predicate() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE1, View(4), v(1));
        assert!(book.has_voted_at_or_after(Phase::VOTE1, View(4)));
        assert!(book.has_voted_at_or_after(Phase::VOTE1, View(3)));
        assert!(!book.has_voted_at_or_after(Phase::VOTE1, View(5)));
        assert!(!book.has_voted_at_or_after(Phase::VOTE2, View(0)));
    }

    #[test]
    fn message_field_extraction() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE1, View(1), v(1));
        book.record(Phase::VOTE2, View(2), v(2));
        book.record(Phase::VOTE3, View(3), v(3));
        book.record(Phase::VOTE4, View(4), v(4));
        let (s_hi, s_prev, s_v3) = book.suggest_fields();
        assert_eq!(s_hi, Some(VoteInfo::new(View(2), v(2))));
        assert_eq!(s_prev, None);
        assert_eq!(s_v3, Some(VoteInfo::new(View(3), v(3))));
        let (p_hi, p_prev, p_v4) = book.proof_fields();
        assert_eq!(p_hi, Some(VoteInfo::new(View(1), v(1))));
        assert_eq!(p_prev, None);
        assert_eq!(p_v4, Some(VoteInfo::new(View(4), v(4))));
    }

    #[test]
    fn register_roundtrip_is_byte_faithful() {
        let mut book = VoteBook::new();
        book.record(Phase::VOTE1, View(1), v(1));
        book.record(Phase::VOTE1, View(2), v(2));
        book.record(Phase::VOTE2, View(3), v(3));
        book.record(Phase::VOTE2, View(5), v(4));
        book.record(Phase::VOTE3, View(4), v(5));
        book.record(Phase::VOTE4, View(4), v(5));
        let restored = VoteBook::from_registers(book.registers());
        assert_eq!(restored, book);
        // An empty book roundtrips too.
        assert_eq!(VoteBook::from_registers(VoteBook::new().registers()), VoteBook::new());
    }

    #[test]
    fn persistent_size_is_constant() {
        let mut book = VoteBook::new();
        let before = book.persistent_bytes();
        for view in 0..1000 {
            book.record(Phase::VOTE1, View(view), v(view % 3));
            book.record(Phase::VOTE2, View(view), v(view % 5));
        }
        assert_eq!(book.persistent_bytes(), before);
    }
}
