//! A no-dependency small-vector: inline storage for the first `N` elements,
//! spilling to the heap only past that.
//!
//! The consensus hot path produces short, bounded bursts — an engine step
//! emits a handful of [`Action`]s, a view collects at most `n` suggests, a
//! slot window holds 8 instances. A plain `Vec` heap-allocates for the very
//! first push; `InlineVec<T, N>` keeps the good case on the stack and only
//! pays for a heap allocation when a burst genuinely exceeds `N` (the
//! smallvec idea, re-implemented here because the repo builds offline).
//!
//! The implementation is 100 % safe code: inline slots are `[Option<T>; N]`,
//! so no `MaybeUninit` bookkeeping is needed. The price is one discriminant
//! per slot — irrelevant next to the allocations it removes.
//!
//! (`Action` is the engine's effect enum, defined in `tetrabft-engine`.)

use std::fmt;

/// A growable sequence whose first `N` elements live inline (no heap).
///
/// Push-order iteration, `O(1)` push/pop at the back, and a one-way *spill*:
/// once the length exceeds `N` all elements move to an internal `Vec` and
/// stay there until [`InlineVec::clear`] (which retains the heap capacity,
/// so a buffer that spilled once never allocates again in steady state).
///
/// # Examples
///
/// ```
/// use tetrabft_types::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// for x in 0..4 {
///     v.push(x);
/// }
/// assert!(!v.spilled());
/// v.push(4); // fifth element: spills to the heap
/// assert!(v.spilled());
/// assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
/// ```
pub struct InlineVec<T, const N: usize> {
    /// Inline slots; `slots[..len]` are `Some` while not spilled.
    slots: [Option<T>; N],
    /// Number of live inline elements (0 while spilled).
    len: usize,
    /// Overflow storage; holds *all* elements once spilled.
    heap: Vec<T>,
    spilled: bool,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector. Does not allocate.
    #[inline]
    pub fn new() -> Self {
        InlineVec { slots: std::array::from_fn(|_| None), len: 0, heap: Vec::new(), spilled: false }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len
        }
    }

    /// `true` if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the vector has overflowed its inline capacity. Cleared
    /// by [`InlineVec::clear`] (the heap capacity is kept either way).
    #[inline]
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Appends an element. Allocates only on the push that first exceeds
    /// `N` (or never, if a previous spill left enough heap capacity).
    pub fn push(&mut self, value: T) {
        if self.spilled {
            self.heap.push(value);
        } else if self.len < N {
            self.slots[self.len] = Some(value);
            self.len += 1;
        } else {
            self.heap.reserve(N + 1);
            for slot in &mut self.slots {
                self.heap.push(slot.take().expect("inline slot below len is Some"));
            }
            self.heap.push(value);
            self.len = 0;
            self.spilled = true;
        }
    }

    /// Removes and returns the last element, or `None` if empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            self.heap.pop()
        } else if self.len > 0 {
            self.len -= 1;
            self.slots[self.len].take()
        } else {
            None
        }
    }

    /// The element at `index`, or `None` past the end.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&T> {
        if self.spilled {
            self.heap.get(index)
        } else if index < self.len {
            self.slots[index].as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the element at `index`.
    #[inline]
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if self.spilled {
            self.heap.get_mut(index)
        } else if index < self.len {
            self.slots[index].as_mut()
        } else {
            None
        }
    }

    /// The last element, or `None` if empty.
    #[inline]
    pub fn last(&self) -> Option<&T> {
        match self.len() {
            0 => None,
            n => self.get(n - 1),
        }
    }

    /// Removes the element at `index` in `O(1)` by swapping the last
    /// element into its place. Order is not preserved.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn swap_remove(&mut self, index: usize) -> T {
        if self.spilled {
            return self.heap.swap_remove(index);
        }
        assert!(index < self.len, "swap_remove index {index} out of bounds (len {})", self.len);
        self.len -= 1;
        let last = self.slots[self.len].take().expect("inline slot below len is Some");
        match self.slots[index].replace(last) {
            Some(removed) => removed,
            // index == old last: the replace put `last` back where it was.
            None => self.slots[index].take().expect("just replaced"),
        }
    }

    /// Drops all elements. Inline slots are reset and any heap capacity is
    /// retained, so a long-lived scratch buffer reaches a zero-allocation
    /// steady state even if occasional bursts spill.
    pub fn clear(&mut self) {
        for slot in &mut self.slots[..self.len] {
            *slot = None;
        }
        self.len = 0;
        self.heap.clear();
        self.spilled = false;
    }

    /// Iterates the elements in push order.
    #[inline]
    pub fn iter(&self) -> Iter<'_, T, N> {
        Iter { vec: self, index: 0 }
    }

    /// Removes all elements, yielding them in push order. Equivalent to
    /// draining the full range of a `Vec`. If the vector had spilled, the
    /// heap buffer is consumed (the common scratch-reuse pattern drains
    /// un-spilled buffers, which keep everything in place).
    pub fn drain(&mut self) -> Drain<'_, T, N> {
        let overflow = if self.spilled {
            self.spilled = false;
            Some(std::mem::take(&mut self.heap).into_iter())
        } else {
            None
        };
        Drain { vec: self, index: 0, overflow }
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    #[inline]
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = InlineVec::new();
        out.extend(self.iter().cloned());
        out
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = InlineVec::new();
        out.extend(iter);
        out
    }
}

/// Borrowing iterator in push order.
pub struct Iter<'a, T, const N: usize> {
    vec: &'a InlineVec<T, N>,
    index: usize,
}

impl<'a, T, const N: usize> Iterator for Iter<'a, T, N> {
    type Item = &'a T;

    #[inline]
    fn next(&mut self) -> Option<&'a T> {
        let item = self.vec.get(self.index)?;
        self.index += 1;
        Some(item)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.vec.len().saturating_sub(self.index);
        (rest, Some(rest))
    }
}

impl<T, const N: usize> ExactSizeIterator for Iter<'_, T, N> {}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T, N>;

    #[inline]
    fn into_iter(self) -> Iter<'a, T, N> {
        self.iter()
    }
}

/// Draining iterator: removes elements in push order; whatever is not
/// consumed is dropped when the iterator is.
pub struct Drain<'a, T, const N: usize> {
    vec: &'a mut InlineVec<T, N>,
    index: usize,
    /// Set when the source had spilled: the whole heap buffer, taken.
    overflow: Option<std::vec::IntoIter<T>>,
}

impl<T, const N: usize> Iterator for Drain<'_, T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if let Some(overflow) = &mut self.overflow {
            return overflow.next();
        }
        if self.index < self.vec.len {
            let item = self.vec.slots[self.index].take().expect("inline slot below len is Some");
            self.index += 1;
            Some(item)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = match &self.overflow {
            Some(overflow) => overflow.len(),
            None => self.vec.len.saturating_sub(self.index),
        };
        (rest, Some(rest))
    }
}

impl<T, const N: usize> ExactSizeIterator for Drain<'_, T, N> {}

impl<T, const N: usize> Drop for Drain<'_, T, N> {
    fn drop(&mut self) {
        // Unconsumed overflow elements drop with the taken IntoIter.
        for slot in &mut self.vec.slots[self.index..self.vec.len] {
            *slot = None;
        }
        self.vec.len = 0;
    }
}

/// Owning iterator in push order.
pub struct IntoIter<T, const N: usize> {
    slots: [Option<T>; N],
    len: usize,
    index: usize,
    overflow: Option<std::vec::IntoIter<T>>,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if let Some(overflow) = &mut self.overflow {
            return overflow.next();
        }
        if self.index < self.len {
            let item = self.slots[self.index].take();
            self.index += 1;
            item
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = match &self.overflow {
            Some(overflow) => overflow.len(),
            None => self.len.saturating_sub(self.index),
        };
        (rest, Some(rest))
    }
}

impl<T, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> IntoIter<T, N> {
        let overflow = if self.spilled { Some(self.heap.into_iter()) } else { None };
        IntoIter { slots: self.slots, len: self.len, index: 0, overflow }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let v: InlineVec<u32, 4> = InlineVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert!(!v.spilled());
        assert_eq!(v.get(0), None);
        assert_eq!(v.last(), None);
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn push_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for x in 0..4 {
            v.push(x);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(v.last(), Some(&3));
    }

    #[test]
    fn spill_past_inline_capacity_preserves_order() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for x in 0..10 {
            v.push(x);
        }
        assert_eq!(v.len(), 10);
        assert!(v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_inline_and_spilled() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        v.push(2);
        v.push(3); // spill
        assert!(v.spilled());
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn clear_resets_and_unspills() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for x in 0..5 {
            v.push(x);
        }
        assert!(v.spilled());
        v.clear();
        assert!(v.is_empty());
        assert!(!v.spilled());
        v.push(9);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![9]);
        assert!(!v.spilled());
    }

    #[test]
    fn drain_yields_in_push_order_and_empties() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.extend(0..3);
        assert_eq!(v.drain().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(v.is_empty());
        v.extend(0..7); // spill
        assert_eq!(v.drain().collect::<Vec<_>>(), (0..7).collect::<Vec<_>>());
        assert!(v.is_empty());
        assert!(!v.spilled());
    }

    #[test]
    fn partially_consumed_drain_drops_the_rest() {
        let mut v: InlineVec<String, 2> = InlineVec::new();
        v.extend(["a", "b", "c", "d"].map(String::from));
        {
            let mut d = v.drain();
            assert_eq!(d.next().as_deref(), Some("a"));
        }
        assert!(v.is_empty());
        // Same for the inline case.
        v.push("x".into());
        v.push("y".into());
        {
            let mut d = v.drain();
            assert_eq!(d.next().as_deref(), Some("x"));
        }
        assert!(v.is_empty());
    }

    #[test]
    fn swap_remove_inline_and_spilled() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.extend([10, 20, 30]);
        assert_eq!(v.swap_remove(0), 10);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![30, 20]);
        assert_eq!(v.swap_remove(1), 20);
        assert_eq!(v.swap_remove(0), 30);
        assert!(v.is_empty());

        let mut s: InlineVec<u32, 2> = (0..5).collect();
        assert!(s.spilled());
        assert_eq!(s.swap_remove(1), 1);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![0, 4, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn swap_remove_out_of_bounds_panics() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(1);
        let _ = v.swap_remove(1);
    }

    #[test]
    fn clone_and_eq_cross_representation() {
        let inline: InlineVec<u32, 8> = (0..5).collect();
        let spilled: InlineVec<u32, 2> = (0..5).collect();
        assert!(!inline.spilled() && spilled.spilled());
        // PartialEq is over the sequence, not the representation.
        assert_eq!(inline.iter().collect::<Vec<_>>(), spilled.iter().collect::<Vec<_>>());
        let c = spilled.clone();
        assert_eq!(c, spilled);
        let d = inline.clone();
        assert_eq!(d, inline);
        assert_ne!(d, (0..4).collect::<InlineVec<u32, 8>>());
    }

    #[test]
    fn into_iter_owned() {
        let v: InlineVec<String, 2> = ["a", "b", "c"].map(String::from).into_iter().collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        let w: InlineVec<String, 8> = ["x", "y"].map(String::from).into_iter().collect();
        assert_eq!(w.into_iter().collect::<Vec<_>>(), vec!["x", "y"]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut v: InlineVec<u32, 2> = (0..4).collect();
        *v.get_mut(2).unwrap() = 99;
        assert_eq!(v.get(2), Some(&99));
        let mut w: InlineVec<u32, 4> = (0..2).collect();
        *w.get_mut(0).unwrap() = 42;
        assert_eq!(w.get(0), Some(&42));
        assert_eq!(w.get_mut(5), None);
    }

    #[test]
    fn spilled_buffer_reuses_capacity_after_clear() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.extend(0..10);
        let cap_before = v.heap.capacity();
        v.clear();
        v.extend(0..10);
        assert_eq!(v.heap.capacity(), cap_before, "clear must retain heap capacity");
    }

    #[test]
    fn debug_formats_as_list() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        assert_eq!(format!("{v:?}"), "[0, 1, 2]");
    }
}
