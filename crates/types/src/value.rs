//! The opaque consensus value.

use std::fmt;

/// An opaque 8-byte value the protocol agrees on.
///
/// In single-shot consensus this is the proposed value itself; in multi-shot
/// TetraBFT it is a block digest (`tetrabft-multishot` maps digests back to
/// full blocks). The kernel deliberately does not interpret the bytes — an
/// unauthenticated protocol must not rely on any structure inside values.
///
/// # Examples
///
/// ```
/// use tetrabft_types::Value;
/// let v = Value::from_u64(42);
/// assert_eq!(v.as_u64(), 42);
/// assert_ne!(v, Value::from_u64(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub [u8; 8]);

impl Value {
    /// Constructs a value from a `u64` (big-endian bytes).
    #[inline]
    pub fn from_u64(raw: u64) -> Self {
        Value(raw.to_be_bytes())
    }

    /// Reads the value back as a `u64`.
    #[inline]
    pub fn as_u64(self) -> u64 {
        u64::from_be_bytes(self.0)
    }

    /// Raw byte view of the value.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 8] {
        &self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "val:{:016x}", self.as_u64())
    }
}

impl From<u64> for Value {
    fn from(raw: u64) -> Self {
        Value::from_u64(raw)
    }
}

impl From<[u8; 8]> for Value {
    fn from(bytes: [u8; 8]) -> Self {
        Value(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for raw in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Value::from_u64(raw).as_u64(), raw);
        }
    }

    #[test]
    fn byte_conversions() {
        let v = Value::from([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(v.as_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::from_u64(255).to_string(), "val:00000000000000ff");
    }
}
