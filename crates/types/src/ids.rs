//! Identifier newtypes: [`NodeId`], [`View`], [`Slot`].

use std::fmt;

/// Identity of a node in the system.
///
/// Nodes are numbered `0..n`. The type is a transparent newtype so it can be
/// used as a vector index via [`NodeId::index`].
///
/// # Examples
///
/// ```
/// use tetrabft_types::NodeId;
/// let id = NodeId(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the id as a `usize`, convenient for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

/// A view (round) number.
///
/// Views start at [`View::ZERO`]; view numbers only ever grow. The protocol
/// frequently asks for "the next view", provided by [`View::next`].
///
/// # Examples
///
/// ```
/// use tetrabft_types::View;
/// assert_eq!(View::ZERO.next(), View(1));
/// assert!(View(2) > View(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(pub u64);

impl View {
    /// The first view. All values are safe at view zero (Rule 1 / Rule 3).
    pub const ZERO: View = View(0);

    /// The successor view.
    #[inline]
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// The predecessor view, or `None` for view zero.
    #[inline]
    pub fn prev(self) -> Option<View> {
        self.0.checked_sub(1).map(View)
    }

    /// `true` for [`View::ZERO`].
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for View {
    fn from(raw: u64) -> Self {
        View(raw)
    }
}

/// A slot (block height) in multi-shot TetraBFT.
///
/// Slots are numbered from 1 as in Algorithm 3 of the paper; slot 0 denotes
/// the genesis block.
///
/// # Examples
///
/// ```
/// use tetrabft_types::Slot;
/// assert_eq!(Slot::GENESIS.next(), Slot(1));
/// assert_eq!(Slot(4).prev(), Some(Slot(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// The genesis slot; holds the empty genesis block, never voted on.
    pub const GENESIS: Slot = Slot(0);

    /// The successor slot.
    #[inline]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// The predecessor slot, or `None` for genesis.
    #[inline]
    pub fn prev(self) -> Option<Slot> {
        self.0.checked_sub(1).map(Slot)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u64> for Slot {
    fn from(raw: u64) -> Self {
        Slot(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from(7u16);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "n7");
    }

    #[test]
    fn view_ordering_and_navigation() {
        assert!(View::ZERO.is_zero());
        assert_eq!(View::ZERO.prev(), None);
        assert_eq!(View(3).prev(), Some(View(2)));
        assert_eq!(View(3).next(), View(4));
        assert!(View(10) > View(9));
    }

    #[test]
    fn slot_navigation() {
        assert_eq!(Slot::GENESIS.prev(), None);
        assert_eq!(Slot(1).prev(), Some(Slot::GENESIS));
        assert_eq!(Slot(1).next(), Slot(2));
        assert_eq!(format!("{}", Slot(9)), "s9");
    }
}
