//! The four voting phases of TetraBFT.

use std::fmt;

/// A TetraBFT vote phase: `vote-1` through `vote-4`.
///
/// The protocol name comes from these four phases (Section 1.1). The type
/// guarantees the phase index stays in `1..=4`.
///
/// # Examples
///
/// ```
/// use tetrabft_types::Phase;
/// assert_eq!(Phase::VOTE1.next(), Some(Phase::VOTE2));
/// assert_eq!(Phase::VOTE4.next(), None);
/// assert_eq!(Phase::VOTE3.as_u8(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Phase(u8);

impl Phase {
    /// Phase `vote-1`.
    pub const VOTE1: Phase = Phase(1);
    /// Phase `vote-2`.
    pub const VOTE2: Phase = Phase(2);
    /// Phase `vote-3`.
    pub const VOTE3: Phase = Phase(3);
    /// Phase `vote-4`.
    pub const VOTE4: Phase = Phase(4);

    /// All four phases in voting order.
    pub const ALL: [Phase; 4] = [Phase::VOTE1, Phase::VOTE2, Phase::VOTE3, Phase::VOTE4];

    /// Constructs a phase from its 1-based index.
    ///
    /// Returns `None` unless `raw ∈ 1..=4`.
    #[inline]
    pub fn from_u8(raw: u8) -> Option<Phase> {
        (1..=4).contains(&raw).then_some(Phase(raw))
    }

    /// The 1-based phase index.
    #[inline]
    pub fn as_u8(self) -> u8 {
        self.0
    }

    /// Zero-based index, handy for array storage.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0 - 1)
    }

    /// The next phase in the voting sequence, or `None` after `vote-4`.
    #[inline]
    pub fn next(self) -> Option<Phase> {
        Phase::from_u8(self.0 + 1)
    }

    /// The previous phase, or `None` before `vote-1`.
    #[inline]
    pub fn prev(self) -> Option<Phase> {
        self.0.checked_sub(1).and_then(Phase::from_u8)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vote-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert_eq!(Phase::from_u8(0), None);
        assert_eq!(Phase::from_u8(5), None);
        assert_eq!(Phase::from_u8(1), Some(Phase::VOTE1));
        assert_eq!(Phase::from_u8(4), Some(Phase::VOTE4));
    }

    #[test]
    fn sequence_navigation() {
        assert_eq!(Phase::VOTE1.next(), Some(Phase::VOTE2));
        assert_eq!(Phase::VOTE2.next(), Some(Phase::VOTE3));
        assert_eq!(Phase::VOTE3.next(), Some(Phase::VOTE4));
        assert_eq!(Phase::VOTE4.next(), None);
        assert_eq!(Phase::VOTE1.prev(), None);
        assert_eq!(Phase::VOTE4.prev(), Some(Phase::VOTE3));
    }

    #[test]
    fn indices_cover_array_storage() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.as_u8() as usize, i + 1);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Phase::VOTE2.to_string(), "vote-2");
    }
}
