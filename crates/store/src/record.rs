//! CRC-framed WAL records over the v2 varint wire primitives.
//!
//! Every record is `[varint payload_len][payload][crc32(payload) as u32]`.
//! The frame reuses the canonical LEB128 of [`tetrabft_wire`], so a torn
//! tail is always *detected* — a truncated varint reads as EOF, a truncated
//! payload as EOF, and a torn checksum (or any corrupted byte) as a CRC
//! mismatch — and never mis-decoded as a shorter valid record.

use tetrabft_wire::{Reader, Writer};

use crate::crc::crc32;

/// Upper bound on one record's payload; a length prefix beyond it is
/// treated as tail corruption rather than honored (a torn varint can
/// otherwise ask for gigabytes).
pub const MAX_RECORD_BYTES: u64 = 1 << 24;

/// Appends the framed encoding of `payload` to `w` — the scratch-reuse
/// entry point: a retained, cleared [`Writer`] frames record after record
/// without touching the allocator once its capacity settles.
pub fn frame_into_writer(w: &mut Writer, payload: &[u8]) {
    w.put_varint(payload.len() as u64);
    w.put_slice(payload);
    w.put_u32(crc32(payload));
}

/// Appends the framed encoding of `payload` to `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    let mut w = Writer::with_capacity(payload.len() + 14);
    frame_into_writer(&mut w, payload);
    out.extend_from_slice(w.as_bytes());
}

/// The framed encoding of `payload` as a fresh buffer.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 14);
    frame_into(&mut out, payload);
    out
}

/// Scans `bytes` from the front, returning every valid record payload and
/// the byte length of the valid prefix. Scanning stops at the first frame
/// that is truncated, oversized, or fails its CRC — everything after that
/// point is a torn tail the caller should truncate away.
pub fn scan(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut records = Vec::new();
    let mut reader = Reader::new(bytes);
    let mut valid = 0usize;
    loop {
        // Probe on a clone: a failed read must not advance the cursor past
        // the last fully-valid record.
        let mut probe = reader.clone();
        let Ok(len) = probe.get_varint_u64() else { break };
        if len > MAX_RECORD_BYTES {
            break;
        }
        let Ok(payload) = probe.get_slice(len as usize) else { break };
        let Ok(stored_crc) = probe.get_u32() else { break };
        if stored_crc != crc32(payload) {
            break;
        }
        records.push(payload);
        reader = probe;
        valid = bytes.len() - reader.remaining();
    }
    (records, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_records() {
        let payloads: Vec<Vec<u8>> =
            vec![vec![], vec![7], vec![0; 200], (0..=255u8).collect(), b"final".to_vec()];
        let mut file = Vec::new();
        for p in &payloads {
            frame_into(&mut file, p);
        }
        let (records, valid) = scan(&file);
        assert_eq!(valid, file.len());
        assert_eq!(records.len(), payloads.len());
        for (got, want) in records.iter().zip(&payloads) {
            assert_eq!(got, &want.as_slice());
        }
    }

    #[test]
    fn torn_tail_at_every_offset_keeps_the_valid_prefix() {
        let mut file = Vec::new();
        frame_into(&mut file, b"first record");
        let keep = file.len();
        frame_into(&mut file, b"second record, torn below");
        // Truncate the file at every length from "whole second record
        // minus one byte" down to "nothing of it": the scan must always
        // return exactly the first record and the prefix length.
        for cut in keep..file.len() {
            let (records, valid) = scan(&file[..cut]);
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(records[0], b"first record");
            assert_eq!(valid, keep, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_anywhere_in_the_tail_record_is_detected() {
        let mut file = Vec::new();
        frame_into(&mut file, b"good");
        let keep = file.len();
        frame_into(&mut file, b"evil twin");
        for i in keep..file.len() {
            let mut bent = file.clone();
            bent[i] ^= 0x41;
            let (records, valid) = scan(&bent);
            // Either the record is rejected outright (valid prefix = first
            // record) or — when the corrupted byte is the length prefix
            // growing the frame past the buffer — it reads as truncation.
            // It must never decode as a *different* accepted record.
            assert!(records.len() <= 1, "byte {i}: corrupt tail accepted");
            assert_eq!(valid, keep, "byte {i}");
            if let Some(first) = records.first() {
                assert_eq!(*first, b"good");
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_tail_corruption() {
        let mut file = frame(b"ok");
        let keep = file.len();
        let mut w = Writer::new();
        w.put_varint(MAX_RECORD_BYTES + 1);
        file.extend_from_slice(w.as_bytes());
        let (records, valid) = scan(&file);
        assert_eq!(records.len(), 1);
        assert_eq!(valid, keep);
    }

    #[test]
    fn empty_file_scans_clean() {
        let (records, valid) = scan(&[]);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }
}
