//! A single append-only CRC-framed log file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tetrabft_types::FsyncPolicy;
use tetrabft_wire::{Reader, Writer};

use crate::crc::crc32;
use crate::record::{frame_into, frame_into_writer, scan, MAX_RECORD_BYTES};
use crate::StoreError;

/// One write-ahead log file: append-only CRC-framed records, torn-tail
/// truncation on open, optional atomic rewrite (compaction), and the
/// [`FsyncPolicy`] deciding when appended records are forced to media.
///
/// # Examples
///
/// ```
/// use tetrabft_store::Wal;
/// use tetrabft_types::FsyncPolicy;
/// let dir = std::env::temp_dir().join(format!("tetrabft-wal-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("demo.wal");
/// # let _ = std::fs::remove_file(&path);
/// let (mut wal, restored) = Wal::open(&path, FsyncPolicy::Always)?;
/// assert!(restored.is_empty());
/// wal.append(b"record")?;
/// drop(wal);
/// let (_, restored) = Wal::open(&path, FsyncPolicy::Always)?;
/// assert_eq!(restored, vec![b"record".to_vec()]);
/// # std::fs::remove_file(&path)?;
/// # Ok::<(), tetrabft_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Length of the valid (scanned or appended) prefix.
    len: u64,
    records: u64,
    pending: u32,
    policy: FsyncPolicy,
    /// Retained framing buffer: [`Wal::append`] is on the consensus
    /// persist path, so the frame is built in reused capacity instead of
    /// a fresh allocation per record.
    scratch: Writer,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scans its records,
    /// and truncates any torn tail. Returns the log handle and every
    /// payload that survived the scan, in append order.
    pub fn open(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(Wal, Vec<Vec<u8>>), StoreError> {
        let path = path.as_ref().to_path_buf();
        // truncate(false): existing records are the whole point — the scan
        // below decides how much of the tail survives.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid) = scan(&bytes);
        let restored: Vec<Vec<u8>> = records.iter().map(|r| r.to_vec()).collect();
        if valid < bytes.len() {
            // A torn or corrupt tail: cut back to the last valid record so
            // future appends extend known-good state, never garbage.
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        let count = restored.len() as u64;
        let wal = Wal {
            path,
            file,
            len: valid as u64,
            records: count,
            pending: 0,
            policy,
            scratch: Writer::new(),
        };
        Ok((wal, restored))
    }

    /// Appends one record, returning the file offset its frame starts at.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        debug_assert!((payload.len() as u64) <= MAX_RECORD_BYTES);
        self.scratch.clear();
        frame_into_writer(&mut self.scratch, payload);
        // Seek explicitly: open-time truncation (and reads) move the cursor.
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(self.scratch.as_bytes())?;
        let offset = self.len;
        self.len += self.scratch.len() as u64;
        self.records += 1;
        self.pending += 1;
        if self.policy.sync_due(self.pending) {
            self.sync()?;
        }
        Ok(offset)
    }

    /// Forces everything appended so far to stable media (no-op when
    /// nothing is pending).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Reads back the record whose frame starts at `offset` (as returned
    /// by [`Wal::append`]), re-verifying its CRC.
    pub fn read_at(&mut self, offset: u64) -> Result<Vec<u8>, StoreError> {
        if offset >= self.len {
            return Err(StoreError::Corrupt("record offset beyond valid prefix"));
        }
        self.file.seek(SeekFrom::Start(offset))?;
        // Frame header is at most 10 varint bytes; probe those, then
        // re-seek past the header and read payload + CRC exactly.
        let mut head = [0u8; 10];
        let got = read_up_to(&mut self.file, &mut head)?;
        let mut r = Reader::new(&head[..got]);
        let len = r.get_varint_u64().map_err(|_| StoreError::Corrupt("torn record header"))?;
        if len > MAX_RECORD_BYTES {
            return Err(StoreError::Corrupt("record length out of bounds"));
        }
        let header = got - r.remaining();
        self.file.seek(SeekFrom::Start(offset + header as u64))?;
        let mut body = vec![0u8; len as usize + 4];
        self.file.read_exact(&mut body)?;
        let crc_bytes: [u8; 4] = body[len as usize..].try_into().expect("4 trailing bytes");
        body.truncate(len as usize);
        if u32::from_be_bytes(crc_bytes) != crc32(&body) {
            return Err(StoreError::Corrupt("stored record failed its checksum"));
        }
        Ok(body)
    }

    /// Atomically replaces the log's content with `records` (compaction):
    /// the replacement is written to a sibling temp file, synced, and
    /// renamed over the log, so a crash leaves either the old or the new
    /// log — never a hybrid.
    pub fn rewrite<I, B>(&mut self, records: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let tmp = self.path.with_extension("tmp");
        let mut bytes = Vec::new();
        let mut count = 0u64;
        for record in records {
            frame_into(&mut bytes, record.as_ref());
            count += 1;
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.len = bytes.len() as u64;
        self.records = count;
        self.pending = 0;
        Ok(())
    }

    /// Byte length of the valid log.
    #[inline]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Number of records in the log.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads up to `buf.len()` bytes, tolerating EOF (returns bytes read).
fn read_up_to(file: &mut File, buf: &mut [u8]) -> Result<usize, StoreError> {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tetrabft-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    #[test]
    fn append_reopen_restores_in_order() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 3]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (wal, restored) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(restored.len(), 10);
        assert_eq!(wal.records(), 10);
        for (i, r) in restored.iter().enumerate() {
            assert_eq!(r, &vec![i as u8; 3]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_at_returns_the_exact_record() {
        let path = temp_path("read-at");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        let mut offsets = Vec::new();
        for i in 0..5u64 {
            offsets.push(wal.append(&i.to_be_bytes()).unwrap());
        }
        // Interleave reads and appends: the shared cursor must not corrupt
        // either direction.
        for (i, off) in offsets.iter().enumerate() {
            assert_eq!(wal.read_at(*off).unwrap(), (i as u64).to_be_bytes());
            wal.append(b"interleaved").unwrap();
        }
        assert!(wal.read_at(wal.len_bytes()).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(b"keep me").unwrap();
        let keep = wal.len_bytes();
        wal.append(b"torn away").unwrap();
        drop(wal);
        // Tear the final record by one byte.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let (wal, restored) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(restored, vec![b"keep me".to_vec()]);
        assert_eq!(wal.len_bytes(), keep, "file physically truncated to the valid prefix");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let path = temp_path("rewrite");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for i in 0..100u32 {
            wal.append(&i.to_be_bytes()).unwrap();
        }
        let before = wal.len_bytes();
        wal.rewrite([b"only".as_slice(), b"two".as_slice()]).unwrap();
        assert!(wal.len_bytes() < before);
        assert_eq!(wal.records(), 2);
        // Appends keep working on the fresh handle.
        wal.append(b"three").unwrap();
        drop(wal);
        let (_, restored) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(restored, vec![b"only".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }
}
