//! CRC-32 (IEEE 802.3), table-driven, no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 checksum of `data` (the IEEE polynomial every WAL record carries).
///
/// # Examples
///
/// ```
/// use tetrabft_store::crc32;
/// assert_eq!(crc32(b""), 0);
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value plus a couple of independents.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"the quick brown fox".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
