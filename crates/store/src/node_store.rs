//! The per-node durable store: vote WAL + chain log + mempool snapshot +
//! incarnation counter, under one directory.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use tetrabft_types::{FsyncPolicy, Slot, View, VoteBook, VoteInfo};
use tetrabft_wire::{Reader, Writer};

use crate::crc::crc32;
use crate::wal::Wal;
use crate::StoreError;

/// Compaction slack for the vote WAL: the log is rewritten down to one
/// record per live slot once it holds this many records beyond that
/// minimum. The bound makes the *file* constant-size: at most
/// `live slots + COMPACT_SLACK` records ever exist on disk.
pub const COMPACT_SLACK: u64 = 64;

const META_MAGIC: &[u8; 8] = b"TBFTMETA";
const VOTE_VERSION: u8 = 1;
const CHAIN_VERSION: u8 = 1;

/// One restored live-slot record: the slot's current view and this node's
/// [`VoteBook`] for it — exactly the paper's constant persistent state,
/// plus the view needed to not regress after restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotVotes {
    /// The slot the record belongs to.
    pub slot: Slot,
    /// The slot's view at the time of the last persist.
    pub view: View,
    /// The six vote registers.
    pub book: VoteBook,
}

#[derive(Debug, Clone, Copy)]
struct ChainEntry {
    hash: u64,
    offset: u64,
}

/// Durable state of one TetraBFT node, rooted at a directory:
///
/// * `votes.wal` — CRC-framed write-ahead records of each live slot's
///   [`VoteBook`] (+ current view), compacted so the file size is bounded
///   by a constant regardless of chain length;
/// * `chain.wal` — the append-only finalized-chain log (slot, hash, raw
///   block bytes), never rewritten, growing linearly with the chain; an
///   in-memory slot index built at open serves peer catch-up reads;
/// * `mempool.log` — snapshot of admitted-but-unfinalized transactions,
///   re-seeded into the mempool on restart;
/// * `meta` — the incarnation counter, incremented on every open, which
///   the TCP handshake exchanges so peers drop frames buffered for a
///   previous incarnation.
///
/// Torn tails (a crash mid-append) are detected by the CRC framing and
/// truncated on open; a record is either fully restored or not at all.
#[derive(Debug)]
pub struct NodeStore {
    dir: PathBuf,
    incarnation: u64,
    votes: Wal,
    chain: Wal,
    mempool: Wal,
    /// Latest encoded vote record per slot (the compaction working set).
    latest_votes: BTreeMap<u64, Vec<u8>>,
    /// Retained vote-record encode buffer ([`NodeStore::record_votes`] is
    /// on the consensus persist path; steady state re-records the same
    /// slots, so both this buffer and the `latest_votes` entries reuse
    /// their capacity instead of allocating per record).
    vote_scratch: Writer,
    /// Vote state restored at open, for the consumer to take once.
    restored: BTreeMap<u64, SlotVotes>,
    /// Mempool snapshot restored at open.
    restored_mempool: Vec<Vec<u8>>,
    chain_index: BTreeMap<u64, ChainEntry>,
    last_finalized: u64,
}

impl NodeStore {
    /// Opens (creating if needed) the store under `dir`, replays its logs
    /// — truncating any torn tails — and bumps the incarnation counter.
    pub fn open(dir: impl AsRef<Path>, policy: FsyncPolicy) -> Result<NodeStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let incarnation = bump_incarnation(&dir)?;

        let (votes, vote_payloads) = Wal::open(dir.join("votes.wal"), policy)?;
        let mut latest_votes: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut restored: BTreeMap<u64, SlotVotes> = BTreeMap::new();
        for payload in vote_payloads {
            let sv = decode_votes(&payload)?;
            latest_votes.insert(sv.0.slot.0, payload);
            restored.insert(sv.0.slot.0, sv.0);
        }

        let (mut chain, chain_payloads) = Wal::open(dir.join("chain.wal"), policy)?;
        // Re-derive the frame offsets by replaying the scan arithmetic:
        // rewrite is never used on the chain log, so offsets are stable.
        let mut chain_index = BTreeMap::new();
        let mut offset = 0u64;
        let mut expected: Option<u64> = None;
        for payload in &chain_payloads {
            let (slot, hash) = decode_chain_header(payload)?;
            if let Some(want) = expected {
                if slot != want {
                    return Err(StoreError::Corrupt("chain log slots are not contiguous"));
                }
            }
            expected = Some(slot + 1);
            chain_index.insert(slot, ChainEntry { hash, offset });
            offset += frame_len(payload.len());
        }
        debug_assert_eq!(offset, chain.len_bytes());
        chain.sync()?;

        let (mempool, restored_mempool) = Wal::open(dir.join("mempool.log"), policy)?;

        let last_finalized = chain_index.keys().next_back().copied().unwrap_or(0);
        // Live state restored from disk never includes finalized slots.
        restored.retain(|slot, _| *slot > last_finalized);
        latest_votes.retain(|slot, _| *slot > last_finalized);

        Ok(NodeStore {
            dir,
            incarnation,
            votes,
            chain,
            mempool,
            latest_votes,
            vote_scratch: Writer::new(),
            restored,
            restored_mempool,
            chain_index,
            last_finalized,
        })
    }

    /// The restart counter: 1 on the first open of a directory, +1 on
    /// every subsequent open. Exchanged in the TCP handshake.
    #[inline]
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The store's root directory.
    #[inline]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    // ---- live-slot vote state -------------------------------------------

    /// Write-ahead record of `slot`'s current view and vote book. Called
    /// before the corresponding messages leave the process; compaction
    /// keeps the file bounded by `live slots + COMPACT_SLACK` records.
    pub fn record_votes(
        &mut self,
        slot: Slot,
        view: View,
        finalized: Slot,
        book: &VoteBook,
    ) -> Result<(), StoreError> {
        self.vote_scratch.clear();
        encode_votes_into(&mut self.vote_scratch, slot, view, finalized, book);
        let payload = self.vote_scratch.as_bytes();
        self.votes.append(payload)?;
        match self.latest_votes.entry(slot.0) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let buf = e.get_mut();
                buf.clear();
                buf.extend_from_slice(payload);
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(payload.to_vec());
            }
        }
        self.last_finalized = self.last_finalized.max(finalized.0);
        self.latest_votes.retain(|s, _| *s > finalized.0);
        if self.votes.records() > self.latest_votes.len() as u64 + COMPACT_SLACK {
            let live: Vec<&Vec<u8>> = self.latest_votes.values().collect();
            self.votes.rewrite(live)?;
        }
        Ok(())
    }

    /// The live-slot vote state restored at open (slots above the chain
    /// tip only), keyed by slot.
    pub fn restored_votes(&self) -> &BTreeMap<u64, SlotVotes> {
        &self.restored
    }

    /// Bytes currently occupied by the live-slot WAL — the paper's
    /// "constant persistent storage" claim, measurable: bounded by a
    /// constant however long the chain grows.
    pub fn live_bytes(&self) -> u64 {
        self.votes.len_bytes()
    }

    // ---- finalized chain -------------------------------------------------

    /// Appends a finalized block (`slot`, its `hash`, and its encoded
    /// bytes) to the chain log. Appends are strictly sequential:
    /// re-appending an already-stored slot is an idempotent no-op, a gap
    /// is an error (finalization is in slot order by construction).
    pub fn append_block(&mut self, slot: Slot, hash: u64, block: &[u8]) -> Result<(), StoreError> {
        let tip = self.chain_tip().map(|(s, _)| s.0);
        match tip {
            Some(t) if slot.0 <= t => return Ok(()),
            Some(t) if slot.0 != t + 1 => {
                return Err(StoreError::Corrupt("chain append out of order"))
            }
            _ => {}
        }
        let mut w = Writer::with_capacity(block.len() + 24);
        w.put_u8(CHAIN_VERSION);
        w.put_varint(slot.0);
        w.put_u64(hash);
        w.put_slice(block);
        let offset = self.chain.append(w.as_bytes())?;
        self.chain_index.insert(slot.0, ChainEntry { hash, offset });
        self.last_finalized = self.last_finalized.max(slot.0);
        Ok(())
    }

    /// Highest stored block, as `(slot, hash)`.
    pub fn chain_tip(&self) -> Option<(Slot, u64)> {
        self.chain_index.iter().next_back().map(|(s, e)| (Slot(*s), e.hash))
    }

    /// Number of blocks in the chain log.
    pub fn chain_len(&self) -> u64 {
        self.chain_index.len() as u64
    }

    /// Bytes occupied by the chain log (grows linearly with the chain).
    pub fn chain_bytes(&self) -> u64 {
        self.chain.len_bytes()
    }

    /// Hash of the stored block at `slot`, if any (index only, no I/O).
    pub fn chain_hash(&self, slot: Slot) -> Option<u64> {
        self.chain_index.get(&slot.0).map(|e| e.hash)
    }

    /// Reads back the block stored at `slot` from disk: `(hash, block
    /// bytes)`. This is what serves peer catch-up requests — the in-memory
    /// block store prunes old blocks, the chain log never does.
    pub fn block_record(&mut self, slot: Slot) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let Some(entry) = self.chain_index.get(&slot.0).copied() else { return Ok(None) };
        let payload = self.chain.read_at(entry.offset)?;
        let (got_slot, hash) = decode_chain_header(&payload)?;
        if got_slot != slot.0 || hash != entry.hash {
            return Err(StoreError::Corrupt("chain index does not match the stored record"));
        }
        let mut r = Reader::new(&payload);
        let _ = r.get_u8();
        let _ = r.get_varint_u64();
        let _ = r.get_u64();
        let body_start = payload.len() - r.remaining();
        Ok(Some((hash, payload[body_start..].to_vec())))
    }

    // ---- mempool snapshot ------------------------------------------------

    /// Atomically replaces the on-disk mempool snapshot. Bounded by the
    /// mempool's own admission capacity, so the file cannot grow without
    /// bound either.
    pub fn save_mempool<I, B>(&mut self, txs: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        self.mempool.rewrite(txs)
    }

    /// The mempool snapshot restored at open, in submission order.
    pub fn restored_mempool(&self) -> &[Vec<u8>] {
        &self.restored_mempool
    }

    /// Bytes occupied by the mempool snapshot.
    pub fn mempool_bytes(&self) -> u64 {
        self.mempool.len_bytes()
    }

    /// Forces every log to stable media (used on shutdown and by tests;
    /// appends already sync per the [`FsyncPolicy`]).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.votes.sync()?;
        self.chain.sync()?;
        self.mempool.sync()
    }
}

/// Length of a framed record holding a `payload_len`-byte payload.
fn frame_len(payload_len: usize) -> u64 {
    tetrabft_wire::varint_len(payload_len as u64) as u64 + payload_len as u64 + 4
}

fn bump_incarnation(dir: &Path) -> Result<u64, StoreError> {
    let path = dir.join("meta");
    let previous = match fs::read(&path) {
        Ok(bytes) => parse_meta(&bytes).unwrap_or(0),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e.into()),
    };
    let incarnation = previous + 1;
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(META_MAGIC);
    bytes.extend_from_slice(&incarnation.to_be_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_be_bytes());
    // Write-temp-then-rename: a crash mid-update leaves the old meta.
    let tmp = dir.join("meta.tmp");
    fs::write(&tmp, &bytes)?;
    let f = fs::File::open(&tmp)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp, &path)?;
    Ok(incarnation)
}

/// `None` (treated as a fresh store) when the meta file is torn/corrupt.
fn parse_meta(bytes: &[u8]) -> Option<u64> {
    if bytes.len() != 20 || &bytes[..8] != META_MAGIC {
        return None;
    }
    let crc = u32::from_be_bytes(bytes[16..20].try_into().ok()?);
    if crc != crc32(&bytes[..16]) {
        return None;
    }
    Some(u64::from_be_bytes(bytes[8..16].try_into().ok()?))
}

fn encode_votes_into(w: &mut Writer, slot: Slot, view: View, finalized: Slot, book: &VoteBook) {
    w.put_u8(VOTE_VERSION);
    w.put_varint(slot.0);
    w.put_varint(view.0);
    w.put_varint(finalized.0);
    for reg in book.registers() {
        match reg {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                w.put_varint(v.view.0);
                w.put_slice(v.value.as_bytes());
            }
        }
    }
}

/// Decodes a vote record into `(slot state, finalized-at-write)`.
fn decode_votes(payload: &[u8]) -> Result<(SlotVotes, Slot), StoreError> {
    let mut r = Reader::new(payload);
    if r.get_u8()? != VOTE_VERSION {
        return Err(StoreError::Corrupt("unknown vote record version"));
    }
    let slot = Slot(r.get_varint_u64()?);
    let view = View(r.get_varint_u64()?);
    let finalized = Slot(r.get_varint_u64()?);
    let mut regs: [Option<VoteInfo>; 6] = [None; 6];
    for reg in regs.iter_mut() {
        if r.get_u8()? == 1 {
            let v = View(r.get_varint_u64()?);
            let value = tetrabft_types::Value(r.get_array::<8>()?);
            *reg = Some(VoteInfo::new(v, value));
        }
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt("trailing bytes in vote record"));
    }
    Ok((SlotVotes { slot, view, book: VoteBook::from_registers(regs) }, finalized))
}

fn decode_chain_header(payload: &[u8]) -> Result<(u64, u64), StoreError> {
    let mut r = Reader::new(payload);
    if r.get_u8()? != CHAIN_VERSION {
        return Err(StoreError::Corrupt("unknown chain record version"));
    }
    let slot = r.get_varint_u64()?;
    let hash = r.get_u64()?;
    Ok((slot, hash))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_types::Phase;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tetrabft-store-{}", std::process::id())).join(tag);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn book(seed: u64) -> VoteBook {
        let mut b = VoteBook::new();
        b.record(Phase::VOTE1, View(seed), tetrabft_types::Value::from_u64(seed));
        b.record(Phase::VOTE1, View(seed + 1), tetrabft_types::Value::from_u64(seed + 9));
        b.record(Phase::VOTE2, View(seed), tetrabft_types::Value::from_u64(seed));
        b
    }

    #[test]
    fn incarnation_increments_per_open() {
        let dir = temp_dir("incarnation");
        for want in 1..=4u64 {
            let store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(store.incarnation(), want);
        }
        // A torn meta file resets to a fresh counter rather than failing.
        fs::write(dir.join("meta"), b"garbage").unwrap();
        assert_eq!(NodeStore::open(&dir, FsyncPolicy::Never).unwrap().incarnation(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn votes_survive_reopen_latest_record_wins() {
        let dir = temp_dir("votes");
        {
            let mut store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
            store.record_votes(Slot(3), View(0), Slot(0), &book(1)).unwrap();
            store.record_votes(Slot(3), View(2), Slot(0), &book(5)).unwrap();
            store.record_votes(Slot(4), View(0), Slot(0), &book(2)).unwrap();
        }
        let store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        let restored = store.restored_votes();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[&3].view, View(2));
        assert_eq!(restored[&3].book, book(5));
        assert_eq!(restored[&4].book, book(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vote_wal_stays_constant_size_under_unbounded_traffic() {
        let dir = temp_dir("constant");
        let mut store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut high_water = 0u64;
        // 8 live slots sliding forward forever, one record per vote: the
        // file must stay bounded by (live + COMPACT_SLACK) records of the
        // worst-case (all-varints-maximal) record size.
        let fat = 1u64 << 60;
        let mut w = Writer::new();
        encode_votes_into(&mut w, Slot(fat), View(fat), Slot(fat), &book(fat));
        let record_size = frame_len(w.len());
        let bound = (8 + COMPACT_SLACK + 1) * record_size;
        for finalized in 0..2_000u64 {
            for live in 1..=8 {
                let slot = Slot(finalized + live);
                store.record_votes(slot, View(0), Slot(finalized), &book(slot.0)).unwrap();
            }
            high_water = high_water.max(store.live_bytes());
        }
        assert!(
            high_water <= bound,
            "vote WAL must stay constant-bounded: high water {high_water} > bound {bound}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_appends_are_sequential_idempotent_and_indexed() {
        let dir = temp_dir("chain");
        let mut store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
        for s in 1..=50u64 {
            store.append_block(Slot(s), s * 7, format!("block-{s}").as_bytes()).unwrap();
        }
        // Idempotent re-append, rejected gap.
        store.append_block(Slot(10), 70, b"replay").unwrap();
        assert_eq!(store.chain_len(), 50);
        assert!(store.append_block(Slot(52), 1, b"gap").is_err());
        assert_eq!(store.chain_tip(), Some((Slot(50), 350)));
        // Disk reads reproduce every block byte-for-byte after reopen.
        drop(store);
        let mut store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.chain_tip(), Some((Slot(50), 350)));
        for s in 1..=50u64 {
            let (hash, bytes) = store.block_record(Slot(s)).unwrap().unwrap();
            assert_eq!(hash, s * 7);
            assert_eq!(bytes, format!("block-{s}").into_bytes());
        }
        assert_eq!(store.block_record(Slot(51)).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_log_grows_linearly_while_votes_stay_flat() {
        let dir = temp_dir("linear");
        let mut store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
        let mut chain_sizes = Vec::new();
        for s in 1..=400u64 {
            store.append_block(Slot(s), s, &[0u8; 64]).unwrap();
            store.record_votes(Slot(s + 1), View(0), Slot(s), &book(s)).unwrap();
            if s % 100 == 0 {
                chain_sizes.push(store.chain_bytes());
            }
        }
        let step = chain_sizes[1] - chain_sizes[0];
        assert!(step > 0);
        for pair in chain_sizes.windows(2) {
            // Per-100-block growth is flat up to varint-width drift (slot
            // numbers crossing a 7-bit boundary cost one extra byte each).
            let got = pair[1] - pair[0];
            assert!(
                got.abs_diff(step) <= 200,
                "chain log must grow linearly: step {got} vs {step}"
            );
        }
        assert!(store.live_bytes() < 8 * 1024, "live state is a few KiB, not chain-sized");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mempool_snapshot_roundtrips() {
        let dir = temp_dir("mempool");
        {
            let mut store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.save_mempool([b"tx-a".as_slice(), b"tx-b".as_slice()]).unwrap();
            store.save_mempool([b"tx-b".as_slice(), b"tx-c".as_slice()]).unwrap();
        }
        let store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.restored_mempool(), &[b"tx-b".to_vec(), b"tx-c".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finalized_slots_are_dropped_from_restored_votes() {
        let dir = temp_dir("finalized-drop");
        {
            let mut store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.record_votes(Slot(1), View(0), Slot(0), &book(1)).unwrap();
            store.record_votes(Slot(2), View(0), Slot(0), &book(2)).unwrap();
            store.append_block(Slot(1), 11, b"b1").unwrap();
        }
        let store = NodeStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(!store.restored_votes().contains_key(&1), "slot 1 finalized on disk");
        assert!(store.restored_votes().contains_key(&2));
        fs::remove_dir_all(&dir).unwrap();
    }
}
