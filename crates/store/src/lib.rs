//! **Durable state for TetraBFT nodes** — the persistence layer behind
//! the paper's *constant persistent storage* claim, made crash-real.
//!
//! The paper (Section 3.1) proves a node only ever needs six vote
//! registers per live slot to stay safe across views. This crate writes
//! exactly that — and nothing unbounded — to disk:
//!
//! * a **write-ahead vote log** ([`Wal`] under [`NodeStore`]): one
//!   CRC-framed record per vote-book change, compacted in place so the
//!   file is bounded by `live slots + `[`COMPACT_SLACK`]` records
//!   *forever*, however long the chain grows;
//! * an **append-only finalized-chain log**: slot, hash, and raw block
//!   bytes per finalized block — linear in the chain, never rewritten,
//!   indexed at open so restarted peers can be served catch-up ranges
//!   straight from disk;
//! * a **mempool snapshot**, so admitted transactions survive the crash
//!   of the node that admitted them;
//! * an **incarnation counter**, bumped per open and exchanged in the TCP
//!   handshake, letting peers drop frames buffered for a dead incarnation.
//!
//! Records reuse the canonical varint [`tetrabft_wire::Writer`]/
//! [`tetrabft_wire::Reader`] framed as `[len][payload][crc32]`: a crash
//! mid-write leaves a torn tail that is *detected and truncated* on the
//! next open — never mis-decoded as a shorter valid record (see
//! [`record::scan`]).
//!
//! The fsync cadence is the node's [`tetrabft_types::FsyncPolicy`]
//! (`Always` / `Batch(n)` / `Never`), carried in `tetrabft::Params`.
//!
//! # Examples
//!
//! ```
//! use tetrabft_store::NodeStore;
//! use tetrabft_types::{FsyncPolicy, Phase, Slot, Value, View, VoteBook};
//!
//! let dir = std::env::temp_dir().join(format!("tetrabft-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = NodeStore::open(&dir, FsyncPolicy::Always)?;
//! assert_eq!(store.incarnation(), 1);
//!
//! // Write-ahead the vote book for live slot 1, then finalize a block.
//! let mut book = VoteBook::new();
//! book.record(Phase::VOTE1, View(0), Value::from_u64(7));
//! store.record_votes(Slot(1), View(0), Slot(0), &book)?;
//! store.append_block(Slot(1), 7, b"block bytes")?;
//!
//! // A restart sees the same state, one incarnation later.
//! drop(store);
//! let mut store = NodeStore::open(&dir, FsyncPolicy::Always)?;
//! assert_eq!(store.incarnation(), 2);
//! assert_eq!(store.chain_tip(), Some((Slot(1), 7)));
//! assert_eq!(store.block_record(Slot(1))?, Some((7, b"block bytes".to_vec())));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), tetrabft_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod node_store;
pub mod record;
mod wal;

pub use crc::crc32;
pub use node_store::{NodeStore, SlotVotes, COMPACT_SLACK};
pub use wal::Wal;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes passed their CRC but do not decode as a record this
    /// version understands — a format bug, not a torn tail (torn tails
    /// are silently truncated, by design).
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "store corruption: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<tetrabft_wire::WireError> for StoreError {
    fn from(_: tetrabft_wire::WireError) -> Self {
        StoreError::Corrupt("record payload failed to decode")
    }
}
