//! Torn-write recovery coverage (crash mid-append): truncate and corrupt
//! the WAL tail at **every byte offset of the final record** and assert
//! recovery truncates back to the last valid record — never mis-decodes,
//! never refuses to open, and rejoins with exactly the surviving state.

use std::fs;
use std::path::PathBuf;

use tetrabft_store::NodeStore;
use tetrabft_types::{FsyncPolicy, Phase, Slot, Value, View, VoteBook};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tetrabft-torn-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn book(seed: u64) -> VoteBook {
    let mut b = VoteBook::new();
    b.record(Phase::VOTE1, View(seed), Value::from_u64(seed));
    b.record(Phase::VOTE2, View(seed), Value::from_u64(seed + 1));
    b
}

/// Builds a store with two vote records (slots 5 and 6) and two chain
/// blocks, returning its directory.
fn seeded_store(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let mut store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
    store.append_block(Slot(1), 11, b"block-one").unwrap();
    store.append_block(Slot(2), 22, b"block-two").unwrap();
    store.record_votes(Slot(5), View(1), Slot(2), &book(5)).unwrap();
    store.record_votes(Slot(6), View(0), Slot(2), &book(6)).unwrap();
    store.sync().unwrap();
    dir
}

/// Byte length of the final record of `file`, assuming `keep` bytes of
/// earlier records.
fn tail_len(file: &PathBuf, keep: u64) -> u64 {
    fs::metadata(file).unwrap().len() - keep
}

#[test]
fn vote_wal_truncated_at_every_offset_recovers_to_slot_five() {
    // Prefix = everything up to the slot-6 record; compute it by writing
    // the same store twice, once without the final record.
    let short = {
        let dir = temp_dir("vote-short");
        let mut s = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        s.append_block(Slot(1), 11, b"block-one").unwrap();
        s.append_block(Slot(2), 22, b"block-two").unwrap();
        s.record_votes(Slot(5), View(1), Slot(2), &book(5)).unwrap();
        let len = s.live_bytes();
        fs::remove_dir_all(&dir).unwrap();
        len
    };
    let dir = seeded_store("vote-trunc");
    let wal = dir.join("votes.wal");
    let full = fs::read(&wal).unwrap();
    let tail = tail_len(&wal, short);
    assert!(tail > 0);
    for cut in 0..tail {
        fs::write(&wal, &full[..(short + cut) as usize]).unwrap();
        let store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        let restored = store.restored_votes();
        assert!(restored.contains_key(&5), "cut at +{cut}: slot 5 must survive");
        assert_eq!(restored[&5].book, book(5), "cut at +{cut}");
        assert!(
            !restored.contains_key(&6),
            "cut at +{cut}: the torn slot-6 record must be dropped whole"
        );
        assert_eq!(
            fs::metadata(&wal).unwrap().len(),
            short,
            "cut at +{cut}: the file must be truncated to the valid prefix"
        );
    }
}

#[test]
fn vote_wal_corrupted_at_every_tail_offset_never_misdecodes() {
    let dir = seeded_store("vote-corrupt");
    let wal = dir.join("votes.wal");
    let full = fs::read(&wal).unwrap();
    let short = {
        // The clean prefix ends where the final record's frame begins.
        let (records, _) = tetrabft_store::record::scan(&full);
        assert_eq!(records.len(), 2);
        frame_len(records[0].len()) as u64
    };
    for i in short..full.len() as u64 {
        let mut bent = full.clone();
        bent[i as usize] ^= 0x5A;
        fs::write(&wal, &bent).unwrap();
        let store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        let restored = store.restored_votes();
        // The corrupt record must vanish; the clean prefix must survive
        // bit-for-bit. It must never decode as some third state.
        assert_eq!(restored.len(), 1, "flip at {i}");
        assert_eq!(restored[&5].book, book(5), "flip at {i}");
        assert_eq!(restored[&5].view, View(1), "flip at {i}");
    }
}

#[test]
fn chain_wal_truncated_at_every_tail_offset_recovers_the_prefix() {
    let dir = seeded_store("chain-trunc");
    let wal = dir.join("chain.wal");
    let full = fs::read(&wal).unwrap();
    let (records, _) = tetrabft_store::record::scan(&full);
    assert_eq!(records.len(), 2);
    let short = frame_len(records[0].len()) as u64;
    for cut in short..full.len() as u64 {
        fs::write(&wal, &full[..cut as usize]).unwrap();
        let mut store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(store.chain_tip(), Some((Slot(1), 11)), "cut at {cut}");
        let (hash, bytes) = store.block_record(Slot(1)).unwrap().unwrap();
        assert_eq!((hash, bytes.as_slice()), (11, b"block-one".as_slice()), "cut at {cut}");
        assert_eq!(store.block_record(Slot(2)).unwrap(), None, "cut at {cut}");
        // The torn store accepts a clean re-append of the lost block.
        store.append_block(Slot(2), 22, b"block-two").unwrap();
        assert_eq!(store.chain_tip(), Some((Slot(2), 22)), "cut at {cut}");
    }
}

#[test]
fn chain_wal_corrupted_mid_tail_is_cut_not_misread() {
    let dir = seeded_store("chain-corrupt");
    let wal = dir.join("chain.wal");
    let full = fs::read(&wal).unwrap();
    let (records, _) = tetrabft_store::record::scan(&full);
    let short = frame_len(records[0].len()) as u64;
    for i in short..full.len() as u64 {
        let mut bent = full.clone();
        bent[i as usize] = bent[i as usize].wrapping_add(1);
        fs::write(&wal, &bent).unwrap();
        let store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(store.chain_tip(), Some((Slot(1), 11)), "flip at {i}");
        assert_eq!(store.chain_len(), 1, "flip at {i}");
    }
}

#[test]
fn torn_meta_file_restarts_the_incarnation_counter_cleanly() {
    let dir = seeded_store("meta-torn");
    let meta = dir.join("meta");
    let full = fs::read(&meta).unwrap();
    for cut in 0..full.len() {
        fs::write(&meta, &full[..cut]).unwrap();
        let store = NodeStore::open(&dir, FsyncPolicy::Always).unwrap();
        // A torn meta cannot prove any previous incarnation; the counter
        // restarts at 1 rather than refusing to open. Chain state is
        // untouched by the meta file.
        assert_eq!(store.incarnation(), 1, "cut at {cut}");
        assert_eq!(store.chain_tip(), Some((Slot(2), 22)), "cut at {cut}");
    }
}

/// Mirrors the store's internal frame arithmetic: varint length prefix +
/// payload + 4-byte CRC.
fn frame_len(payload: usize) -> usize {
    tetrabft_wire::varint_len(payload as u64) + payload + 4
}
