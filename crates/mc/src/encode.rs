//! Bit-packed canonical state encoding.
//!
//! A [`State`] is heap-heavy (two `Vec`s plus 48-byte vote tables per
//! honest node); storing millions of clones in a `HashSet` is what capped
//! the v1 explorer at toy bounds. A [`PackedState`] is a fixed-width array
//! of `u64` words holding the same information in a few *bits* per vote
//! slot:
//!
//! * per honest node, `3 + rounds·4·b` bits, where `b = bitlen(values)`:
//!   the node's round as `round + 2` (so a valid encoding is never
//!   all-zero, freeing the zero word as the store's empty marker) followed
//!   by one `b`-bit code per `(round, phase)` slot (`0` = no vote,
//!   `v + 1` = voted value `v`);
//! * nodes are concatenated LSB-first into at most [`MAX_WORDS`] words.
//!
//! [`Codec::canonical`] additionally quotients by the model's two
//! symmetries: honest nodes are interchangeable (no leader in safety
//! mode), and values are interchangeable (no predicate orders them). The
//! canonical form is the minimum, over all value permutations, of the
//! node-sorted encoding — shrinking the explored space by up to
//! `honest! · values!`.

use crate::model::{ModelCfg, State, VoteTable, MAX_ROUNDS};

/// Fixed width of a [`PackedState`] in 64-bit words (512 bits).
pub const MAX_WORDS: usize = 8;

/// Maximum honest-node count the packed codec supports (stack-array bound).
pub const MAX_HONEST: usize = 16;

/// A fixed-width bit-packed state. Only the low [`Codec::words_used`]
/// words are meaningful; the rest are zero, so derived equality and
/// ordering are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedState {
    words: [u64; MAX_WORDS],
}

impl PackedState {
    /// The zeroed (invalid) packed state, used as a scratch buffer.
    pub fn zero() -> PackedState {
        PackedState { words: [0; MAX_WORDS] }
    }

    /// The raw words.
    pub fn words(&self) -> &[u64; MAX_WORDS] {
        &self.words
    }

    /// Rebuilds a packed state from its first `stride` raw words.
    pub fn from_words(words: &[u64]) -> PackedState {
        let mut out = PackedState::zero();
        out.words[..words.len()].copy_from_slice(words);
        out
    }
}

/// 64-bit fingerprint of the first `stride` words (SplitMix64 chaining).
pub fn fingerprint(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        let mut z = h ^ w;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

fn put_bits(words: &mut [u64; MAX_WORDS], mut offset: usize, mut value: u128, mut width: u32) {
    while width > 0 {
        let word = offset / 64;
        let shift = (offset % 64) as u32;
        let take = (64 - shift).min(width);
        let mask = if take == 64 { u128::MAX } else { (1u128 << take) - 1 };
        words[word] |= ((value & mask) as u64) << shift;
        value >>= take;
        offset += take as usize;
        width -= take;
    }
}

fn get_bits(words: &[u64; MAX_WORDS], mut offset: usize, mut width: u32) -> u128 {
    let mut out: u128 = 0;
    let mut got: u32 = 0;
    while width > 0 {
        let word = offset / 64;
        let shift = (offset % 64) as u32;
        let take = (64 - shift).min(width);
        let mask = if take == 64 { u64::MAX } else { (1u64 << take) - 1 };
        out |= u128::from((words[word] >> shift) & mask) << got;
        got += take;
        offset += take as usize;
        width -= take;
    }
    out
}

fn value_permutations(values: u8) -> Vec<Vec<u8>> {
    fn rec(prefix: &mut Vec<u8>, rest: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            prefix.push(v);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..values).collect(), &mut out);
    // Identity first, so `encode` can reuse perms[0].
    out.sort();
    out
}

/// Per-configuration bit-packing codec (see the module docs for the
/// layout). Construction checks the bounds fit the fixed width.
#[derive(Debug, Clone)]
pub struct Codec {
    cfg: ModelCfg,
    /// Bits per `(round, phase)` vote slot.
    bits: u32,
    /// Bits per honest node (`3 + rounds·4·bits`).
    node_bits: u32,
    /// Words actually used by this configuration.
    words: usize,
    /// Value permutations quotient (identity first).
    perms: Vec<Vec<u8>>,
}

impl Codec {
    /// Builds a codec for `cfg`.
    ///
    /// With `value_symmetry`, states are canonicalized modulo value
    /// relabeling as well as honest-node permutation (applied when
    /// `values ≤ 5`; beyond that the `values!` scan would cost more than
    /// it saves, so it silently degrades to node symmetry only).
    ///
    /// # Panics
    ///
    /// If the bounds don't fit the packed representation: `values` must be
    /// `1..=7` (3 bits per slot), `rounds ≤ MAX_ROUNDS`, and there must be
    /// `1..=MAX_HONEST` honest nodes fitting [`MAX_WORDS`] words.
    pub fn new(cfg: &ModelCfg, value_symmetry: bool) -> Codec {
        assert!((1..=7).contains(&cfg.values), "packed codec supports 1..=7 values");
        assert!(
            cfg.rounds as usize <= MAX_ROUNDS,
            "packed codec supports at most {MAX_ROUNDS} rounds"
        );
        let honest = cfg.honest();
        assert!(
            (1..=MAX_HONEST).contains(&honest),
            "packed codec supports 1..={MAX_HONEST} honest nodes"
        );
        let bits = u8::BITS - cfg.values.leading_zeros();
        let node_bits = 3 + cfg.rounds as u32 * 4 * bits;
        let total_bits = honest as u32 * node_bits;
        assert!(
            total_bits as usize <= MAX_WORDS * 64,
            "state needs {total_bits} bits, packed width is {}",
            MAX_WORDS * 64
        );
        let perms = if value_symmetry && cfg.values <= 5 {
            value_permutations(cfg.values)
        } else {
            vec![(0..cfg.values).collect()]
        };
        Codec { cfg: *cfg, bits, node_bits, words: total_bits.div_ceil(64) as usize, perms }
    }

    /// The model bounds this codec packs.
    pub fn cfg(&self) -> &ModelCfg {
        &self.cfg
    }

    /// Words of a [`PackedState`] actually used (the store's entry stride).
    pub fn words_used(&self) -> usize {
        self.words
    }

    /// The value permutations the canonical form quotients by.
    pub(crate) fn perms(&self) -> &[Vec<u8>] {
        &self.perms
    }

    /// Packs one node's `(round, votes)` into its `node_bits`-bit value,
    /// relabeling vote values through `perm`.
    pub(crate) fn node_value(&self, table: &VoteTable, round: i8, perm: &[u8]) -> u128 {
        let mut v: u128 = (round + 2) as u128;
        for vote in table.iter() {
            let slot = vote.round as u32 * 4 + (vote.phase as u32 - 1);
            v |= u128::from(perm[vote.value as usize] + 1) << (3 + slot * self.bits);
        }
        v
    }

    /// The round stored in a packed node value.
    pub(crate) fn node_round(&self, node: u128) -> i8 {
        (node & 0b111) as i8 - 2
    }

    /// Returns `node` with its round field replaced.
    pub(crate) fn node_with_round(&self, node: u128, round: i8) -> u128 {
        (node & !0b111) | (round + 2) as u128
    }

    /// Returns `node` with vote slot `(round, phase)` set to the
    /// (already permuted) value `enc` — the slot must be empty.
    pub(crate) fn node_with_vote(&self, node: u128, round: u8, phase: u8, enc: u8) -> u128 {
        let slot = round as u32 * 4 + (phase as u32 - 1);
        node | u128::from(enc + 1) << (3 + slot * self.bits)
    }

    /// Concatenates per-node packed values (in the given order) into a
    /// [`PackedState`].
    pub(crate) fn pack_nodes(&self, nodes: &[u128]) -> PackedState {
        let mut out = PackedState::zero();
        for (i, &n) in nodes.iter().enumerate() {
            put_bits(&mut out.words, i * self.node_bits as usize, n, self.node_bits);
        }
        out
    }

    /// Encodes a state verbatim (no symmetry reduction): node order and
    /// value labels are preserved, so [`Codec::decode`] roundtrips exactly.
    pub fn encode(&self, state: &State) -> PackedState {
        let identity = &self.perms[0];
        let mut nodes = [0u128; MAX_HONEST];
        for (i, (table, &round)) in state.votes.iter().zip(&state.round).enumerate() {
            nodes[i] = self.node_value(table, round, identity);
        }
        self.pack_nodes(&nodes[..state.votes.len()])
    }

    /// Decodes a packed state back into a [`State`].
    pub fn decode(&self, packed: &PackedState) -> State {
        let honest = self.cfg.honest();
        let mut state =
            State { votes: vec![VoteTable::default(); honest], round: vec![-1; honest] };
        for i in 0..honest {
            let node = get_bits(packed.words(), i * self.node_bits as usize, self.node_bits);
            state.round[i] = self.node_round(node);
            for r in 0..self.cfg.rounds {
                for phase in 1..=4u8 {
                    let slot = r as u32 * 4 + (phase as u32 - 1);
                    let code = (node >> (3 + slot * self.bits)) as u64 & ((1u64 << self.bits) - 1);
                    if code != 0 {
                        state.votes[i].set(r, phase, code as u8 - 1);
                    }
                }
            }
        }
        state
    }

    /// The canonical packed form: minimum, over all value permutations in
    /// the quotient, of the node-sorted encoding. Idempotent (canonical of
    /// a decoded canonical form is itself) and invariant under honest-node
    /// and value permutations of the input.
    pub fn canonical(&self, state: &State) -> PackedState {
        let mut best: Option<PackedState> = None;
        let mut nodes = [0u128; MAX_HONEST];
        let honest = state.votes.len();
        for perm in &self.perms {
            for (i, (table, &round)) in state.votes.iter().zip(&state.round).enumerate() {
                nodes[i] = self.node_value(table, round, perm);
            }
            nodes[..honest].sort_unstable();
            let candidate = self.pack_nodes(&nodes[..honest]);
            if best.is_none_or(|b| candidate < b) {
                best = Some(candidate);
            }
        }
        best.expect("at least the identity permutation")
    }

    /// Fingerprint of a packed state over the words this codec uses.
    pub fn fingerprint(&self, packed: &PackedState) -> u64 {
        fingerprint(&packed.words()[..self.words])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelCfg {
        ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 5 }
    }

    fn sample_state() -> State {
        let c = cfg();
        let mut s = State::initial(&c);
        s.round = vec![2, 0, -1];
        s.votes[0].set(0, 1, 2);
        s.votes[0].set(1, 4, 0);
        s.votes[1].set(0, 1, 2);
        s.votes[1].set(0, 2, 1);
        s
    }

    #[test]
    fn roundtrip_preserves_state_exactly() {
        let codec = Codec::new(&cfg(), true);
        let s = sample_state();
        assert_eq!(codec.decode(&codec.encode(&s)), s);
        let initial = State::initial(&cfg());
        assert_eq!(codec.decode(&codec.encode(&initial)), initial);
    }

    #[test]
    fn valid_encodings_are_never_all_zero() {
        let codec = Codec::new(&cfg(), true);
        let initial = State::initial(&cfg());
        assert_ne!(codec.encode(&initial).words()[0], 0, "round -1 encodes as 1");
        assert_ne!(codec.canonical(&initial).words()[0], 0);
    }

    #[test]
    fn canonical_is_invariant_under_node_swap() {
        let codec = Codec::new(&cfg(), true);
        let s = sample_state();
        let mut swapped = s.clone();
        swapped.votes.swap(0, 1);
        swapped.round.swap(0, 1);
        assert_eq!(codec.canonical(&s), codec.canonical(&swapped));
        assert_ne!(codec.encode(&s), codec.encode(&swapped), "encode is order-sensitive");
    }

    #[test]
    fn canonical_is_invariant_under_value_relabel() {
        let codec = Codec::new(&cfg(), true);
        let s = sample_state();
        // Swap values 1 and 2 everywhere.
        let mut relabeled = State::initial(&cfg());
        relabeled.round = s.round.clone();
        for (p, table) in s.votes.iter().enumerate() {
            for vote in table.iter() {
                let v = match vote.value {
                    1 => 2,
                    2 => 1,
                    v => v,
                };
                relabeled.votes[p].set(vote.round, vote.phase, v);
            }
        }
        assert_eq!(codec.canonical(&s), codec.canonical(&relabeled));
        // Without value symmetry the two differ.
        let plain = Codec::new(&cfg(), false);
        assert_ne!(plain.canonical(&s), plain.canonical(&relabeled));
    }

    #[test]
    fn canonical_is_idempotent() {
        let codec = Codec::new(&cfg(), true);
        let s = sample_state();
        let c = codec.canonical(&s);
        assert_eq!(codec.canonical(&codec.decode(&c)), c);
    }

    #[test]
    fn words_used_scales_with_bounds() {
        let small = Codec::new(&ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 }, true);
        assert_eq!(small.words_used(), 1, "3 honest × 19 bits fits one word");
        let paper = Codec::new(&ModelCfg::paper(), true);
        assert_eq!(paper.words_used(), 3, "3 honest × 43 bits needs three words");
    }

    #[test]
    fn incremental_node_edits_match_repack() {
        let codec = Codec::new(&cfg(), true);
        let s = sample_state();
        let identity: Vec<u8> = (0..cfg().values).collect();
        let node = codec.node_value(&s.votes[0], s.round[0], &identity);
        assert_eq!(codec.node_round(node), 2);
        // Set a vote through the incremental API and via a fresh pack.
        let mut edited = s.clone();
        edited.votes[0].set(2, 1, 1);
        let expect = codec.node_value(&edited.votes[0], edited.round[0], &identity);
        assert_eq!(codec.node_with_vote(node, 2, 1, 1), expect);
        // Bump the round both ways.
        let mut bumped = s.clone();
        bumped.round[0] = 4;
        let expect = codec.node_value(&bumped.votes[0], bumped.round[0], &identity);
        assert_eq!(codec.node_with_round(node, 4), expect);
    }
}
