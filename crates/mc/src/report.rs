//! Exploration outcome types shared by the packed [`crate::Explorer`] and
//! the legacy [`crate::LegacyExplorer`] baseline.

use std::fmt;

use crate::model::{ModelAction, ModelCfg, State};

/// Outcome of an exploration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited (modulo the engine's symmetry reduction).
    pub states: usize,
    /// Transitions taken (every enabled action of every visited state).
    pub transitions: usize,
    /// Maximum BFS depth reached.
    pub depth: usize,
    /// `true` if the reachable state space was exhausted within the budget:
    /// the frontier drained *and* no discovery was dropped. A space whose
    /// size exactly equals the budget is exhausted.
    pub exhausted: bool,
    /// `true` if the state budget cut the exploration short (some discovered
    /// states were never stored or expanded). Always `!exhausted`.
    pub truncated: bool,
    /// Discovery events dropped at the state budget: how many times a
    /// not-yet-seen successor could not be stored. One unlucky state
    /// rediscovered via several paths counts once per discovery.
    pub dropped: usize,
    /// Number of states violating the agreement property.
    pub violations: usize,
    /// Number of states violating the paper's `ConsistencyInvariant`
    /// (checked when `check_inductive` is set on the explorer).
    pub invariant_violations: usize,
    /// A shortest counterexample trace to the first agreement violation,
    /// when tracing was enabled and a violation was found.
    pub counterexample: Option<Trace>,
}

impl Report {
    pub(crate) fn empty() -> Report {
        Report {
            states: 0,
            transitions: 0,
            depth: 0,
            exhausted: false,
            truncated: false,
            dropped: 0,
            violations: 0,
            invariant_violations: 0,
            counterexample: None,
        }
    }
}

/// One step of a counterexample trace: the action taken and the canonical
/// state it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The transition taken (node indices refer to the *preceding* state's
    /// canonical node order).
    pub action: ModelAction,
    /// The canonical state after the action.
    pub state: State,
}

/// A counterexample trace: a shortest action sequence from the initial
/// state to a state where two different values are decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Model bounds the trace was found under.
    pub cfg: ModelCfg,
    /// The (canonical) initial state of the exploration.
    pub initial: State,
    /// The actions taken and the states they lead to, in order.
    pub steps: Vec<TraceStep>,
    /// The values decided in the final state (two or more).
    pub decided: Vec<u8>,
}

impl Trace {
    /// The final state of the trace (the violating state).
    pub fn last_state(&self) -> &State {
        self.steps.last().map_or(&self.initial, |s| &s.state)
    }
}

fn write_state(f: &mut fmt::Formatter<'_>, state: &State) -> fmt::Result {
    for (p, (table, round)) in state.votes.iter().zip(&state.round).enumerate() {
        write!(f, "    node {p} (round {round:>2}):")?;
        let mut any = false;
        for vote in table.iter() {
            write!(f, " r{}p{}={}", vote.round, vote.phase, vote.value)?;
            any = true;
        }
        if !any {
            write!(f, " (no votes)")?;
        }
        writeln!(f)?;
    }
    Ok(())
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample trace ({} steps, {} nodes / {} byzantine / {} values / {} rounds):",
            self.steps.len(),
            self.cfg.nodes,
            self.cfg.byzantine,
            self.cfg.values,
            self.cfg.rounds
        )?;
        writeln!(f, "  initial:")?;
        write_state(f, &self.initial)?;
        for (i, step) in self.steps.iter().enumerate() {
            match step.action {
                ModelAction::StartRound { node, round } => {
                    writeln!(f, "  step {:>3}: StartRound(node {node}, round {round})", i + 1)?
                }
                ModelAction::Vote { node, phase, round, value } => writeln!(
                    f,
                    "  step {:>3}: Vote{phase}(node {node}, round {round}, value {value})",
                    i + 1
                )?,
            }
            write_state(f, &step.state)?;
        }
        write!(f, "  decided values: {:?} — agreement violated", self.decided)
    }
}
