//! Counterexample reconstruction.
//!
//! When tracing is enabled, the [`Store`] records for every inserted state
//! the packed parent it was first discovered from and the action taken
//! (see `store.rs`). Because the explorer is a level-synchronized BFS,
//! every recorded parent lies exactly one BFS level above its child, so
//! walking the chain from a violating state back to the root yields a
//! *shortest* action sequence to the violation, which this module decodes
//! into a human-readable [`Trace`].

use crate::encode::{Codec, PackedState};
use crate::model::ModelCfg;
use crate::report::{Trace, TraceStep};
use crate::store::Store;

/// Rebuilds the action path from the exploration root to `violating` and
/// pretty-decodes every state along it.
pub(crate) fn reconstruct(
    cfg: &ModelCfg,
    codec: &Codec,
    store: &Store,
    violating: PackedState,
) -> Trace {
    let mut chain = vec![violating];
    let mut actions = Vec::new();
    let mut cursor = violating;
    while let Some((parent, action)) = store.parent(&cursor, codec.fingerprint(&cursor)) {
        actions.push(action);
        chain.push(parent);
        cursor = parent;
    }
    chain.reverse();
    actions.reverse();

    let initial = codec.decode(&chain[0]);
    let steps: Vec<TraceStep> = actions
        .into_iter()
        .zip(chain[1..].iter())
        .map(|(action, packed)| TraceStep { action, state: codec.decode(packed) })
        .collect();
    let decided = steps.last().map_or(&initial, |s| &s.state).decided(cfg);
    Trace { cfg: *cfg, initial, steps, decided }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelAction, State};

    #[test]
    fn reconstructs_a_hand_built_chain_in_order() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
        let codec = Codec::new(&cfg, false);
        let store = Store::new(codec.words_used(), 1, usize::MAX, true);

        // root --StartRound--> mid --Vote1--> leaf, inserted as the
        // explorer would insert them.
        let root = State::initial(&cfg);
        let a1 = ModelAction::StartRound { node: 0, round: 0 };
        let mid = root.apply(a1);
        let a2 = ModelAction::Vote { node: 0, phase: 1, round: 0, value: 1 };
        let leaf = mid.apply(a2);

        let (p_root, p_mid, p_leaf) =
            (codec.encode(&root), codec.encode(&mid), codec.encode(&leaf));
        store.try_insert(&p_root, codec.fingerprint(&p_root), None);
        store.try_insert(&p_mid, codec.fingerprint(&p_mid), Some((&p_root, a1)));
        store.try_insert(&p_leaf, codec.fingerprint(&p_leaf), Some((&p_mid, a2)));

        let trace = reconstruct(&cfg, &codec, &store, p_leaf);
        assert_eq!(trace.initial, root);
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].action, a1);
        assert_eq!(trace.steps[0].state, mid);
        assert_eq!(trace.steps[1].action, a2);
        assert_eq!(trace.steps[1].state, leaf);
        assert_eq!(trace.last_state(), &leaf);
        // The Display impl renders without panicking and mentions the verdict.
        let rendered = format!("{trace}");
        assert!(rendered.contains("StartRound"), "{rendered}");
        assert!(rendered.contains("Vote1"), "{rendered}");
    }
}
