//! Disk-backed BFS frontier.
//!
//! A [`SpillQueue`] is a FIFO of packed states with a bounded in-RAM
//! footprint: states are held in a flat in-memory deque until it reaches
//! the configured capacity, after which new pushes accumulate in a tail
//! buffer that is flushed to numbered temp-file *segments*. Pops stream
//! the segments back in order, so the queue stays strictly FIFO while its
//! length is bounded by disk, not RAM:
//!
//! ```text
//! pop ← [head buffer] ← [segment files, oldest first] ← [tail buffer] ← push
//! ```
//!
//! Segment files live in a per-queue directory under the system temp dir
//! (or an explicit override) and are deleted as they are consumed and on
//! drop.

use std::collections::VecDeque;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes queue directories across explorers in one process.
static QUEUE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A FIFO of fixed-stride `u64` records that spills to temp files once its
/// in-RAM buffers are full.
#[derive(Debug)]
pub struct SpillQueue {
    stride: usize,
    /// Max states held in each of the head and tail buffers.
    mem_states: usize,
    head: VecDeque<u64>,
    tail: Vec<u64>,
    segments: VecDeque<PathBuf>,
    dir: PathBuf,
    dir_created: bool,
    seq: u64,
    len: usize,
    spilled: u64,
}

impl SpillQueue {
    /// Creates a queue of `stride`-word records keeping at most
    /// `mem_states` records per in-RAM buffer; overflow spills beneath
    /// `dir` (the system temp dir when `None`).
    pub fn new(stride: usize, mem_states: usize, dir: Option<PathBuf>) -> SpillQueue {
        let unique = format!(
            "tetrabft-mc-{}-{}",
            std::process::id(),
            QUEUE_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        SpillQueue {
            stride,
            mem_states: mem_states.max(1),
            head: VecDeque::new(),
            tail: Vec::new(),
            segments: VecDeque::new(),
            dir: dir.unwrap_or_else(std::env::temp_dir).join(unique),
            dir_created: false,
            seq: 0,
            len: 0,
            spilled: 0,
        }
    }

    /// Records queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total records ever written to disk (spill volume statistic).
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Appends one record (`words.len()` must equal the stride).
    pub fn push(&mut self, words: &[u64]) {
        debug_assert_eq!(words.len(), self.stride);
        // Fast path: nothing has spilled and the head has room — keep the
        // record in RAM. Once anything is queued behind the head (segments
        // or tail), FIFO order forces new records to the back.
        // Saturate: `mem_states` may be usize::MAX ("never spill").
        let cap_words = self.mem_states.saturating_mul(self.stride);
        if self.segments.is_empty() && self.tail.is_empty() && self.head.len() < cap_words {
            self.head.extend(words.iter().copied());
        } else {
            self.tail.extend_from_slice(words);
            if self.tail.len() >= cap_words {
                self.flush_tail();
            }
        }
        self.len += 1;
    }

    /// Pops the oldest record into `out` (stride words); `false` if empty.
    pub fn pop(&mut self, out: &mut [u64]) -> bool {
        debug_assert_eq!(out.len(), self.stride);
        if self.head.is_empty() && !self.refill() {
            return false;
        }
        for w in out.iter_mut() {
            *w = self.head.pop_front().expect("refilled head");
        }
        self.len -= 1;
        true
    }

    fn flush_tail(&mut self) {
        if !self.dir_created {
            fs::create_dir_all(&self.dir).expect("create spill dir");
            self.dir_created = true;
        }
        let path = self.dir.join(format!("seg-{:08}", self.seq));
        self.seq += 1;
        let mut bytes = Vec::with_capacity(self.tail.len() * 8);
        for w in &self.tail {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        fs::write(&path, bytes).expect("write spill segment");
        self.spilled += (self.tail.len() / self.stride) as u64;
        self.tail.clear();
        self.segments.push_back(path);
    }

    /// Refills the head from the oldest segment, or from the tail buffer.
    fn refill(&mut self) -> bool {
        if let Some(path) = self.segments.pop_front() {
            let bytes = fs::read(&path).expect("read spill segment");
            let _ = fs::remove_file(&path);
            self.head
                .extend(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
            return true;
        }
        if !self.tail.is_empty() {
            self.head.extend(self.tail.drain(..));
            return true;
        }
        false
    }
}

impl Drop for SpillQueue {
    fn drop(&mut self) {
        for path in self.segments.drain(..) {
            let _ = fs::remove_file(path);
        }
        if self.dir_created {
            let _ = fs::remove_dir(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_without_spill() {
        let mut q = SpillQueue::new(2, 100, None);
        for i in 0..50u64 {
            q.push(&[i + 1, i * 2]);
        }
        assert_eq!(q.len(), 50);
        assert_eq!(q.spilled(), 0);
        let mut out = [0u64; 2];
        for i in 0..50u64 {
            assert!(q.pop(&mut out));
            assert_eq!(out, [i + 1, i * 2]);
        }
        assert!(!q.pop(&mut out));
    }

    #[test]
    fn fifo_across_disk_segments() {
        // Tiny RAM cap: 4 records per buffer forces many segments.
        let mut q = SpillQueue::new(3, 4, None);
        let n = 1000u64;
        for i in 0..n {
            q.push(&[i + 1, i, i * 3]);
        }
        assert!(q.spilled() > 900, "most records must have hit disk");
        let dir = q.dir.clone();
        assert!(dir.exists(), "spill dir created");
        let mut out = [0u64; 3];
        for i in 0..n {
            assert!(q.pop(&mut out), "record {i} present");
            assert_eq!(out, [i + 1, i, i * 3], "FIFO order across segments");
        }
        assert!(!q.pop(&mut out));
        assert!(q.is_empty());
        drop(q);
        assert!(!dir.exists(), "spill dir removed on drop");
    }

    #[test]
    fn interleaved_push_pop_stays_fifo() {
        let mut q = SpillQueue::new(1, 8, None);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        let mut out = [0u64; 1];
        for round in 0..200u64 {
            for _ in 0..(round % 7) + 1 {
                q.push(&[next_push + 1]);
                next_push += 1;
            }
            for _ in 0..(round % 5) + 1 {
                if q.pop(&mut out) {
                    assert_eq!(out[0], next_pop + 1);
                    next_pop += 1;
                }
            }
        }
        while q.pop(&mut out) {
            assert_eq!(out[0], next_pop + 1);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    }

    #[test]
    fn unbounded_mem_cap_never_overflows_or_spills() {
        // Regression: `mem_states * stride` overflowed (debug panic) for
        // the natural "never spill" setting with multi-word strides.
        let mut q = SpillQueue::new(3, usize::MAX, None);
        for i in 0..100u64 {
            q.push(&[i + 1, i, i]);
        }
        assert_eq!(q.spilled(), 0);
        let mut out = [0u64; 3];
        for i in 0..100u64 {
            assert!(q.pop(&mut out));
            assert_eq!(out[0], i + 1);
        }
    }

    #[test]
    fn drop_cleans_unconsumed_segments() {
        let mut q = SpillQueue::new(1, 2, None);
        for i in 0..100 {
            q.push(&[i + 1]);
        }
        let dir = q.dir.clone();
        assert!(dir.exists());
        drop(q);
        assert!(!dir.exists());
    }
}
