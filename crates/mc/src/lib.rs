//! Bounded model checking of the abstract TetraBFT model — the Rust
//! counterpart of the paper's Section 5 / Appendix B formal verification.
//!
//! The paper formalizes single-shot TetraBFT in TLA+ and uses the Apalache
//! symbolic checker to prove the `Consistency` (agreement) property for
//! 4 nodes / 1 Byzantine / 3 values / 5 views, via an inductive invariant
//! (explicit exploration with TLC was infeasible). This crate reproduces
//! that result with two complementary techniques:
//!
//! 1. **Explicit-state BFS** ([`Explorer`]) over the same abstract model at
//!    explicitly-tractable bounds (e.g. 2 values × 3 rounds), checking
//!    `Consistency` in *every* reachable state. The Byzantine node is
//!    modelled *angelically*: every quorum/blocking-set predicate lets the
//!    adversary contribute whatever vote assignment helps it — a sound
//!    over-approximation of all message behaviour visible to well-behaved
//!    nodes in an unauthenticated system (and strictly stronger than
//!    enumerating adversary states).
//! 2. **Inductive-invariant sampling** ([`invariants`]): the paper's
//!    `ConsistencyInvariant` is implemented verbatim; property tests
//!    generate random states, filter to those satisfying the invariant, and
//!    check that every enabled action preserves it — the exact proof
//!    obligation Apalache discharges symbolically, sampled at the paper's
//!    full bounds (3 values, 5 rounds).
//!
//! # Examples
//!
//! ```
//! use tetrabft_mc::{Explorer, ModelCfg};
//!
//! let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 };
//! let report = Explorer::new(cfg).run(1_000_000);
//! assert!(report.exhausted, "state space fully explored");
//! assert_eq!(report.violations, 0, "agreement holds in every state");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
pub mod invariants;
mod model;

pub use bfs::{Explorer, Report};
pub use model::{ModelAction, ModelCfg, State, Vote, MAX_ROUNDS};
