//! Bounded model checking of the abstract TetraBFT model — the Rust
//! counterpart of the paper's Section 5 / Appendix B formal verification.
//!
//! The paper formalizes single-shot TetraBFT in TLA+ and uses the Apalache
//! symbolic checker to prove the `Consistency` (agreement) property for
//! 4 nodes / 1 Byzantine / 3 values / 5 views, via an inductive invariant
//! (explicit exploration with TLC was infeasible). This crate reproduces
//! that result with two complementary techniques:
//!
//! 1. **Explicit-state BFS** ([`Explorer`]) over the same abstract model,
//!    checking `Consistency` in *every* reachable state. The Byzantine node
//!    is modelled *angelically*: every quorum/blocking-set predicate lets
//!    the adversary contribute whatever vote assignment helps it — a sound
//!    over-approximation of all message behaviour visible to well-behaved
//!    nodes in an unauthenticated system (and strictly stronger than
//!    enumerating adversary states). The explorer is built to scale:
//!    states are bit-packed fingerprints ([`encode`]) canonicalized under
//!    honest-node *and* value symmetry, the seen-set is a sharded
//!    collision-checked open-addressing table, the frontier spills to disk
//!    instead of exhausting RAM, expansion parallelizes across threads
//!    ([`Explorer::threads`]), and violations reconstruct a shortest
//!    counterexample trace ([`Explorer::trace`]). The original clone-based
//!    engine survives as [`LegacyExplorer`] for comparison —
//!    `benches/mc_scale.rs` in `tetrabft-bench` measures the difference.
//! 2. **Inductive-invariant sampling** ([`invariants`]): the paper's
//!    `ConsistencyInvariant` is implemented verbatim; property tests
//!    generate random states, filter to those satisfying the invariant, and
//!    check that every enabled action preserves it — the exact proof
//!    obligation Apalache discharges symbolically, sampled at the paper's
//!    full bounds (3 values, 5 rounds).
//!
//! # Examples
//!
//! ```
//! use tetrabft_mc::{Explorer, ModelCfg};
//!
//! let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 };
//! let report = Explorer::new(cfg).run(1_000_000);
//! assert!(report.exhausted, "state space fully explored");
//! assert_eq!(report.violations, 0, "agreement holds in every state");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
pub mod encode;
mod frontier;
pub mod invariants;
mod model;
mod parallel;
mod report;
mod store;
mod trace;

pub use bfs::LegacyExplorer;
pub use encode::{Codec, PackedState};
pub use frontier::SpillQueue;
pub use model::{ModelAction, ModelCfg, State, Vote, MAX_ROUNDS};
pub use parallel::{ExploreStats, Explorer};
pub use report::{Report, Trace, TraceStep};
pub use store::{Outcome, Store};
