//! The abstract TetraBFT model: a faithful port of the TLA+ specification
//! in Appendix B of the paper, with the Byzantine node handled angelically
//! (see the crate docs).
//!
//! There is no network at this level: a vote is globally visible the moment
//! it is cast, and quorum predicates quantify directly over node state —
//! exactly the abstraction level of the TLA+ spec.

/// Hard cap on rounds, fixing the state representation size.
pub const MAX_ROUNDS: usize = 6;

/// Model bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCfg {
    /// Total nodes `n` (honest nodes are `n − byzantine`).
    pub nodes: usize,
    /// Byzantine nodes `f` (all angelic).
    pub byzantine: usize,
    /// Number of distinct values.
    pub values: u8,
    /// Number of rounds (views) explored.
    pub rounds: u8,
}

impl ModelCfg {
    /// The paper's verification instance: 4 nodes, 1 Byzantine, 3 values,
    /// 5 views.
    pub fn paper() -> Self {
        ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 5 }
    }

    /// Honest node count.
    pub fn honest(&self) -> usize {
        self.nodes - self.byzantine
    }

    /// Minimum number of *honest* nodes needed alongside the `f` angelic
    /// Byzantine members to form a quorum of `n − f`.
    pub fn honest_quorum(&self) -> usize {
        self.nodes - 2 * self.byzantine
    }

    /// Minimum number of *honest* claimants needed alongside the `f`
    /// Byzantine members to form a blocking set of `f + 1`.
    pub fn honest_blocking(&self) -> usize {
        1
    }
}

/// A vote in the abstract model: `(round, phase 1..=4, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vote {
    /// Round the vote was cast in.
    pub round: u8,
    /// Phase 1–4.
    pub phase: u8,
    /// Value index.
    pub value: u8,
}

/// Per-honest-node vote table: at most one vote per (round, phase) — the
/// `OneValuePerPhasePerRound` invariant is structural here, as it is for
/// the well-behaved processes of the TLA+ spec.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VoteTable {
    slots: [[Option<u8>; 4]; MAX_ROUNDS],
}

impl VoteTable {
    /// The value voted in `(round, phase)`, if any.
    pub fn get(&self, round: u8, phase: u8) -> Option<u8> {
        self.slots[round as usize][phase as usize - 1]
    }

    /// Records a vote; replaces silently (callers guard).
    pub fn set(&mut self, round: u8, phase: u8, value: u8) {
        self.slots[round as usize][phase as usize - 1] = Some(value);
    }

    /// Iterates all votes in the table.
    pub fn iter(&self) -> impl Iterator<Item = Vote> + '_ {
        self.slots.iter().enumerate().flat_map(|(r, phases)| {
            phases.iter().enumerate().filter_map(move |(p, v)| {
                v.map(|value| Vote { round: r as u8, phase: p as u8 + 1, value })
            })
        })
    }
}

/// A global state of the abstract model (honest nodes only; the Byzantine
/// nodes have no state — they are resolved angelically inside predicates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Honest nodes' votes.
    pub votes: Vec<VoteTable>,
    /// Honest nodes' current round; `-1` before the first `StartRound`.
    pub round: Vec<i8>,
}

impl State {
    /// The initial state.
    pub fn initial(cfg: &ModelCfg) -> Self {
        State { votes: vec![VoteTable::default(); cfg.honest()], round: vec![-1; cfg.honest()] }
    }

    /// A forged state built from concrete honest-node votes — the audit
    /// entry the adversary fuzzer uses to replay a sim finding inside the
    /// model checker (`Explorer::with_initial`). Each tuple is
    /// `(honest node index, round, phase 1..=4, value index)`; votes
    /// outside the model's bounds (`node ≥ cfg.honest()`,
    /// `round ≥ cfg.rounds`, `value ≥ cfg.values`, phase outside 1..=4)
    /// are skipped rather than panicking, since fuzzed runs reach views
    /// and values the bounded model does not carry. Within one table, the
    /// *first* vote per `(round, phase)` wins, preserving the structural
    /// one-vote-per-register invariant. Each node's round pointer is its
    /// highest voted round (`-1` with no votes).
    pub fn from_votes(cfg: &ModelCfg, votes: &[(usize, u8, u8, u8)]) -> State {
        let mut state = State::initial(cfg);
        for &(node, round, phase, value) in votes {
            if node >= cfg.honest()
                || round >= cfg.rounds
                || usize::from(round) >= MAX_ROUNDS
                || !(1..=4).contains(&phase)
                || value >= cfg.values
            {
                continue;
            }
            if state.votes[node].get(round, phase).is_none() {
                state.votes[node].set(round, phase, value);
                state.round[node] = state.round[node].max(round as i8);
            }
        }
        state
    }

    /// Canonical representative under honest-node symmetry: in safety mode
    /// the model has no leader, so honest nodes are interchangeable and
    /// states differing only by a permutation of them are equivalent.
    /// Sorting the per-node components picks one representative per orbit,
    /// shrinking the explored space by up to `honest!`.
    pub fn canonical(&self) -> State {
        let mut pairs: Vec<(VoteTable, i8)> =
            self.votes.iter().cloned().zip(self.round.iter().copied()).collect();
        pairs.sort();
        State {
            votes: pairs.iter().map(|(t, _)| t.clone()).collect(),
            round: pairs.iter().map(|(_, r)| *r).collect(),
        }
    }

    /// `Accepted(v, r, phase)`: a quorum voted `(r, phase, v)`; the `f`
    /// angelic members always help, so `n − 2f` honest votes suffice.
    pub fn accepted(&self, cfg: &ModelCfg, value: u8, round: u8, phase: u8) -> bool {
        let honest = self.votes.iter().filter(|t| t.get(round, phase) == Some(value)).count();
        honest >= cfg.honest_quorum()
    }

    /// `ClaimsSafeAt(v, r, r2, q, phase)` from the TLA+ spec, for honest `q`.
    pub fn claims_safe_at(&self, q: usize, value: u8, r: u8, r2: u8, phase: u8) -> bool {
        if r2 == 0 {
            return true;
        }
        self.votes[q].iter().any(|vt1| {
            vt1.round < r
                && r2 <= vt1.round
                && vt1.phase == phase
                && (vt1.value == value
                    || self.votes[q].iter().any(|vt2| {
                        r2 <= vt2.round
                            && vt2.round < vt1.round
                            && vt2.phase == phase
                            && vt2.value != vt1.value
                    }))
        })
    }

    /// `ShowsSafeAt(Q, v, r, phaseA, phaseB)`: is `value` safe at `round`?
    ///
    /// The existential quorum is resolved by counting honest members that
    /// satisfy the per-member conditions (the `f` Byzantine members can
    /// always be chosen to satisfy anything), and the blocking set needs
    /// only one honest claimant for the same reason.
    pub fn shows_safe_at(
        &self,
        cfg: &ModelCfg,
        value: u8,
        round: u8,
        phase_a: u8,
        phase_b: u8,
    ) -> bool {
        if round == 0 {
            return true;
        }
        // Case 2a: a quorum in round ≥ r never voted in phaseA before r.
        let fresh = (0..cfg.honest())
            .filter(|&q| {
                self.round[q] >= round as i8
                    && !self.votes[q].iter().any(|vt| vt.round < round && vt.phase == phase_a)
            })
            .count();
        if fresh >= cfg.honest_quorum() {
            return true;
        }
        // Case 2b: a pivot round r2 < r.
        for r2 in 0..round {
            let members = (0..cfg.honest())
                .filter(|&q| {
                    self.round[q] >= round as i8
                        && self.votes[q].iter().all(|vt| {
                            if vt.round < round && vt.phase == phase_a {
                                vt.round <= r2 && (vt.round != r2 || vt.value == value)
                            } else {
                                true
                            }
                        })
                })
                .count();
            if members < cfg.honest_quorum() {
                continue;
            }
            let claimants = (0..cfg.honest())
                .filter(|&q| self.claims_safe_at(q, value, round, r2, phase_b))
                .count();
            if r2 == 0 || claimants >= cfg.honest_blocking() {
                return true;
            }
        }
        false
    }

    /// Values decided in this state: a quorum of phase-4 votes in one round
    /// (`n − 2f` honest plus the angelic Byzantines).
    pub fn decided(&self, cfg: &ModelCfg) -> Vec<u8> {
        let mut out = Vec::new();
        for value in 0..cfg.values {
            for round in 0..cfg.rounds {
                if self.accepted(cfg, value, round, 4) && !out.contains(&value) {
                    out.push(value);
                }
            }
        }
        out
    }

    /// All actions enabled in this state.
    pub fn enabled_actions(&self, cfg: &ModelCfg) -> Vec<ModelAction> {
        // Hot path of both explorers: precompute the per-(round, phase,
        // value) honest vote counts once instead of rescanning every node's
        // table inside `accepted` for every candidate action.
        const MAX_COUNTED_VALUES: usize = 8;
        let mut counts = [[[0u8; MAX_COUNTED_VALUES]; 4]; MAX_ROUNDS];
        let use_counts = (cfg.values as usize) <= MAX_COUNTED_VALUES;
        if use_counts {
            for table in &self.votes {
                for vote in table.iter() {
                    counts[vote.round as usize][vote.phase as usize - 1][vote.value as usize] += 1;
                }
            }
        }
        let quorum = cfg.honest_quorum() as u8;
        let accepted = |value: u8, round: u8, phase: u8| {
            if use_counts {
                counts[round as usize][phase as usize - 1][value as usize] >= quorum
            } else {
                self.accepted(cfg, value, round, phase)
            }
        };

        let mut out = Vec::new();
        for p in 0..cfg.honest() {
            for r in 0..cfg.rounds {
                // StartRound
                if (r as i8) > self.round[p] {
                    out.push(ModelAction::StartRound { node: p, round: r });
                }
                for v in 0..cfg.values {
                    // Vote1: r = round[p], safe by (4, 1), not yet voted.
                    if self.round[p] == r as i8
                        && self.votes[p].get(r, 1).is_none()
                        && self.shows_safe_at(cfg, v, r, 4, 1)
                    {
                        out.push(ModelAction::Vote { node: p, phase: 1, round: r, value: v });
                    }
                    // Vote2..4: round[p] ≤ r, accepted in previous phase.
                    for phase in 2..=4u8 {
                        if self.round[p] <= r as i8
                            && self.votes[p].get(r, phase).is_none()
                            && accepted(v, r, phase - 1)
                        {
                            out.push(ModelAction::Vote { node: p, phase, round: r, value: v });
                        }
                    }
                }
            }
        }
        out
    }

    /// Applies an action (caller must have checked enabledness).
    pub fn apply(&self, action: ModelAction) -> State {
        let mut next = self.clone();
        match action {
            ModelAction::StartRound { node, round } => {
                next.round[node] = round as i8;
            }
            ModelAction::Vote { node, phase, round, value } => {
                next.votes[node].set(round, phase, value);
                if phase >= 2 {
                    // Vote2..4 fast-forward the node's round (TLA+ spec).
                    next.round[node] = next.round[node].max(round as i8);
                }
            }
        }
        next
    }
}

/// A transition of the abstract model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAction {
    /// `StartRound(p, r)`.
    StartRound {
        /// Honest node index.
        node: usize,
        /// Target round.
        round: u8,
    },
    /// `Vote{1,2,3,4}(p, v, r)`.
    Vote {
        /// Honest node index.
        node: usize,
        /// Phase 1–4.
        phase: u8,
        /// Round.
        round: u8,
        /// Value index.
        value: u8,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelCfg {
        ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 3 }
    }

    #[test]
    fn initial_state_has_only_startround_and_round0_votes() {
        let s = State::initial(&cfg());
        let actions = s.enabled_actions(&cfg());
        // Vote1 needs round[p] == r which is -1 initially: no votes at all.
        assert!(actions.iter().all(|a| matches!(a, ModelAction::StartRound { .. })));
        assert!(!actions.is_empty());
    }

    #[test]
    fn from_votes_builds_a_bounded_forged_state() {
        let c = cfg(); // 4 nodes, 1 byzantine → 3 honest; 2 values; 3 rounds
        let votes = [
            (0, 0, 1, 1), // kept
            (0, 0, 1, 0), // same register: first wins
            (1, 2, 4, 1), // kept, bumps node 1's round to 2
            (7, 0, 1, 1), // node out of range: skipped
            (2, 5, 1, 1), // round ≥ cfg.rounds: skipped
            (2, 0, 5, 1), // phase out of range: skipped
            (2, 0, 1, 9), // value ≥ cfg.values: skipped
        ];
        let s = State::from_votes(&c, &votes);
        assert_eq!(s.votes[0].get(0, 1), Some(1));
        assert_eq!(s.votes[1].get(2, 4), Some(1));
        assert!(s.votes[2].iter().next().is_none(), "all node-2 votes were out of bounds");
        assert_eq!(s.round, vec![0, 2, -1]);
    }

    #[test]
    fn round_zero_everything_is_safe() {
        let mut s = State::initial(&cfg());
        s.round = vec![0, 0, 0];
        assert!(s.shows_safe_at(&cfg(), 0, 0, 4, 1));
        assert!(s.shows_safe_at(&cfg(), 1, 0, 3, 2));
    }

    #[test]
    fn accepted_counts_honest_plus_angelic_byzantine() {
        let mut s = State::initial(&cfg());
        // One honest vote is not enough (needs n−2f = 2).
        s.votes[0].set(0, 1, 1);
        assert!(!s.accepted(&cfg(), 1, 0, 1));
        s.votes[1].set(0, 1, 1);
        assert!(s.accepted(&cfg(), 1, 0, 1));
    }

    #[test]
    fn vote_chain_becomes_enabled() {
        let mut s = State::initial(&cfg());
        s.round = vec![0, 0, 0];
        s.votes[0].set(0, 1, 1);
        s.votes[1].set(0, 1, 1);
        let actions = s.enabled_actions(&cfg());
        assert!(actions.contains(&ModelAction::Vote { node: 2, phase: 2, round: 0, value: 1 }));
        assert!(
            !actions.contains(&ModelAction::Vote { node: 2, phase: 3, round: 0, value: 1 }),
            "phase 3 needs a phase-2 quorum first"
        );
    }

    #[test]
    fn safety_gate_blocks_conflicting_round1_votes() {
        // Value 0 got a full phase-4 quorum in round 0; in round 1 only
        // value 0 may pass ShowsSafeAt(·, 1, 4, 1).
        let mut s = State::initial(&cfg());
        s.round = vec![1, 1, 1];
        for p in 0..3 {
            for phase in 1..=4 {
                s.votes[p].set(0, phase, 0);
            }
        }
        assert!(s.shows_safe_at(&cfg(), 0, 1, 4, 1), "decided value stays safe");
        assert!(!s.shows_safe_at(&cfg(), 1, 1, 4, 1), "conflicting value is unsafe");
    }

    #[test]
    fn decided_lists_quorum_backed_values() {
        let mut s = State::initial(&cfg());
        assert!(s.decided(&cfg()).is_empty());
        s.votes[0].set(2, 4, 1);
        s.votes[2].set(2, 4, 1);
        assert_eq!(s.decided(&cfg()), vec![1]);
    }

    #[test]
    fn claims_safe_via_prev_vote() {
        let mut s = State::initial(&cfg());
        // q voted phase-1 for value 0 at round 1, then value 1 at round 2.
        s.votes[0].set(1, 1, 0);
        s.votes[0].set(2, 1, 1);
        assert!(s.claims_safe_at(0, 1, 3, 2, 1), "matching highest vote");
        assert!(
            !s.claims_safe_at(0, 0, 3, 2, 1),
            "the second-highest different-valued vote (round 1) does not reach r2 = 2"
        );
        assert!(
            s.claims_safe_at(0, 0, 3, 1, 1),
            "…but it does reach r2 = 1, claiming any value safe there"
        );
        assert!(!s.claims_safe_at(0, 0, 3, 3, 1), "nothing reaches round 3");
    }
}
