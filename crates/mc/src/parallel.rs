//! The packed parallel explorer.
//!
//! A level-synchronized breadth-first search over [`PackedState`]s:
//!
//! * the **seen-set** is the sharded, collision-checked [`Store`];
//! * the **frontier** is one disk-spilling [`SpillQueue`] per worker,
//!   sharded by successor fingerprint; workers drain their own queue first
//!   and steal from the others, so a level finishes only when every queue
//!   is empty;
//! * successor states are canonicalized **incrementally**: the per-node
//!   packed words of the expanded state are computed once per value
//!   permutation, and each action rewrites only the acting node's word
//!   before the (tiny) node re-sort — no `State` clone, no allocation on
//!   the per-transition path.
//!
//! Determinism: every stored state is expanded exactly once and all
//! [`Report`] counters are sums over that set (or level counts), so
//! exhausted runs produce identical counters for any thread count. Two
//! caveats: under truncation, *which* discoveries are dropped depends on
//! thread timing (only single-threaded truncated runs are
//! bit-reproducible), and with tracing on, a state discovered by two
//! same-level parents records whichever won the shard lock, so the
//! counterexample's *steps* may differ across multi-threaded runs — its
//! length (shortest) and final decided values never do.

use std::path::PathBuf;
use std::sync::Mutex;

use crate::encode::{Codec, PackedState, MAX_HONEST, MAX_WORDS};
use crate::frontier::SpillQueue;
use crate::invariants;
use crate::model::{ModelAction, ModelCfg, State};
use crate::report::Report;
use crate::store::{Outcome, Store};
use crate::trace;

/// Records popped from a frontier queue per lock acquisition.
const POP_BATCH: usize = 64;
/// Records buffered per target queue before flushing.
const PUSH_BATCH: usize = 256;

/// Memory-side statistics of a run (see [`Explorer::run_with_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Bytes of seen-set table capacity at the end of the run (keys plus
    /// any trace predecessor words) — the "are states cheap now?" counter.
    pub seen_bytes: usize,
    /// Bytes per packed frontier record.
    pub frontier_record_bytes: usize,
    /// States written to spill segments on disk over the whole run.
    pub spilled_states: u64,
}

/// Breadth-first explorer for the abstract model: bit-packed states, full
/// honest-node and value symmetry reduction, a disk-backed frontier, and
/// optional thread-parallel expansion and counterexample tracing.
///
/// Source-compatible with the original explorer: `Explorer::new(cfg)
/// .run(budget)` still returns a [`Report`]. The legacy clone-based
/// implementation survives as [`crate::LegacyExplorer`] for comparison.
///
/// # Examples
///
/// See the crate-level example.
///
/// # Panics
///
/// `run` panics if the bounds don't fit the packed codec: `values` must
/// be `1..=7`, `rounds ≤ MAX_ROUNDS`, honest nodes `1..=16` (the paper
/// instance is 4 nodes / 3 values / 5 rounds — well inside).
#[derive(Debug)]
pub struct Explorer {
    cfg: ModelCfg,
    check_inductive: bool,
    threads: usize,
    trace: bool,
    value_symmetry: bool,
    initial: Option<State>,
    frontier_mem: usize,
    spill_dir: Option<PathBuf>,
}

impl Explorer {
    /// Creates an explorer for `cfg`.
    pub fn new(cfg: ModelCfg) -> Self {
        Explorer {
            cfg,
            check_inductive: false,
            threads: 1,
            trace: false,
            value_symmetry: true,
            initial: None,
            frontier_mem: 1 << 18,
            spill_dir: None,
        }
    }

    /// Additionally check the paper's `ConsistencyInvariant` on every
    /// reachable state (it must be an *invariant*, not just inductive).
    pub fn check_inductive(mut self, on: bool) -> Self {
        self.check_inductive = on;
        self
    }

    /// Expands states with `k` worker threads (default 1). The aggregate
    /// counters of an exhausted run are identical for every `k`; with
    /// [`Explorer::trace`] on, the reconstructed counterexample keeps its
    /// (shortest) length but its exact steps may vary across runs for
    /// `k > 1` (see the module docs).
    pub fn threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Record predecessors so a shortest counterexample trace can be
    /// reconstructed into [`Report::counterexample`] if agreement is ever
    /// violated. Costs one extra packed state + action word per stored
    /// state.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Toggle value-permutation symmetry reduction (default on). Disable
    /// to compare state counts with honest-node-only canonicalization.
    pub fn value_symmetry(mut self, on: bool) -> Self {
        self.value_symmetry = on;
        self
    }

    /// Start exploration from `state` instead of [`State::initial`] — for
    /// auditing how the checker reacts to forged or hypothetical states.
    ///
    /// # Panics
    ///
    /// `run` panics if `state`'s node count doesn't match the config.
    pub fn with_initial(mut self, state: State) -> Self {
        self.initial = Some(state);
        self
    }

    /// In-RAM frontier capacity, in packed records per queue buffer;
    /// beyond it the frontier spills to disk segments (default 2¹⁸).
    pub fn frontier_mem(mut self, records: usize) -> Self {
        self.frontier_mem = records.max(1);
        self
    }

    /// Directory for frontier spill segments (default: system temp dir).
    pub fn spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }

    /// Explores up to `max_states` distinct states (modulo honest-node and
    /// value symmetry) from the initial state.
    pub fn run(&self, max_states: usize) -> Report {
        self.run_with_stats(max_states).0
    }

    /// Like [`Explorer::run`], also returning memory-side statistics.
    pub fn run_with_stats(&self, max_states: usize) -> (Report, ExploreStats) {
        let codec = Codec::new(&self.cfg, self.value_symmetry);
        let stride = codec.words_used();
        let k = self.threads;
        let store = Store::new(stride, (k * 4).next_power_of_two(), max_states, self.trace);

        let initial = self.initial.clone().unwrap_or_else(|| State::initial(&self.cfg));
        assert_eq!(
            initial.votes.len(),
            self.cfg.honest(),
            "initial state node count must match the config"
        );
        assert_eq!(initial.round.len(), self.cfg.honest());

        let new_queues = || -> Vec<Mutex<SpillQueue>> {
            (0..k)
                .map(|_| {
                    Mutex::new(SpillQueue::new(stride, self.frontier_mem, self.spill_dir.clone()))
                })
                .collect()
        };
        let mut current = new_queues();
        let mut next = new_queues();

        let mut report = Report::empty();
        let mut spilled: u64 = 0;
        let best_violation: Mutex<Option<(usize, PackedState)>> = Mutex::new(None);

        let packed_initial = codec.canonical(&initial);
        if store.try_insert(&packed_initial, codec.fingerprint(&packed_initial), None)
            == Outcome::Fresh
        {
            current[0].lock().unwrap().push(&packed_initial.words()[..stride]);
        }

        let mut level = 0usize;
        while current.iter().any(|q| !q.lock().unwrap().is_empty()) {
            report.depth = level;
            let counts = if k == 1 {
                self.work(0, &codec, &store, &current, &next, level, &best_violation)
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..k)
                        .map(|w| {
                            let (codec, store) = (&codec, &store);
                            let (current, next) = (&current, &next);
                            let best_violation = &best_violation;
                            scope.spawn(move || {
                                self.work(w, codec, store, current, next, level, best_violation)
                            })
                        })
                        .collect();
                    let mut total = Counts::default();
                    for h in handles {
                        total.add(h.join().expect("worker panicked"));
                    }
                    total
                })
            };
            report.transitions += counts.transitions;
            report.violations += counts.violations;
            report.invariant_violations += counts.invariant_violations;
            spilled += current.iter().map(|q| q.lock().unwrap().spilled()).sum::<u64>();
            std::mem::swap(&mut current, &mut next);
            // Replace the drained queues so spill statistics don't double
            // count and segment files from this level are reclaimed.
            next = new_queues();
            level += 1;
        }

        report.states = store.len();
        report.dropped = store.dropped();
        report.truncated = report.dropped > 0;
        report.exhausted = !report.truncated;
        if self.trace {
            if let Some((_, packed)) = *best_violation.lock().unwrap() {
                report.counterexample = Some(trace::reconstruct(&self.cfg, &codec, &store, packed));
            }
        }
        let stats = ExploreStats {
            seen_bytes: store.bytes(),
            frontier_record_bytes: stride * 8,
            spilled_states: spilled,
        };
        (report, stats)
    }

    /// One worker's share of one BFS level.
    #[allow(clippy::too_many_arguments)]
    fn work(
        &self,
        w: usize,
        codec: &Codec,
        store: &Store,
        current: &[Mutex<SpillQueue>],
        next: &[Mutex<SpillQueue>],
        level: usize,
        best_violation: &Mutex<Option<(usize, PackedState)>>,
    ) -> Counts {
        let cfg = &self.cfg;
        let k = current.len();
        let stride = codec.words_used();
        let honest = cfg.honest();
        let perms = codec.perms();
        let mut counts = Counts::default();

        // Reused buffers: popped records, per-permutation node words of the
        // state under expansion, per-target-queue outboxes.
        let mut in_buf: Vec<u64> = Vec::with_capacity(POP_BATCH * stride);
        let mut node_words: Vec<[u128; MAX_HONEST]> = vec![[0; MAX_HONEST]; perms.len()];
        let mut out_bufs: Vec<Vec<u64>> = vec![Vec::new(); k];

        let flush = |bufs: &mut Vec<Vec<u64>>, target: usize| {
            let mut q = next[target].lock().unwrap();
            for rec in bufs[target].chunks_exact(stride) {
                q.push(rec);
            }
            bufs[target].clear();
        };

        // Drain our own queue first, then steal from the others. Queues
        // only shrink during a level, so one sweep finding every queue
        // empty means the level is done for this worker.
        for j in 0..k {
            let qi = (w + j) % k;
            loop {
                in_buf.clear();
                {
                    let mut q = current[qi].lock().unwrap();
                    let mut rec = [0u64; MAX_WORDS];
                    for _ in 0..POP_BATCH {
                        if !q.pop(&mut rec[..stride]) {
                            break;
                        }
                        in_buf.extend_from_slice(&rec[..stride]);
                    }
                }
                if in_buf.is_empty() {
                    break;
                }
                // Split borrow: iterate a copy of the records so in_buf
                // can be refilled next iteration.
                let records: Vec<u64> = std::mem::take(&mut in_buf);
                for rec in records.chunks_exact(stride) {
                    self.expand(
                        rec,
                        codec,
                        store,
                        level,
                        best_violation,
                        &mut node_words,
                        &mut out_bufs,
                        &mut counts,
                        honest,
                        k,
                    );
                    for target in 0..k {
                        if out_bufs[target].len() >= PUSH_BATCH * stride {
                            flush(&mut out_bufs, target);
                        }
                    }
                }
                in_buf = records;
            }
        }
        for target in 0..k {
            if !out_bufs[target].is_empty() {
                flush(&mut out_bufs, target);
            }
        }
        counts
    }

    /// Expands one packed state: checks properties, enumerates actions,
    /// and inserts canonical successors.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        rec: &[u64],
        codec: &Codec,
        store: &Store,
        level: usize,
        best_violation: &Mutex<Option<(usize, PackedState)>>,
        node_words: &mut [[u128; MAX_HONEST]],
        out_bufs: &mut [Vec<u64>],
        counts: &mut Counts,
        honest: usize,
        k: usize,
    ) {
        let cfg = &self.cfg;
        let packed = PackedState::from_words(rec);
        let state = codec.decode(&packed);

        if state.decided(cfg).len() > 1 {
            counts.violations += 1;
            let mut best = best_violation.lock().unwrap();
            let candidate = (level, packed);
            if best.is_none_or(|b| candidate < b) {
                *best = Some(candidate);
            }
        }
        if self.check_inductive && !invariants::consistency_invariant(cfg, &state) {
            counts.invariant_violations += 1;
        }

        let actions = state.enabled_actions(cfg);
        if actions.is_empty() {
            return;
        }
        let perms = codec.perms();
        for (pi, perm) in perms.iter().enumerate() {
            for (slot, (table, &round)) in
                node_words[pi].iter_mut().zip(state.votes.iter().zip(&state.round))
            {
                *slot = codec.node_value(table, round, perm);
            }
        }
        for action in actions {
            counts.transitions += 1;
            let mut best: Option<PackedState> = None;
            for (pi, perm) in perms.iter().enumerate() {
                let mut arr = [0u128; MAX_HONEST];
                arr[..honest].copy_from_slice(&node_words[pi][..honest]);
                match action {
                    ModelAction::StartRound { node, round } => {
                        arr[node] = codec.node_with_round(arr[node], round as i8);
                    }
                    ModelAction::Vote { node, phase, round, value } => {
                        arr[node] =
                            codec.node_with_vote(arr[node], round, phase, perm[value as usize]);
                        if phase >= 2 && codec.node_round(arr[node]) < round as i8 {
                            arr[node] = codec.node_with_round(arr[node], round as i8);
                        }
                    }
                }
                arr[..honest].sort_unstable();
                let candidate = codec.pack_nodes(&arr[..honest]);
                if best.is_none_or(|b| candidate < b) {
                    best = Some(candidate);
                }
            }
            let successor = best.expect("at least the identity permutation");
            let fp = codec.fingerprint(&successor);
            let parent = if self.trace { Some((&packed, action)) } else { None };
            if store.try_insert(&successor, fp, parent) == Outcome::Fresh {
                let stride = codec.words_used();
                out_bufs[((fp >> 32) as usize) % k].extend_from_slice(&successor.words()[..stride]);
            }
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Counts {
    transitions: usize,
    violations: usize,
    invariant_violations: usize,
}

impl Counts {
    fn add(&mut self, other: Counts) {
        self.transitions += other.transitions;
        self.violations += other.violations;
        self.invariant_violations += other.invariant_violations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ModelCfg {
        ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 }
    }

    #[test]
    fn tiny_instance_is_exhausted_and_safe() {
        let report = Explorer::new(small()).check_inductive(true).run(2_000_000);
        assert!(report.exhausted);
        assert!(!report.truncated);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.violations, 0);
        assert_eq!(report.invariant_violations, 0);
        assert!(report.states > 50, "the space must be non-trivial");
    }

    #[test]
    fn thread_counts_agree_on_exhausted_reports() {
        let sequential = Explorer::new(small()).run(2_000_000);
        for k in [2, 4] {
            let parallel = Explorer::new(small()).threads(k).run(2_000_000);
            assert_eq!(parallel, sequential, "threads({k}) must match threads(1)");
        }
    }

    #[test]
    fn spilling_frontier_matches_in_ram_frontier() {
        let in_ram = Explorer::new(small()).run(2_000_000);
        let spilled = Explorer::new(small()).frontier_mem(8).run(2_000_000);
        assert_eq!(in_ram, spilled);
        let (_, stats) = Explorer::new(small()).frontier_mem(8).run_with_stats(2_000_000);
        assert!(stats.spilled_states > 0, "an 8-record frontier cap must spill to disk");
    }

    #[test]
    fn value_symmetry_shrinks_the_space_without_changing_verdicts() {
        let full = Explorer::new(small()).value_symmetry(false).run(2_000_000);
        let reduced = Explorer::new(small()).run(2_000_000);
        assert!(reduced.states < full.states, "value symmetry must merge orbits");
        assert!(full.exhausted && reduced.exhausted);
        assert_eq!(full.violations, 0);
        assert_eq!(reduced.violations, 0);
    }

    #[test]
    fn exact_budget_still_reports_exhausted() {
        let size = Explorer::new(small()).run(2_000_000).states;
        let exact = Explorer::new(small()).run(size);
        assert!(exact.exhausted, "a budget equal to the space size is an exhausted run");
        assert!(!exact.truncated);
        let short = Explorer::new(small()).run(size - 1);
        assert!(short.truncated);
        assert!(!short.exhausted);
        assert!(short.dropped >= 1);
        assert_eq!(short.states, size - 1);
    }

    #[test]
    fn forged_disagreement_yields_a_trace() {
        // The forged state of the legacy tests, one finishing vote short:
        // nodes 0 and 1 carried value 0 through all four phases of round 0
        // and value 1 through phases 1..=3 of round 1. The checker itself
        // must take the final phase-4 step and report the two-value trace.
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
        let mut s = State::initial(&cfg);
        s.round = vec![1, 1, 1];
        for p in 0..2 {
            for phase in 1..=4 {
                s.votes[p].set(0, phase, 0);
            }
            for phase in 1..=3 {
                s.votes[p].set(1, phase, 1);
            }
        }
        let report = Explorer::new(cfg).with_initial(s).trace(true).run(1_000_000);
        assert!(report.violations > 0, "disagreement must be reachable from the forged state");
        let trace = report.counterexample.expect("trace recorded");
        assert_eq!(trace.decided.len(), 2, "trace ends in two decided values");
        // Deciding value 1 needs an honest phase-4 *quorum* (2 of 3 nodes),
        // so the shortest completion is exactly two Vote4 actions.
        assert_eq!(trace.steps.len(), 2, "two phase-4 votes complete the disagreement");
        assert_eq!(trace.last_state().decided(&cfg).len(), 2);
        // Replaying the trace's actions from its initial state reproduces
        // each step state up to canonicalization.
        let codec = Codec::new(&cfg, true);
        let mut replay = trace.initial.clone();
        for step in &trace.steps {
            replay = replay.apply(step.action);
            assert_eq!(codec.canonical(&replay), codec.canonical(&step.state));
            replay = step.state.clone();
        }
    }

    #[test]
    fn reachable_space_has_no_trace() {
        let report = Explorer::new(small()).trace(true).run(2_000_000);
        assert_eq!(report.violations, 0);
        assert!(report.counterexample.is_none());
    }
}
