//! The original clone-based breadth-first explorer, kept as the measured
//! baseline for the packed engine (see `benches/mc_scale.rs`).
//!
//! It stores full [`State`] clones in a single in-memory `HashSet` and
//! canonicalizes by honest-node permutation only — exactly the design
//! whose memory-per-state and allocation traffic capped exploration at
//! toy bounds. [`crate::Explorer`] replaces it; this one remains for
//! apples-to-apples comparisons and as an oracle in equivalence tests.

use std::collections::{HashSet, VecDeque};

use crate::invariants;
use crate::model::{ModelCfg, State, VoteTable};
use crate::report::Report;

/// The v1 explorer: `HashSet<State>` seen-set, in-RAM `VecDeque` frontier,
/// single-threaded, honest-node symmetry only.
///
/// # Examples
///
/// ```
/// use tetrabft_mc::{LegacyExplorer, ModelCfg};
///
/// let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 };
/// let report = LegacyExplorer::new(cfg).run(1_000_000);
/// assert!(report.exhausted);
/// assert_eq!(report.violations, 0);
/// ```
#[derive(Debug)]
pub struct LegacyExplorer {
    cfg: ModelCfg,
    check_inductive: bool,
}

impl LegacyExplorer {
    /// Creates an explorer for `cfg`.
    pub fn new(cfg: ModelCfg) -> Self {
        LegacyExplorer { cfg, check_inductive: false }
    }

    /// Additionally check the paper's `ConsistencyInvariant` on every
    /// reachable state (it must be an *invariant*, not just inductive).
    pub fn check_inductive(mut self, on: bool) -> Self {
        self.check_inductive = on;
        self
    }

    /// Approximate heap bytes this engine spends per stored state: the
    /// `State` header, its two heap blocks, and the hash-table slot
    /// amortized at the table's 7/8 maximum load. Used by the scale bench
    /// as the baseline for the ≥8× memory-per-state claim.
    pub fn approx_bytes_per_state(cfg: &ModelCfg) -> usize {
        let heap = cfg.honest() * std::mem::size_of::<VoteTable>() // votes buffer
            + cfg.honest(); // round buffer
        let entry = std::mem::size_of::<State>() + 1; // table slot + control byte
        heap + entry * 8 / 7
    }

    /// Explores up to `max_states` distinct states (modulo honest-node
    /// symmetry) from the initial state.
    pub fn run(&self, max_states: usize) -> Report {
        let initial = State::initial(&self.cfg).canonical();
        let mut seen: HashSet<State> = HashSet::new();
        let mut queue: VecDeque<(State, usize)> = VecDeque::new();
        seen.insert(initial.clone());
        queue.push_back((initial, 0));

        let mut report = Report::empty();
        while let Some((state, depth)) = queue.pop_front() {
            report.states += 1;
            report.depth = report.depth.max(depth);
            if state.decided(&self.cfg).len() > 1 {
                report.violations += 1;
            }
            if self.check_inductive && !invariants::consistency_invariant(&self.cfg, &state) {
                report.invariant_violations += 1;
            }
            for action in state.enabled_actions(&self.cfg) {
                report.transitions += 1;
                let next = state.apply(action).canonical();
                if seen.contains(&next) {
                    continue;
                }
                // A genuinely new state: store it, or count the dropped
                // discovery if the budget is spent. (`seen.len() <
                // max_states` *after* the loop misreported a space whose
                // size exactly equals the budget, and silently uncounted
                // every discovery refused here.)
                if seen.len() >= max_states {
                    report.dropped += 1;
                    continue;
                }
                seen.insert(next.clone());
                queue.push_back((next, depth + 1));
            }
        }
        report.truncated = report.dropped > 0;
        report.exhausted = !report.truncated;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_instance_is_exhausted_and_safe() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 };
        let report = LegacyExplorer::new(cfg).check_inductive(true).run(2_000_000);
        assert!(report.exhausted, "2 values × 1 round must be exhaustible");
        assert_eq!(report.violations, 0, "agreement must hold everywhere");
        assert_eq!(report.invariant_violations, 0, "invariant must hold everywhere");
        assert!(report.states > 100, "the space must be non-trivial");
    }

    #[test]
    fn single_round_three_values_safe() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 1 };
        let report = LegacyExplorer::new(cfg).run(2_000_000);
        assert!(report.exhausted);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn budget_is_respected_and_truncation_reported() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 3 };
        let report = LegacyExplorer::new(cfg).run(500);
        assert_eq!(report.states, 500, "exactly the budget is stored and expanded");
        assert!(report.truncated);
        assert!(!report.exhausted);
        assert!(report.dropped > 0, "refused discoveries are counted");
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn budget_exactly_equal_to_space_size_is_exhausted() {
        // Regression: `exhausted` used to be `seen.len() < max_states`
        // after the loop, so running with the budget set to the exact
        // space size claimed truncation despite exploring everything.
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 };
        let size = LegacyExplorer::new(cfg).run(2_000_000).states;
        let exact = LegacyExplorer::new(cfg).run(size);
        assert!(exact.exhausted, "budget == space size must report exhausted");
        assert!(!exact.truncated);
        assert_eq!(exact.dropped, 0);
        assert_eq!(exact.states, size);

        let short = LegacyExplorer::new(cfg).run(size - 1);
        assert!(short.truncated);
        assert!(short.dropped >= 1);
    }

    #[test]
    fn broken_model_detects_disagreement() {
        // Sanity-check the checker itself: a state with two decided values
        // must be flagged. We forge one directly.
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
        let mut s = State::initial(&cfg);
        for p in 0..2 {
            s.votes[p].set(0, 4, 0);
        }
        for p in 1..3 {
            s.votes[p].set(1, 4, 1);
        }
        assert_eq!(s.decided(&cfg).len(), 2, "the forged state disagrees");
        assert!(!crate::invariants::votes_safe(&cfg, &s), "and the inductive invariant rejects it");
    }
}
