//! Explicit-state breadth-first exploration.

use std::collections::{HashSet, VecDeque};

use crate::invariants;
use crate::model::{ModelCfg, State};

/// Outcome of an exploration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// Maximum BFS depth reached.
    pub depth: usize,
    /// `true` if the reachable state space was exhausted within the budget.
    pub exhausted: bool,
    /// Number of states violating the agreement property.
    pub violations: usize,
    /// Number of states violating the paper's `ConsistencyInvariant`
    /// (checked when [`Explorer::check_inductive`] is set).
    pub invariant_violations: usize,
}

/// Breadth-first explorer for the abstract model.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Explorer {
    cfg: ModelCfg,
    check_inductive: bool,
}

impl Explorer {
    /// Creates an explorer for `cfg`.
    pub fn new(cfg: ModelCfg) -> Self {
        Explorer { cfg, check_inductive: false }
    }

    /// Additionally check the paper's `ConsistencyInvariant` on every
    /// reachable state (it must be an *invariant*, not just inductive).
    pub fn check_inductive(mut self, on: bool) -> Self {
        self.check_inductive = on;
        self
    }

    /// Explores up to `max_states` distinct states (modulo honest-node
    /// symmetry) from the initial state.
    pub fn run(&self, max_states: usize) -> Report {
        let initial = State::initial(&self.cfg).canonical();
        let mut seen: HashSet<State> = HashSet::new();
        let mut queue: VecDeque<(State, usize)> = VecDeque::new();
        seen.insert(initial.clone());
        queue.push_back((initial, 0));

        let mut report = Report {
            states: 0,
            transitions: 0,
            depth: 0,
            exhausted: false,
            violations: 0,
            invariant_violations: 0,
        };

        while let Some((state, depth)) = queue.pop_front() {
            report.states += 1;
            report.depth = report.depth.max(depth);
            if state.decided(&self.cfg).len() > 1 {
                report.violations += 1;
            }
            if self.check_inductive && !invariants::consistency_invariant(&self.cfg, &state) {
                report.invariant_violations += 1;
            }
            for action in state.enabled_actions(&self.cfg) {
                report.transitions += 1;
                let next = state.apply(action).canonical();
                if seen.len() < max_states && seen.insert(next.clone()) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        report.exhausted = seen.len() < max_states;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_instance_is_exhausted_and_safe() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 };
        let report = Explorer::new(cfg).check_inductive(true).run(2_000_000);
        assert!(report.exhausted, "2 values × 1 round must be exhaustible");
        assert_eq!(report.violations, 0, "agreement must hold everywhere");
        assert_eq!(report.invariant_violations, 0, "invariant must hold everywhere");
        assert!(report.states > 100, "the space must be non-trivial");
    }

    #[test]
    fn two_rounds_bounded_exploration_is_safe() {
        // Full exhaustion of 2 values × 2 rounds is the mc_agreement
        // bench's job (it takes minutes, like the paper's 3-hour Apalache
        // run); here we sweep the first quarter million states.
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
        let report = Explorer::new(cfg).run(250_000);
        assert_eq!(report.violations, 0, "agreement must hold in every visited state");
        assert!(report.states >= 250_000 || report.exhausted);
    }

    #[test]
    fn single_round_three_values_safe() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 1 };
        let report = Explorer::new(cfg).run(2_000_000);
        assert!(report.exhausted);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn budget_is_respected() {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 3 };
        let report = Explorer::new(cfg).run(500);
        assert!(!report.exhausted || report.states <= 501);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn broken_model_detects_disagreement() {
        // Sanity-check the checker itself: a state with two decided values
        // must be flagged. We forge one directly.
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
        let mut s = State::initial(&cfg);
        for p in 0..2 {
            s.votes[p].set(0, 4, 0);
        }
        for p in 1..3 {
            s.votes[p].set(1, 4, 1);
        }
        assert_eq!(s.decided(&cfg).len(), 2, "the forged state disagrees");
        assert!(!crate::invariants::votes_safe(&cfg, &s), "and the inductive invariant rejects it");
    }
}
