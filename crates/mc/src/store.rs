//! Sharded fingerprint seen-set.
//!
//! Open-addressing (linear probing) over flat `Vec<u64>` entry arrays:
//! each entry is the `stride` packed words themselves, so membership is
//! *collision-checked* — the fingerprint only picks the shard and the
//! starting slot, and equality always compares the full packed state. An
//! all-zero first word marks an empty slot (a valid [`PackedState`] is
//! never all-zero; see [`crate::encode`]).
//!
//! Sharding serves the parallel explorer: each shard sits behind its own
//! mutex, and the shard index is a pure function of the fingerprint, so
//! worker threads contend only when they hash into the same shard.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::encode::{fingerprint, PackedState};
use crate::model::ModelAction;

/// Result of a [`Store::try_insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The state was not in the store and was inserted.
    Fresh,
    /// The state was already present.
    Seen,
    /// The state was new but the state budget is exhausted; not inserted.
    Dropped,
}

fn encode_action(action: Option<ModelAction>) -> u64 {
    match action {
        None => 0,
        Some(ModelAction::StartRound { node, round }) => {
            1 | (node as u64) << 8 | u64::from(round) << 16
        }
        Some(ModelAction::Vote { node, phase, round, value }) => {
            2 | (node as u64) << 8
                | u64::from(round) << 16
                | u64::from(phase) << 24
                | u64::from(value) << 32
        }
    }
}

fn decode_action(code: u64) -> Option<ModelAction> {
    let node = ((code >> 8) & 0xFF) as usize;
    let round = ((code >> 16) & 0xFF) as u8;
    match code & 0xFF {
        0 => None,
        1 => Some(ModelAction::StartRound { node, round }),
        2 => Some(ModelAction::Vote {
            node,
            round,
            phase: ((code >> 24) & 0xFF) as u8,
            value: ((code >> 32) & 0xFF) as u8,
        }),
        _ => unreachable!("corrupt action code"),
    }
}

struct Shard {
    /// Slot count; always a power of two.
    cap: usize,
    len: usize,
    /// `cap * stride` words; entry `i` at `i * stride`, first word 0 = empty.
    keys: Vec<u64>,
    /// With tracing: `cap * (stride + 1)` words per slot — the parent's
    /// packed words followed by the encoded action.
    aux: Vec<u64>,
}

impl Shard {
    fn new(cap: usize, stride: usize, trace: bool) -> Shard {
        Shard {
            cap,
            len: 0,
            keys: vec![0; cap * stride],
            aux: if trace { vec![0; cap * (stride + 1)] } else { Vec::new() },
        }
    }

    /// Finds the slot holding `words`, or the empty slot where it belongs.
    fn probe(&self, stride: usize, fp: u64, words: &[u64]) -> (usize, bool) {
        let mask = self.cap - 1;
        let mut slot = (fp >> 32) as usize & mask;
        loop {
            let entry = &self.keys[slot * stride..(slot + 1) * stride];
            if entry[0] == 0 {
                return (slot, false);
            }
            if entry == words {
                return (slot, true);
            }
            slot = (slot + 1) & mask;
        }
    }

    fn write(&mut self, stride: usize, slot: usize, words: &[u64], parent: &[u64]) {
        self.keys[slot * stride..(slot + 1) * stride].copy_from_slice(words);
        if !self.aux.is_empty() {
            self.aux[slot * (stride + 1)..(slot + 1) * (stride + 1)].copy_from_slice(parent);
        }
        self.len += 1;
    }

    fn grow(&mut self, stride: usize) {
        let trace = !self.aux.is_empty();
        let mut bigger = Shard::new(self.cap * 2, stride, trace);
        for slot in 0..self.cap {
            let entry = &self.keys[slot * stride..(slot + 1) * stride];
            if entry[0] == 0 {
                continue;
            }
            let fp = fingerprint(entry);
            let (new_slot, found) = bigger.probe(stride, fp, entry);
            debug_assert!(!found);
            let parent = if trace {
                self.aux[slot * (stride + 1)..(slot + 1) * (stride + 1)].to_vec()
            } else {
                Vec::new()
            };
            bigger.write(stride, new_slot, entry, &parent);
        }
        *self = bigger;
    }
}

/// The sharded seen-set (and, with tracing, predecessor table).
pub struct Store {
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
    stride: usize,
    trace: bool,
    budget: usize,
    count: AtomicUsize,
    dropped: AtomicUsize,
}

impl Store {
    /// Creates a store for packed states of `stride` words, refusing
    /// inserts beyond `budget` states. `shards` is rounded up to a power
    /// of two. With `trace`, each entry also records its parent state and
    /// the action that discovered it.
    pub fn new(stride: usize, shards: usize, budget: usize, trace: bool) -> Store {
        let shards = shards.max(1).next_power_of_two();
        Store {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(256, stride, trace))).collect(),
            shard_mask: shards as u64 - 1,
            stride,
            trace,
            budget,
            count: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Words per entry.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Inserts `packed` (with fingerprint `fp`), recording `parent` when
    /// tracing. Duplicates report [`Outcome::Seen`] regardless of budget;
    /// new states beyond the budget are counted and dropped.
    pub fn try_insert(
        &self,
        packed: &PackedState,
        fp: u64,
        parent: Option<(&PackedState, ModelAction)>,
    ) -> Outcome {
        let words = &packed.words()[..self.stride];
        let mut shard = self.shards[(fp & self.shard_mask) as usize].lock().unwrap();
        let (slot, found) = shard.probe(self.stride, fp, words);
        if found {
            return Outcome::Seen;
        }
        // New state: claim a unit of the global budget.
        loop {
            let c = self.count.load(Ordering::Relaxed);
            if c >= self.budget {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return Outcome::Dropped;
            }
            if self
                .count
                .compare_exchange_weak(c, c + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        let mut aux = [0u64; crate::encode::MAX_WORDS + 1];
        let aux = if self.trace {
            if let Some((p, action)) = parent {
                aux[..self.stride].copy_from_slice(&p.words()[..self.stride]);
                aux[self.stride] = encode_action(Some(action));
            }
            &aux[..self.stride + 1]
        } else {
            &aux[..0]
        };
        // Grow before writing so the probe below lands in the final table.
        let slot = if (shard.len + 1) * 4 > shard.cap * 3 {
            shard.grow(self.stride);
            shard.probe(self.stride, fp, words).0
        } else {
            slot
        };
        shard.write(self.stride, slot, words, aux);
        Outcome::Fresh
    }

    /// The parent state and discovering action recorded for `packed`, if
    /// tracing was on and `packed` is a stored non-root state.
    pub fn parent(&self, packed: &PackedState, fp: u64) -> Option<(PackedState, ModelAction)> {
        if !self.trace {
            return None;
        }
        let words = &packed.words()[..self.stride];
        let shard = self.shards[(fp & self.shard_mask) as usize].lock().unwrap();
        let (slot, found) = shard.probe(self.stride, fp, words);
        if !found {
            return None;
        }
        let aux = &shard.aux[slot * (self.stride + 1)..(slot + 1) * (self.stride + 1)];
        let action = decode_action(aux[self.stride])?;
        Some((PackedState::from_words(&aux[..self.stride]), action))
    }

    /// Distinct states stored.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no state has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discovery events refused at the budget.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Bytes of table capacity currently allocated (keys + trace aux).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap();
                (s.keys.len() + s.aux.len()) * 8
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Codec;
    use crate::model::{ModelCfg, State};

    fn setup() -> (Codec, Vec<PackedState>) {
        let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
        let codec = Codec::new(&cfg, true);
        // A spread of distinct packed states via a short exhaustive walk.
        let mut states = vec![State::initial(&cfg)];
        let mut packed = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while let Some(s) = states.pop() {
            if packed.len() >= 2000 {
                break;
            }
            for a in s.enabled_actions(&cfg) {
                let next = s.apply(a);
                let p = codec.canonical(&next);
                if seen.insert(p) {
                    packed.push(p);
                    states.push(next);
                }
            }
        }
        (codec, packed)
    }

    #[test]
    fn insert_dedups_and_grows_across_resizes() {
        let (codec, packed) = setup();
        assert!(packed.len() > 1000, "need enough states to force shard growth");
        let store = Store::new(codec.words_used(), 4, usize::MAX, false);
        for p in &packed {
            assert_eq!(store.try_insert(p, codec.fingerprint(p), None), Outcome::Fresh);
        }
        for p in &packed {
            assert_eq!(store.try_insert(p, codec.fingerprint(p), None), Outcome::Seen);
        }
        assert_eq!(store.len(), packed.len());
        assert_eq!(store.dropped(), 0);
        assert!(store.bytes() > 0);
    }

    #[test]
    fn budget_drops_are_counted_and_duplicates_stay_seen() {
        let (codec, packed) = setup();
        let store = Store::new(codec.words_used(), 1, 10, false);
        for p in packed.iter().take(10) {
            assert_eq!(store.try_insert(p, codec.fingerprint(p), None), Outcome::Fresh);
        }
        assert_eq!(
            store.try_insert(&packed[10], codec.fingerprint(&packed[10]), None),
            Outcome::Dropped
        );
        // A state stored before the cap is still recognized after it.
        assert_eq!(
            store.try_insert(&packed[3], codec.fingerprint(&packed[3]), None),
            Outcome::Seen
        );
        assert_eq!(store.len(), 10);
        assert_eq!(store.dropped(), 1);
    }

    #[test]
    fn parent_roundtrips_through_trace_aux() {
        let (codec, packed) = setup();
        let store = Store::new(codec.words_used(), 2, usize::MAX, true);
        let root = packed[0];
        store.try_insert(&root, codec.fingerprint(&root), None);
        let action = ModelAction::Vote { node: 2, phase: 3, round: 1, value: 1 };
        store.try_insert(&packed[1], codec.fingerprint(&packed[1]), Some((&root, action)));
        assert_eq!(store.parent(&root, codec.fingerprint(&root)), None, "roots have no parent");
        assert_eq!(store.parent(&packed[1], codec.fingerprint(&packed[1])), Some((root, action)));
        assert_eq!(store.parent(&packed[2], codec.fingerprint(&packed[2])), None, "absent state");
    }
}
