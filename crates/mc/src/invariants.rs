//! The paper's `ConsistencyInvariant` (TLA+ Appendix B, lines 264–273),
//! ported clause by clause. The theorem chain the paper verifies with
//! Apalache is:
//!
//! ```text
//! Init ⇒ ConsistencyInvariant
//! ConsistencyInvariant ∧ Next ⇒ ConsistencyInvariant'   (inductiveness)
//! ConsistencyInvariant ⇒ Consistency                    (agreement)
//! ```
//!
//! The property tests in this crate sample the second obligation at the
//! paper's full bounds; [`crate::Explorer`] checks the first and third
//! exhaustively at reduced bounds.

use crate::model::{ModelCfg, State};

/// `Consistency`: no two different values are decided.
pub fn consistency(cfg: &ModelCfg, state: &State) -> bool {
    state.decided(cfg).len() <= 1
}

/// `NoFutureVote`: honest nodes never hold votes above their round.
pub fn no_future_vote(_cfg: &ModelCfg, state: &State) -> bool {
    state
        .votes
        .iter()
        .zip(&state.round)
        .all(|(table, round)| table.iter().all(|vt| (vt.round as i8) <= *round))
}

/// `VoteHasQuorumInPreviousPhase`: every phase ≥ 2 vote is justified by a
/// quorum in the previous phase (with the angelic Byzantine contribution).
pub fn vote_has_quorum_in_previous_phase(cfg: &ModelCfg, state: &State) -> bool {
    state.votes.iter().all(|table| {
        table
            .iter()
            .filter(|vt| vt.phase > 1)
            .all(|vt| state.accepted(cfg, vt.value, vt.round, vt.phase - 1))
    })
}

/// `NoneOtherChoosableAt(r, v)`: a quorum either voted `v` at `r` in phase 4
/// or can no longer vote at `r` (round passed, no phase-4 vote there).
fn none_other_choosable_at(cfg: &ModelCfg, state: &State, round: u8, value: u8) -> bool {
    let supporting = (0..cfg.honest())
        .filter(|&p| {
            let voted_for = state.votes[p].get(round, 4) == Some(value);
            let cannot_vote =
                state.round[p] > round as i8 && state.votes[p].get(round, 4).is_none();
            voted_for || cannot_vote
        })
        .count();
    supporting >= cfg.honest_quorum()
}

/// `SafeAt(r, v)`: no other value can gather a phase-4 quorum below `r`.
pub fn safe_at(cfg: &ModelCfg, state: &State, round: u8, value: u8) -> bool {
    (0..round).all(|c| none_other_choosable_at(cfg, state, c, value))
}

/// `VotesSafe`: every honest vote is for a value safe at its round.
pub fn votes_safe(cfg: &ModelCfg, state: &State) -> bool {
    state.votes.iter().all(|table| table.iter().all(|vt| safe_at(cfg, state, vt.round, vt.value)))
}

/// The full `ConsistencyInvariant` conjunction. (`TypeOK` and
/// `OneValuePerPhasePerRound` are structural in this representation.)
pub fn consistency_invariant(cfg: &ModelCfg, state: &State) -> bool {
    no_future_vote(cfg, state)
        && vote_has_quorum_in_previous_phase(cfg, state)
        && votes_safe(cfg, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelCfg {
        ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 5 }
    }

    #[test]
    fn initial_state_satisfies_everything() {
        let s = State::initial(&cfg());
        assert!(consistency_invariant(&cfg(), &s));
        assert!(consistency(&cfg(), &s));
    }

    #[test]
    fn future_vote_is_rejected() {
        let mut s = State::initial(&cfg());
        s.votes[0].set(2, 1, 0); // round 2 vote while round[0] = -1
        assert!(!no_future_vote(&cfg(), &s));
    }

    #[test]
    fn unjustified_phase2_vote_is_rejected() {
        let mut s = State::initial(&cfg());
        s.round[0] = 0;
        s.votes[0].set(0, 2, 0);
        assert!(!vote_has_quorum_in_previous_phase(&cfg(), &s));
        // With a phase-1 quorum behind it, it passes.
        s.votes[0].set(0, 1, 0);
        s.votes[1].set(0, 1, 0);
        s.round[1] = 0;
        assert!(vote_has_quorum_in_previous_phase(&cfg(), &s));
    }

    #[test]
    fn invariant_implies_consistency_on_forged_disagreement() {
        // A disagreeing state must violate VotesSafe — this is the
        // `ConsistencyInvariant ⇒ Consistency` theorem in miniature.
        let mut s = State::initial(&cfg());
        s.round = vec![1, 1, 1];
        for p in 0..2 {
            for phase in 1..=4 {
                s.votes[p].set(0, phase, 0);
            }
        }
        for p in 0..2 {
            for phase in 1..=4 {
                s.votes[p].set(1, phase, 1);
            }
        }
        assert!(!consistency(&cfg(), &s));
        assert!(!votes_safe(&cfg(), &s));
    }
}
