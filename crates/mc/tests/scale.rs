//! Integration coverage for the scaled explorer: cross-engine
//! equivalence against the legacy clone-based BFS, thread and
//! disk-spill determinism, budget semantics, and counterexample traces.

use tetrabft_mc::{Codec, Explorer, LegacyExplorer, ModelCfg, State};

fn tiny() -> ModelCfg {
    ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 }
}

/// With value symmetry off, the packed engine explores exactly the same
/// quotient as the legacy engine (one representative per honest-node
/// orbit), so every aggregate must match — states, transitions, depth,
/// and verdicts. This pins the packed codec + incremental expansion to
/// the legacy `State::apply`/`canonical` semantics.
#[test]
fn packed_node_symmetry_matches_legacy_engine_exactly() {
    for cfg in [
        tiny(),
        ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 1 },
        ModelCfg { nodes: 5, byzantine: 1, values: 2, rounds: 1 },
    ] {
        let legacy = LegacyExplorer::new(cfg).check_inductive(true).run(5_000_000);
        let packed = Explorer::new(cfg).value_symmetry(false).check_inductive(true).run(5_000_000);
        assert!(legacy.exhausted && packed.exhausted, "{cfg:?} must be exhaustible");
        assert_eq!(legacy.states, packed.states, "{cfg:?}: orbit counts must match");
        assert_eq!(legacy.transitions, packed.transitions, "{cfg:?}");
        assert_eq!(legacy.depth, packed.depth, "{cfg:?}");
        assert_eq!(legacy.violations, packed.violations, "{cfg:?}");
        assert_eq!(legacy.invariant_violations, packed.invariant_violations, "{cfg:?}");
        assert_eq!(legacy.violations, 0);
    }
}

/// The full engine matrix — threads × frontier spill — produces one
/// identical report on an exhausted run.
#[test]
fn engine_matrix_is_deterministic() {
    let cfg = tiny();
    let reference = Explorer::new(cfg).run(5_000_000);
    assert!(reference.exhausted);
    for threads in [1, 2, 3] {
        for frontier_mem in [usize::MAX, 16] {
            let report =
                Explorer::new(cfg).threads(threads).frontier_mem(frontier_mem).run(5_000_000);
            assert_eq!(report, reference, "threads={threads} frontier_mem={frontier_mem} diverged");
        }
    }
}

/// Truncated single-threaded runs are reproducible and report exact
/// budget accounting.
#[test]
fn truncated_runs_report_budget_accounting() {
    let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
    let a = Explorer::new(cfg).run(10_000);
    let b = Explorer::new(cfg).run(10_000);
    assert_eq!(a, b, "single-threaded truncated runs must be reproducible");
    assert_eq!(a.states, 10_000);
    assert!(a.truncated && !a.exhausted);
    assert!(a.dropped > 0);
    assert_eq!(a.violations, 0);
}

/// The packed explorer sweeps a paper-bounds frontier (3 values ×
/// 5 rounds) through a deliberately tiny in-RAM frontier, exercising the
/// disk spill path, with zero violations.
#[test]
fn paper_bounds_sweep_spills_to_disk_and_stays_safe() {
    let (report, stats) = Explorer::new(ModelCfg::paper()).frontier_mem(64).run_with_stats(60_000);
    assert_eq!(report.states, 60_000, "budget fills at paper bounds");
    assert!(report.truncated);
    assert!(stats.spilled_states > 0, "a 64-record frontier must spill at this scale");
    assert_eq!(report.violations, 0);
    assert_eq!(stats.frontier_record_bytes, 24, "paper bounds pack into three words");
}

/// End-to-end counterexample flow: a forged near-disagreement yields a
/// shortest trace whose replay (modulo canonicalization) reproduces every
/// step and ends in two decided values.
#[test]
fn forged_disagreement_traces_to_two_decided_values() {
    let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
    let mut forged = State::initial(&cfg);
    forged.round = vec![1, 1, 1];
    for p in 0..2 {
        for phase in 1..=4 {
            forged.votes[p].set(0, phase, 0);
        }
        for phase in 1..=3 {
            forged.votes[p].set(1, phase, 1);
        }
    }
    for threads in [1, 4] {
        let report = Explorer::new(cfg)
            .with_initial(forged.clone())
            .trace(true)
            .threads(threads)
            .run(1_000_000);
        assert!(report.exhausted);
        assert!(report.violations > 0);
        let trace = report.counterexample.expect("violations imply a trace");
        assert_eq!(trace.decided.len(), 2, "trace ends in two decided values");
        assert_eq!(trace.steps.len(), 2, "a phase-4 quorum needs two more votes");
        assert_eq!(trace.last_state().decided(&cfg), trace.decided);

        let codec = Codec::new(&cfg, true);
        let mut replay = trace.initial.clone();
        for step in &trace.steps {
            replay = replay.apply(step.action);
            assert_eq!(
                codec.canonical(&replay),
                codec.canonical(&step.state),
                "replayed step must land in the recorded state's orbit"
            );
            replay = step.state.clone();
        }
        let rendered = format!("{trace}");
        assert!(rendered.contains("decided values"), "{rendered}");
    }
}

/// A forged state that *already* disagrees produces a zero-step trace.
#[test]
fn already_violating_initial_state_traces_immediately() {
    let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
    let mut forged = State::initial(&cfg);
    for p in 0..2 {
        forged.votes[p].set(0, 4, 0);
    }
    for p in 1..3 {
        forged.votes[p].set(1, 4, 1);
    }
    let report = Explorer::new(cfg).with_initial(forged).trace(true).run(100_000);
    assert!(report.violations > 0);
    let trace = report.counterexample.expect("trace");
    assert_eq!(trace.steps.len(), 0, "the initial state itself violates agreement");
    assert_eq!(trace.decided.len(), 2);
}

/// Two-round bounded sweep with the packed engine — the successor of the
/// old slow `two_rounds_bounded_exploration_is_safe` test, now exhausting
/// the space outright inside the test budget.
#[test]
fn two_rounds_exhausted_and_safe() {
    let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
    let report = Explorer::new(cfg).run(5_000_000);
    assert!(report.exhausted, "2 values × 2 rounds must now be exhaustible in-test");
    assert_eq!(report.violations, 0);
    assert!(report.states > 100_000, "the space is six figures of canonical states");
}
