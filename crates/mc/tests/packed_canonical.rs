//! Property coverage for the packed codec and the symmetry reduction:
//! canonicalization is idempotent and invariant under honest-node and
//! value permutations, and packed encode/decode roundtrips every
//! generated `State` — including unreachable ones, since the seen-set
//! must never confuse two distinct states.

use proptest::prelude::*;

use tetrabft_mc::{Codec, ModelCfg, State};

fn paper() -> ModelCfg {
    ModelCfg::paper()
}

/// The 6 permutations of `[0, 1, 2]` — used for both the 3 honest nodes
/// and the 3 values of the paper instance.
const PERMS3: [[usize; 3]; 6] = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];

/// An arbitrary (not necessarily reachable) state within the paper
/// bounds: random per-node rounds and a random batch of vote entries.
fn state_strategy() -> impl Strategy<Value = State> {
    let cfg = paper();
    let entry = (0usize..cfg.honest(), 0..cfg.rounds, 1u8..=4, 0..cfg.values);
    (
        proptest::collection::vec(-1i8..cfg.rounds as i8, cfg.honest()..=cfg.honest()),
        proptest::collection::vec(entry, 0..24),
    )
        .prop_map(move |(rounds, entries)| {
            let mut s = State::initial(&cfg);
            s.round = rounds;
            for (node, round, phase, value) in entries {
                s.votes[node].set(round, phase, value);
            }
            s
        })
}

fn permute_nodes(s: &State, perm: &[usize; 3]) -> State {
    State {
        votes: perm.iter().map(|&i| s.votes[i].clone()).collect(),
        round: perm.iter().map(|&i| s.round[i]).collect(),
    }
}

fn permute_values(cfg: &ModelCfg, s: &State, perm: &[usize; 3]) -> State {
    let mut out = State::initial(cfg);
    out.round = s.round.clone();
    for (p, table) in s.votes.iter().enumerate() {
        for vote in table.iter() {
            out.votes[p].set(vote.round, vote.phase, perm[vote.value as usize] as u8);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `decode ∘ encode` is the identity on every state — node order and
    /// value labels included.
    #[test]
    fn packed_encode_decode_roundtrips(s in state_strategy()) {
        let codec = Codec::new(&paper(), true);
        prop_assert_eq!(codec.decode(&codec.encode(&s)), s);
    }

    /// Packed canonicalization is idempotent: canonicalizing the decoded
    /// canonical form changes nothing.
    #[test]
    fn packed_canonical_is_idempotent(s in state_strategy()) {
        let codec = Codec::new(&paper(), true);
        let c = codec.canonical(&s);
        prop_assert_eq!(codec.canonical(&codec.decode(&c)), c);
    }

    /// Permuting honest nodes never changes the canonical form (with or
    /// without value symmetry).
    #[test]
    fn packed_canonical_invariant_under_node_permutation(
        s in state_strategy(),
        perm in 0usize..6,
    ) {
        let permuted = permute_nodes(&s, &PERMS3[perm]);
        for value_symmetry in [true, false] {
            let codec = Codec::new(&paper(), value_symmetry);
            prop_assert_eq!(codec.canonical(&s), codec.canonical(&permuted));
        }
    }

    /// Relabeling values never changes the canonical form when value
    /// symmetry is on.
    #[test]
    fn packed_canonical_invariant_under_value_permutation(
        s in state_strategy(),
        perm in 0usize..6,
    ) {
        let codec = Codec::new(&paper(), true);
        let relabeled = permute_values(&paper(), &s, &PERMS3[perm]);
        prop_assert_eq!(codec.canonical(&s), codec.canonical(&relabeled));
    }

    /// Composing both symmetries still lands in the same orbit.
    #[test]
    fn packed_canonical_invariant_under_both_permutations(
        s in state_strategy(),
        node_perm in 0usize..6,
        value_perm in 0usize..6,
    ) {
        let codec = Codec::new(&paper(), true);
        let moved = permute_values(&paper(), &permute_nodes(&s, &PERMS3[node_perm]), &PERMS3[value_perm]);
        prop_assert_eq!(codec.canonical(&s), codec.canonical(&moved));
    }

    /// The legacy `State::canonical` (node symmetry only) is idempotent
    /// and invariant under honest-node permutation.
    #[test]
    fn state_canonical_idempotent_and_node_invariant(
        s in state_strategy(),
        perm in 0usize..6,
    ) {
        let c = s.canonical();
        prop_assert_eq!(c.canonical(), c.clone());
        prop_assert_eq!(permute_nodes(&s, &PERMS3[perm]).canonical(), c);
    }

    /// Distinct canonical forms decode to states in distinct orbits: the
    /// canonical form of the decoded state always maps back to itself,
    /// so the seen-set can never merge two inequivalent states.
    #[test]
    fn decode_of_canonical_is_a_faithful_representative(s in state_strategy()) {
        let codec = Codec::new(&paper(), true);
        let c = codec.canonical(&s);
        let rep = codec.decode(&c);
        // The representative is in the same orbit as `s` (some node +
        // value permutation maps one to the other).
        let found = PERMS3.iter().any(|np| {
            PERMS3.iter().any(|vp| permute_values(&paper(), &permute_nodes(&s, np), vp) == rep)
        });
        prop_assert!(found, "canonical representative must be in the input's orbit");
    }
}
