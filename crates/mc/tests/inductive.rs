//! Sampled verification of the paper's inductive-invariant obligations at
//! the **full paper bounds** (4 nodes, 1 Byzantine, 3 values, 5 views) —
//! the same instance Apalache verifies symbolically in Section 5:
//!
//! 1. `Init ⇒ ConsistencyInvariant`;
//! 2. `ConsistencyInvariant ∧ Next ⇒ ConsistencyInvariant'`;
//! 3. `ConsistencyInvariant ⇒ Consistency`.
//!
//! Obligation 2 is sampled two ways: along random walks from the initial
//! state (covering reachable states deeply), and from *constructed* states
//! assembled out of random quorum-backed vote chains (covering states no
//! short walk reaches, including ones adversarially close to disagreement).

use proptest::prelude::*;

use tetrabft_mc::invariants::{consistency, consistency_invariant};
use tetrabft_mc::{ModelCfg, State};

fn paper() -> ModelCfg {
    ModelCfg::paper()
}

#[test]
fn obligation_1_init_satisfies_invariant() {
    let cfg = paper();
    let s = State::initial(&cfg);
    assert!(consistency_invariant(&cfg, &s));
    assert!(consistency(&cfg, &s));
}

/// A randomly constructed "vote chain": some nodes progressed a value at a
/// round down to some phase depth, with at least an honest quorum at every
/// phase above the deepest (so `VoteHasQuorumInPreviousPhase` can hold).
#[derive(Debug, Clone)]
struct Chain {
    round: u8,
    value: u8,
    /// Per honest node: how many phases (0..=4) it completed.
    depth: Vec<u8>,
}

fn chain_strategy(cfg: ModelCfg) -> impl Strategy<Value = Chain> {
    let honest = cfg.honest();
    (0..cfg.rounds, 0..cfg.values, proptest::collection::vec(0u8..=4, honest..=honest)).prop_map(
        move |(round, value, mut depth)| {
            // Repair: phase k+1 votes need an honest quorum at phase k.
            // Sort a copy to find how deep a quorum reaches, then clamp.
            let mut sorted = depth.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let quorum_depth = sorted.get(cfg.honest_quorum() - 1).copied().unwrap_or(0);
            for d in &mut depth {
                // A node may be at most one phase beyond what a quorum of
                // the previous phase justifies.
                *d = (*d).min(quorum_depth + 1).min(4);
            }
            Chain { round, value, depth }
        },
    )
}

fn state_from_chains(cfg: &ModelCfg, chains: &[Chain]) -> State {
    let mut s = State::initial(cfg);
    for chain in chains {
        for (p, &depth) in chain.depth.iter().enumerate() {
            for phase in 1..=depth {
                // Respect the one-vote-per-(round, phase) structure: first
                // chain to claim a slot wins.
                if s.votes[p].get(chain.round, phase).is_none() {
                    s.votes[p].set(chain.round, phase, chain.value);
                }
            }
            if depth > 0 {
                s.round[p] = s.round[p].max(chain.round as i8);
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Obligation 2, sampled along random walks: every state reachable from
    /// Init satisfies the invariant and agreement after every step.
    #[test]
    fn obligation_2_random_walks(seed in any::<u64>(), steps in 1usize..60) {
        let cfg = paper();
        let mut state = State::initial(&cfg);
        let mut rng = seed;
        for _ in 0..steps {
            prop_assert!(consistency_invariant(&cfg, &state));
            prop_assert!(consistency(&cfg, &state));
            let actions = state.enabled_actions(&cfg);
            if actions.is_empty() {
                break;
            }
            // Deterministic xorshift so failures replay exactly.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let action = actions[(rng as usize) % actions.len()];
            state = state.apply(action);
        }
        prop_assert!(consistency_invariant(&cfg, &state));
        prop_assert!(consistency(&cfg, &state));
    }

    /// Obligation 2, sampled from constructed invariant states: apply every
    /// enabled action and require the invariant (and agreement) to survive.
    #[test]
    fn obligation_2_constructed_states(
        chains in proptest::collection::vec(chain_strategy(ModelCfg::paper()), 1..5),
        extra_rounds in proptest::collection::vec(-1i8..5, 3..=3),
    ) {
        let cfg = paper();
        let mut state = state_from_chains(&cfg, &chains);
        for (p, r) in extra_rounds.iter().enumerate() {
            state.round[p] = state.round[p].max(*r);
        }
        // Only states satisfying the invariant are premises of the
        // inductive step.
        prop_assume!(consistency_invariant(&cfg, &state));
        for action in state.enabled_actions(&cfg) {
            let next = state.apply(action);
            prop_assert!(
                consistency_invariant(&cfg, &next),
                "invariant broken by {action:?}"
            );
            prop_assert!(consistency(&cfg, &next), "agreement broken by {action:?}");
        }
    }

    /// Obligation 3 on the same constructed distribution: invariant states
    /// never disagree.
    #[test]
    fn obligation_3_invariant_implies_consistency(
        chains in proptest::collection::vec(chain_strategy(ModelCfg::paper()), 1..5),
    ) {
        let cfg = paper();
        let state = state_from_chains(&cfg, &chains);
        if consistency_invariant(&cfg, &state) {
            prop_assert!(consistency(&cfg, &state));
        }
    }
}
