//! Checked, panic-free byte reader.

use crate::WireError;

/// Cursor over an input buffer; every read is bounds-checked.
///
/// # Examples
///
/// ```
/// use tetrabft_wire::Reader;
/// let mut r = Reader::new(&[0, 0, 0, 5]);
/// assert_eq!(r.get_u32()?, 5);
/// assert_eq!(r.remaining(), 0);
/// # Ok::<(), tetrabft_wire::WireError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if the buffer is exhausted.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than two bytes remain.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than four bytes remain.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than eight bytes remain.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an LEB128 varint into a `u64`.
    ///
    /// The decoder is strict: at most ten bytes, the tenth may only carry
    /// the final bit (`0x00`/`0x01`), and overlong paddings — a value whose
    /// last group is zero but was not encoded in fewer bytes — are rejected
    /// so every value has exactly one accepted encoding.
    ///
    /// # Errors
    ///
    /// * [`WireError::UnexpectedEof`] — the buffer ends mid-varint;
    /// * [`WireError::VarintOverflow`] — more than 64 bits of payload;
    /// * [`WireError::VarintOverlong`] — non-canonical padding.
    ///
    /// Failed reads do not consume input.
    pub fn get_varint_u64(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        for i in 0..10 {
            let Some(&byte) = self.buf.get(self.pos + i) else {
                return Err(WireError::UnexpectedEof {
                    needed: i + 1,
                    available: self.remaining(),
                });
            };
            if i == 9 && byte > 0x01 {
                // The tenth byte holds bit 63 only; anything else overflows
                // (or keeps the continuation bit set past the maximum width).
                return Err(WireError::VarintOverflow { target: "u64" });
            }
            value |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                if i > 0 && byte == 0 {
                    return Err(WireError::VarintOverlong);
                }
                self.pos += i + 1;
                return Ok(value);
            }
        }
        unreachable!("the tenth byte always terminates or errors")
    }

    /// Reads a varint that must fit in a `u32`.
    ///
    /// # Errors
    ///
    /// As [`Reader::get_varint_u64`], plus [`WireError::VarintOverflow`]
    /// when the value exceeds `u32::MAX`. Failed reads do not consume input.
    pub fn get_varint_u32(&mut self) -> Result<u32, WireError> {
        let checkpoint = self.pos;
        let v = self.get_varint_u64()?;
        u32::try_from(v).map_err(|_| {
            self.pos = checkpoint;
            WireError::VarintOverflow { target: "u32" }
        })
    }

    /// Reads a varint that must fit in a `u16`.
    ///
    /// # Errors
    ///
    /// As [`Reader::get_varint_u64`], plus [`WireError::VarintOverflow`]
    /// when the value exceeds `u16::MAX`. Failed reads do not consume input.
    pub fn get_varint_u16(&mut self) -> Result<u16, WireError> {
        let checkpoint = self.pos;
        let v = self.get_varint_u64()?;
        u16::try_from(v).map_err(|_| {
            self.pos = checkpoint;
            WireError::VarintOverflow { target: "u16" }
        })
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    #[inline]
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a fixed-size byte array.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than `N` bytes remain.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads() {
        let bytes = [1, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 4, 9, 9];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u16().unwrap(), 2);
        assert_eq!(r.get_u32().unwrap(), 3);
        assert_eq!(r.get_u64().unwrap(), 4);
        assert_eq!(r.get_slice(2).unwrap(), &[9, 9]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1]);
        assert_eq!(r.get_u32(), Err(WireError::UnexpectedEof { needed: 4, available: 1 }));
        // Failed reads do not consume input.
        assert_eq!(r.get_u8().unwrap(), 1);
    }

    #[test]
    fn varint_roundtrip_and_limits() {
        use crate::Writer;
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u64::from(u32::MAX), u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let mut r = Reader::new(w.as_bytes());
            assert_eq!(r.get_varint_u64().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_overlong_rejected() {
        // 0 padded to two bytes; canonical form is [0x00].
        let mut r = Reader::new(&[0x80, 0x00]);
        assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverlong));
        // 1 padded to two bytes; canonical form is [0x01].
        let mut r = Reader::new(&[0x81, 0x00]);
        assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverlong));
    }

    #[test]
    fn varint_truncation_is_eof() {
        let mut r = Reader::new(&[0xff, 0xff]);
        assert!(matches!(r.get_varint_u64(), Err(WireError::UnexpectedEof { .. })));
        // Failed reads do not consume input.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn varint_overflow_rejected() {
        // Ten bytes whose last carries more than bit 63.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x02);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverflow { target: "u64" }));
        // Eleventh continuation byte can never be reached.
        let mut r = Reader::new(&[0xff; 11]);
        assert_eq!(r.get_varint_u64(), Err(WireError::VarintOverflow { target: "u64" }));
    }

    #[test]
    fn narrow_varints_range_check_without_consuming() {
        let mut w = crate::Writer::new();
        w.put_varint(u64::from(u16::MAX) + 1);
        let mut r = Reader::new(w.as_bytes());
        assert_eq!(r.get_varint_u16(), Err(WireError::VarintOverflow { target: "u16" }));
        // The failed narrow read left the cursor untouched…
        assert_eq!(r.get_varint_u32().unwrap(), 65536);
        // …and a value beyond u32 fails the u32 reader the same way.
        let mut w = crate::Writer::new();
        w.put_varint(u64::from(u32::MAX) + 1);
        let mut r = Reader::new(w.as_bytes());
        assert_eq!(r.get_varint_u32(), Err(WireError::VarintOverflow { target: "u32" }));
        assert_eq!(r.get_varint_u64().unwrap(), u64::from(u32::MAX) + 1);
    }

    #[test]
    fn fixed_arrays() {
        let mut r = Reader::new(&[5, 6, 7, 8]);
        let arr: [u8; 4] = r.get_array().unwrap();
        assert_eq!(arr, [5, 6, 7, 8]);
        let err: Result<[u8; 1], _> = r.get_array();
        assert!(err.is_err());
    }
}
