//! Checked, panic-free byte reader.

use crate::WireError;

/// Cursor over an input buffer; every read is bounds-checked.
///
/// # Examples
///
/// ```
/// use tetrabft_wire::Reader;
/// let mut r = Reader::new(&[0, 0, 0, 5]);
/// assert_eq!(r.get_u32()?, 5);
/// assert_eq!(r.remaining(), 0);
/// # Ok::<(), tetrabft_wire::WireError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if the buffer is exhausted.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than two bytes remain.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than four bytes remain.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than eight bytes remain.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    #[inline]
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a fixed-size byte array.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than `N` bytes remain.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads() {
        let bytes = [1, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 4, 9, 9];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u16().unwrap(), 2);
        assert_eq!(r.get_u32().unwrap(), 3);
        assert_eq!(r.get_u64().unwrap(), 4);
        assert_eq!(r.get_slice(2).unwrap(), &[9, 9]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn eof_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1]);
        assert_eq!(r.get_u32(), Err(WireError::UnexpectedEof { needed: 4, available: 1 }));
        // Failed reads do not consume input.
        assert_eq!(r.get_u8().unwrap(), 1);
    }

    #[test]
    fn fixed_arrays() {
        let mut r = Reader::new(&[5, 6, 7, 8]);
        let arr: [u8; 4] = r.get_array().unwrap();
        assert_eq!(arr, [5, 6, 7, 8]);
        let err: Result<[u8; 1], _> = r.get_array();
        assert!(err.is_err());
    }
}
