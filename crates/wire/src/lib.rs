//! Hand-rolled binary codec and TCP framing for TetraBFT messages.
//!
//! An unauthenticated protocol's communication-complexity claims are stated
//! in *bits on the wire*, so this reproduction controls its own byte layout
//! instead of delegating to a general-purpose serializer. The codec — wire
//! format v2 — is:
//!
//! * **explicit** — every field is written/read by hand: integer kernel
//!   types ([`View`](tetrabft_types::View), [`Slot`](tetrabft_types::Slot),
//!   [`NodeId`](tetrabft_types::NodeId)) and lengths are LEB128 varints,
//!   hashes and values fixed-width big-endian;
//! * **total** — decoding never panics; all failures are [`WireError`]s;
//! * **strict** — [`from_bytes`](Wire::from_bytes) rejects trailing bytes,
//!   and varint decoding rejects overlong paddings, so every value has
//!   exactly one accepted encoding.
//!
//! The [`Wire`] trait is implemented here for primitives and for the kernel
//! types of [`tetrabft_types`]; protocol crates implement it for their
//! message enums (delta-compressing view numbers against the message's own
//! view where both ends share that context). [`frame`] provides the
//! varint-length-prefixed stream framing used by the TCP transport.
//!
//! # Examples
//!
//! ```
//! use tetrabft_wire::Wire;
//! use tetrabft_types::View;
//!
//! let bytes = View(7).to_bytes();
//! assert_eq!(View::from_bytes(&bytes)?, View(7));
//! # Ok::<(), tetrabft_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod frame;
mod primitives;
mod reader;
mod writer;

pub use error::WireError;
pub use reader::Reader;
pub use writer::{varint_len, Writer};

/// Types that can be encoded to and decoded from the TetraBFT wire format.
///
/// Implementations must be lossless: `decode(encode(x)) == x` for every value
/// `x`. The property tests in this crate and in the protocol crates check
/// this round-trip for every message type.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes a value from the front of `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a value from `bytes`, requiring every byte to be consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if input remains after decoding,
    /// or any error from [`Wire::decode`].
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(value)
    }

    /// Number of bytes `self` occupies on the wire.
    fn wire_len(&self) -> usize {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.len()
    }
}
