//! [`Wire`] implementations for primitives and kernel types.
//!
//! Wire format v2: the integer kernel types ([`View`], [`Slot`], [`NodeId`])
//! and all sequence lengths are LEB128 varints, so realistic values cost one
//! byte instead of their fixed width. The raw `uN` impls stay fixed-width
//! big-endian — they are the explicit choice for uniformly-distributed
//! payloads (hashes, [`Value`]) where a varint would *cost* bytes.

use tetrabft_types::{NodeId, Phase, Slot, Value, View, VoteInfo};

use crate::{Reader, Wire, WireError, Writer};

/// Sanity limit on decoded collection lengths (elements).
///
/// Protects decoders from hostile length prefixes; generous enough for any
/// realistic system size (the paper targets hundreds of thousands of nodes,
/// but no single message ever carries more than `n` records).
pub(crate) const MAX_SEQ_LEN: usize = 1 << 20;

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u8()
    }
}

impl Wire for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u16()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { what: "bool", tag }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(inner) => {
                w.put_u8(1);
                inner.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { what: "Option", tag }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        debug_assert!(self.len() <= MAX_SEQ_LEN, "sequence exceeds wire limit");
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Range-check in the u64 domain before narrowing: a cast-first
        // check would truncate on 32-bit targets and let two builds of the
        // same node disagree on which encodings are valid.
        let declared = r.get_varint_u64()?;
        if declared > MAX_SEQ_LEN as u64 {
            let declared = usize::try_from(declared).unwrap_or(usize::MAX);
            return Err(WireError::LengthOverflow { declared, limit: MAX_SEQ_LEN });
        }
        let len = declared as usize;
        // Cap the pre-allocation by what the input could possibly hold, so a
        // hostile length prefix cannot force a huge allocation.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Wire for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(u64::from(self.0));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.get_varint_u16()?))
    }
}

impl Wire for View {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(View(r.get_varint_u64()?))
    }
}

impl Wire for Slot {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Slot(r.get_varint_u64()?))
    }
}

impl Wire for Value {
    fn encode(&self, w: &mut Writer) {
        w.put_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Value(r.get_array()?))
    }
}

impl Wire for Phase {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.as_u8());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        Phase::from_u8(tag).ok_or(WireError::InvalidTag { what: "Phase", tag })
    }
}

impl Wire for VoteInfo {
    fn encode(&self, w: &mut Writer) {
        self.view.encode(w);
        self.value.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VoteInfo { view: View::decode(r)?, value: Value::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
        assert_eq!(value.wire_len(), bytes.len());
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0xABu8);
        roundtrip(0x1234u16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn kernel_type_roundtrips() {
        roundtrip(NodeId(9));
        roundtrip(View(123456));
        roundtrip(Slot(42));
        roundtrip(Value::from_u64(777));
        for p in Phase::ALL {
            roundtrip(p);
        }
        roundtrip(VoteInfo::new(View(5), Value::from_u64(6)));
    }

    #[test]
    fn option_roundtrips() {
        roundtrip(Option::<VoteInfo>::None);
        roundtrip(Some(VoteInfo::new(View(1), Value::from_u64(2))));
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![NodeId(0), NodeId(1), NodeId(65535)]);
    }

    #[test]
    fn bad_bool_tag() {
        assert_eq!(bool::from_bytes(&[7]), Err(WireError::InvalidTag { what: "bool", tag: 7 }));
    }

    #[test]
    fn bad_phase_tag() {
        assert_eq!(Phase::from_bytes(&[0]), Err(WireError::InvalidTag { what: "Phase", tag: 0 }));
        assert_eq!(Phase::from_bytes(&[5]), Err(WireError::InvalidTag { what: "Phase", tag: 5 }));
    }

    #[test]
    fn hostile_vec_length_is_rejected_without_allocation() {
        // Declared length u32::MAX (varint) with no body.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0x0f];
        let err = Vec::<u64>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverflow { .. }));
    }

    #[test]
    fn kernel_types_are_varint_sized() {
        assert_eq!(View(0).wire_len(), 1);
        assert_eq!(View(127).wire_len(), 1);
        assert_eq!(View(128).wire_len(), 2);
        assert_eq!(View(u64::MAX).wire_len(), 10);
        assert_eq!(Slot(5).wire_len(), 1);
        assert_eq!(NodeId(3).wire_len(), 1);
        assert_eq!(NodeId(u16::MAX).wire_len(), 3);
        // A realistic vote is view + value: 1 + 8 bytes, down from 16.
        assert_eq!(VoteInfo::new(View(9), Value::from_u64(1)).wire_len(), 9);
    }

    #[test]
    fn node_id_wider_than_u16_is_rejected() {
        let mut w = Writer::new();
        w.put_varint(1 << 16);
        assert_eq!(
            NodeId::from_bytes(w.as_bytes()),
            Err(WireError::VarintOverflow { target: "u16" })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = View(1).to_bytes();
        bytes.push(0);
        assert_eq!(View::from_bytes(&bytes), Err(WireError::TrailingBytes { remaining: 1 }));
    }
}
