//! [`Wire`] implementations for primitives and kernel types.

use tetrabft_types::{NodeId, Phase, Slot, Value, View, VoteInfo};

use crate::{Reader, Wire, WireError, Writer};

/// Sanity limit on decoded collection lengths (elements).
///
/// Protects decoders from hostile length prefixes; generous enough for any
/// realistic system size (the paper targets hundreds of thousands of nodes,
/// but no single message ever carries more than `n` records).
pub(crate) const MAX_SEQ_LEN: usize = 1 << 20;

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u8()
    }
}

impl Wire for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u16()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { what: "bool", tag }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(inner) => {
                w.put_u8(1);
                inner.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { what: "Option", tag }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        debug_assert!(self.len() <= MAX_SEQ_LEN, "sequence exceeds wire limit");
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_u32()? as usize;
        if len > MAX_SEQ_LEN {
            return Err(WireError::LengthOverflow { declared: len, limit: MAX_SEQ_LEN });
        }
        // Cap the pre-allocation by what the input could possibly hold, so a
        // hostile length prefix cannot force a huge allocation.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Wire for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.get_u16()?))
    }
}

impl Wire for View {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(View(r.get_u64()?))
    }
}

impl Wire for Slot {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Slot(r.get_u64()?))
    }
}

impl Wire for Value {
    fn encode(&self, w: &mut Writer) {
        w.put_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Value(r.get_array()?))
    }
}

impl Wire for Phase {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.as_u8());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        Phase::from_u8(tag).ok_or(WireError::InvalidTag { what: "Phase", tag })
    }
}

impl Wire for VoteInfo {
    fn encode(&self, w: &mut Writer) {
        self.view.encode(w);
        self.value.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VoteInfo { view: View::decode(r)?, value: Value::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
        assert_eq!(value.wire_len(), bytes.len());
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0xABu8);
        roundtrip(0x1234u16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn kernel_type_roundtrips() {
        roundtrip(NodeId(9));
        roundtrip(View(123456));
        roundtrip(Slot(42));
        roundtrip(Value::from_u64(777));
        for p in Phase::ALL {
            roundtrip(p);
        }
        roundtrip(VoteInfo::new(View(5), Value::from_u64(6)));
    }

    #[test]
    fn option_roundtrips() {
        roundtrip(Option::<VoteInfo>::None);
        roundtrip(Some(VoteInfo::new(View(1), Value::from_u64(2))));
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![NodeId(0), NodeId(1), NodeId(65535)]);
    }

    #[test]
    fn bad_bool_tag() {
        assert_eq!(bool::from_bytes(&[7]), Err(WireError::InvalidTag { what: "bool", tag: 7 }));
    }

    #[test]
    fn bad_phase_tag() {
        assert_eq!(Phase::from_bytes(&[0]), Err(WireError::InvalidTag { what: "Phase", tag: 0 }));
        assert_eq!(Phase::from_bytes(&[5]), Err(WireError::InvalidTag { what: "Phase", tag: 5 }));
    }

    #[test]
    fn hostile_vec_length_is_rejected_without_allocation() {
        // Declared length u32::MAX with a 4-byte body.
        let bytes = u32::MAX.to_be_bytes();
        let err = Vec::<u64>::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WireError::LengthOverflow { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = View(1).to_bytes();
        bytes.push(0);
        assert_eq!(View::from_bytes(&bytes), Err(WireError::TrailingBytes { remaining: 1 }));
    }
}
