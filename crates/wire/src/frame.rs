//! Length-prefixed stream framing for the TCP transport.
//!
//! Each frame is a varint payload length followed by the payload, so the
//! dominant small messages (votes, view-changes) pay one prefix byte
//! instead of four. [`FrameDecoder`] is an incremental decoder suitable
//! for feeding arbitrary chunks read from a socket; it hands frames back
//! as borrowed slices of its own buffer — no per-frame copy.
//!
//! # Examples
//!
//! ```
//! use tetrabft_wire::frame::{encode_frame, FrameDecoder};
//!
//! let framed = encode_frame(b"hello")?;
//! let mut dec = FrameDecoder::new();
//! dec.extend(&framed[..3]); // partial chunk
//! assert_eq!(dec.next_frame()?, None);
//! dec.extend(&framed[3..]);
//! assert_eq!(dec.next_frame()?, Some(&b"hello"[..]));
//! # Ok::<(), tetrabft_wire::WireError>(())
//! ```

use crate::writer::{push_varint, varint_len};
use crate::{Reader, WireError};

/// Maximum accepted frame payload (16 MiB); larger prefixes are hostile.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Wraps `payload` in a varint-length-prefixed frame.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if `payload` exceeds [`MAX_FRAME_LEN`];
/// protocol messages are always orders of magnitude smaller, so hitting
/// this means the caller built something unsendable — the send path drops
/// the message instead of tearing the node down.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(varint_len(payload.len() as u64) + payload.len());
    encode_frame_into(payload, &mut out)?;
    Ok(out)
}

/// Appends a varint-length-prefixed frame for `payload` to `out`.
///
/// This is the allocation-free variant of [`encode_frame`]: the send path
/// encodes a message into a reused scratch buffer and frames it straight
/// into the (single) outbound allocation.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if `payload` exceeds [`MAX_FRAME_LEN`];
/// `out` is left untouched in that case.
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: payload.len(), limit: MAX_FRAME_LEN });
    }
    push_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    Ok(())
}

/// Incremental decoder for varint-length-prefixed frames.
///
/// Consumed bytes are tracked by a cursor and reclaimed lazily, so feeding
/// and draining a long stream stays amortized O(1) per byte. Decoded
/// frames are returned as slices borrowed from the internal buffer —
/// decode the message out of the slice before feeding the next chunk.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes received from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Drops already-consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Attempts to extract the next complete frame payload, borrowed from
    /// the decoder's buffer (zero-copy; valid until the next call).
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// * [`WireError::LengthOverflow`] — a frame declares a payload larger
    ///   than [`MAX_FRAME_LEN`];
    /// * [`WireError::VarintOverlong`] / [`WireError::VarintOverflow`] — a
    ///   hostile length prefix (padded or wider than 64 bits).
    ///
    /// On any error the stream should be torn down.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let pending = &self.buf[self.start..];
        // The prefix shares the strict varint decoder (one definition of
        // canonical form): an incomplete prefix reads as EOF, which here
        // just means "feed me more"; overlong/overflow stay hard errors.
        let mut prefix = Reader::new(pending);
        let declared = match prefix.get_varint_u64() {
            Ok(v) => v,
            Err(WireError::UnexpectedEof { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        let idx = pending.len() - prefix.remaining();
        if declared > MAX_FRAME_LEN as u64 {
            // Compared in u64 so 32-bit targets reject what 64-bit ones do.
            let declared = usize::try_from(declared).unwrap_or(usize::MAX);
            return Err(WireError::LengthOverflow { declared, limit: MAX_FRAME_LEN });
        }
        let declared = declared as usize;
        if pending.len() < idx + declared {
            return Ok(None);
        }
        let frame_start = self.start + idx;
        self.start = frame_start + declared;
        Ok(Some(&self.buf[frame_start..frame_start + declared]))
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let framed = encode_frame(b"abc").unwrap();
        assert_eq!(framed, b"\x03abc");
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame().unwrap(), Some(&b"abc"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_payload_frame() {
        let framed = encode_frame(b"").unwrap();
        assert_eq!(framed, b"\x00");
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame().unwrap(), Some(&b""[..]));
    }

    #[test]
    fn multi_byte_prefix_frame() {
        let payload = vec![7u8; 300];
        let framed = encode_frame(&payload).unwrap();
        assert_eq!(&framed[..2], &[0xac, 0x02]); // varint 300
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame().unwrap(), Some(&payload[..]));
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut stream = encode_frame(b"one").unwrap();
        stream.extend_from_slice(&encode_frame(b"two").unwrap());
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap(), Some(&b"one"[..]));
        assert_eq!(dec.next_frame().unwrap(), Some(&b"two"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_by_byte_delivery() {
        let framed = encode_frame(b"slow").unwrap();
        let mut dec = FrameDecoder::new();
        for (i, b) in framed.iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap().map(<[u8]>::to_vec);
            if i + 1 == framed.len() {
                assert_eq!(got.as_deref(), Some(&b"slow"[..]));
            } else {
                assert_eq!(got, None);
            }
        }
    }

    #[test]
    fn hostile_length_rejected() {
        // Declares 2^32-1 — over the 16 MiB cap.
        let mut dec = FrameDecoder::new();
        dec.extend(&[0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(matches!(dec.next_frame(), Err(WireError::LengthOverflow { .. })));
    }

    #[test]
    fn hostile_overlong_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0x80, 0x00]);
        assert_eq!(dec.next_frame(), Err(WireError::VarintOverlong));
    }

    #[test]
    fn hostile_overwide_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0xff; 10]);
        assert_eq!(dec.next_frame(), Err(WireError::VarintOverflow { target: "u64" }));
    }

    #[test]
    fn partial_prefix_waits_for_more() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0xac]); // first byte of varint 300
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&[0x02]);
        assert_eq!(dec.next_frame().unwrap(), None); // prefix done, payload pending
        dec.extend(&vec![1u8; 300]);
        assert_eq!(dec.next_frame().unwrap().map(<[u8]>::len), Some(300));
    }

    #[test]
    fn oversize_payload_is_a_typed_error() {
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        assert_eq!(
            encode_frame(&payload).unwrap_err(),
            WireError::FrameTooLarge { len: MAX_FRAME_LEN + 1, limit: MAX_FRAME_LEN }
        );
        let mut out = vec![9u8];
        assert!(encode_frame_into(&payload, &mut out).is_err());
        assert_eq!(out, vec![9u8], "failed framing must not leave partial output");
    }

    #[test]
    fn encode_into_appends_after_existing_bytes() {
        let mut out = b"xx".to_vec();
        encode_frame_into(b"abc", &mut out).unwrap();
        assert_eq!(out, b"xx\x03abc");
    }
}
