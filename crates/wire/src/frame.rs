//! Length-prefixed stream framing for the TCP transport.
//!
//! Each frame is a big-endian `u32` payload length followed by the payload.
//! [`FrameDecoder`] is an incremental decoder suitable for feeding arbitrary
//! chunks read from a socket.
//!
//! # Examples
//!
//! ```
//! use tetrabft_wire::frame::{encode_frame, FrameDecoder};
//!
//! let framed = encode_frame(b"hello");
//! let mut dec = FrameDecoder::new();
//! dec.extend(&framed[..3]); // partial chunk
//! assert_eq!(dec.next_frame()?, None);
//! dec.extend(&framed[3..]);
//! assert_eq!(dec.next_frame()?.as_deref(), Some(&b"hello"[..]));
//! # Ok::<(), tetrabft_wire::WireError>(())
//! ```

use crate::WireError;

/// Maximum accepted frame payload (16 MiB); larger prefixes are hostile.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Wraps `payload` in a length-prefixed frame.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; protocol messages are
/// always orders of magnitude smaller.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental decoder for length-prefixed frames.
///
/// Consumed bytes are tracked by a cursor and reclaimed lazily, so feeding
/// and draining a long stream stays amortized O(1) per byte.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes received from the stream.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(chunk);
    }

    /// Drops already-consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Attempts to extract the next complete frame payload.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOverflow`] when a frame declares a payload larger
    /// than [`MAX_FRAME_LEN`]; the stream should then be torn down.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let pending = self.pending();
        if pending.len() < 4 {
            return Ok(None);
        }
        let declared =
            u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if declared > MAX_FRAME_LEN {
            return Err(WireError::LengthOverflow { declared, limit: MAX_FRAME_LEN });
        }
        if pending.len() < 4 + declared {
            return Ok(None);
        }
        let payload = pending[4..4 + declared].to_vec();
        self.start += 4 + declared;
        Ok(Some(payload))
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let framed = encode_frame(b"abc");
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_payload_frame() {
        let framed = encode_frame(b"");
        let mut dec = FrameDecoder::new();
        dec.extend(&framed);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let mut stream = encode_frame(b"one");
        stream.extend_from_slice(&encode_frame(b"two"));
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(dec.next_frame().unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_by_byte_delivery() {
        let framed = encode_frame(b"slow");
        let mut dec = FrameDecoder::new();
        for (i, b) in framed.iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap();
            if i + 1 == framed.len() {
                assert_eq!(got.as_deref(), Some(&b"slow"[..]));
            } else {
                assert_eq!(got, None);
            }
        }
    }

    #[test]
    fn hostile_length_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(WireError::LengthOverflow { .. })));
    }
}
