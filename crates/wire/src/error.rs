//! Codec error type.

use std::fmt;

/// Errors produced while decoding the TetraBFT wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// An enum discriminant or phase tag was out of range.
    InvalidTag {
        /// Name of the type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded the decoder's sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: usize,
        /// The maximum the decoder accepts.
        limit: usize,
    },
    /// Input remained after a strict whole-buffer decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A varint used more bytes than its canonical (minimal) encoding.
    ///
    /// Overlong LEB128 paddings are rejected so every value has exactly one
    /// wire representation — a malleability guard, not just pedantry.
    VarintOverlong,
    /// A varint encoded a value that does not fit its target type.
    VarintOverflow {
        /// Name of the integer type being decoded.
        target: &'static str,
    },
    /// A frame payload exceeded [`MAX_FRAME_LEN`](crate::frame::MAX_FRAME_LEN)
    /// at encode time.
    FrameTooLarge {
        /// The payload length.
        len: usize,
        /// The maximum the framer accepts.
        limit: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of input: needed {needed} bytes, had {available}")
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {what}")
            }
            WireError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            WireError::VarintOverlong => {
                write!(f, "overlong (non-canonical) varint encoding")
            }
            WireError::VarintOverflow { target } => {
                write!(f, "varint does not fit in {target}")
            }
            WireError::FrameTooLarge { len, limit } => {
                write!(f, "frame payload of {len} bytes exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for WireError {}
