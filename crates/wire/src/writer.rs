//! Append-only byte writer.

/// Number of bytes [`Writer::put_varint`] uses for `v`.
///
/// # Examples
///
/// ```
/// use tetrabft_wire::varint_len;
/// assert_eq!(varint_len(0), 1);
/// assert_eq!(varint_len(127), 1);
/// assert_eq!(varint_len(128), 2);
/// assert_eq!(varint_len(u64::MAX), 10);
/// ```
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ceil(bits / 7), with the zero value still occupying one byte.
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// The one LEB128 emit loop, shared by [`Writer::put_varint`] and the
/// frame encoder so the canonical form has a single definition.
#[inline]
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append-only writer the [`Wire`](crate::Wire) trait encodes into.
///
/// # Examples
///
/// ```
/// use tetrabft_wire::Writer;
/// let mut w = Writer::new();
/// w.put_u8(1);
/// w.put_u64(2);
/// assert_eq!(w.len(), 9);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer { buf: Vec::with_capacity(capacity) }
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an LEB128 varint: seven value bits per byte, little groups
    /// first, high bit set on every byte except the last.
    ///
    /// Small values — views, slots, node ids, lengths — cost one byte
    /// instead of their fixed width; `u64::MAX` costs ten.
    #[inline]
    pub fn put_varint(&mut self, v: u64) {
        push_varint(&mut self.buf, v);
    }

    /// Appends raw bytes verbatim (no length prefix).
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Empties the writer, keeping its allocation — the reuse hook for
    /// per-message encode paths (the TCP transport encodes every outbound
    /// message into one long-lived writer).
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0x0102);
        w.put_u32(0x03040506);
        w.put_u64(0x0708090A0B0C0D0E);
        w.put_slice(&[0xFF]);
        assert_eq!(
            w.into_bytes(),
            vec![0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0xFF]
        );
    }

    #[test]
    fn empty_and_capacity() {
        let w = Writer::with_capacity(64);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.as_bytes(), &[] as &[u8]);
    }

    #[test]
    fn varint_layout() {
        let encode = |v: u64| {
            let mut w = Writer::new();
            w.put_varint(v);
            w.into_bytes()
        };
        assert_eq!(encode(0), vec![0x00]);
        assert_eq!(encode(1), vec![0x01]);
        assert_eq!(encode(127), vec![0x7f]);
        assert_eq!(encode(128), vec![0x80, 0x01]);
        assert_eq!(encode(300), vec![0xac, 0x02]);
        assert_eq!(encode(u64::MAX), vec![0xff; 9].into_iter().chain([0x01]).collect::<Vec<_>>());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0, 1, 127, 128, 16383, 16384, 1 << 62, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            assert_eq!(varint_len(v), w.len(), "varint_len({v})");
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut w = Writer::with_capacity(4);
        w.put_u64(7);
        w.clear();
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.as_bytes(), &[1]);
    }
}
