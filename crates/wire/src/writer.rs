//! Append-only byte writer.

/// Append-only writer the [`Wire`](crate::Wire) trait encodes into.
///
/// # Examples
///
/// ```
/// use tetrabft_wire::Writer;
/// let mut w = Writer::new();
/// w.put_u8(1);
/// w.put_u64(2);
/// assert_eq!(w.len(), 9);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer { buf: Vec::with_capacity(capacity) }
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes verbatim (no length prefix).
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0x0102);
        w.put_u32(0x03040506);
        w.put_u64(0x0708090A0B0C0D0E);
        w.put_slice(&[0xFF]);
        assert_eq!(
            w.into_bytes(),
            vec![0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0xFF]
        );
    }

    #[test]
    fn empty_and_capacity() {
        let w = Writer::with_capacity(64);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.as_bytes(), &[] as &[u8]);
    }
}
