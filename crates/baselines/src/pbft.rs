//! A bounded-storage PBFT-style protocol — Table 1's latency champion
//! (3 message delays: pre-prepare, prepare, commit) whose weakness is the
//! view change: view-change messages carry O(n)-sized prepared
//! certificates and the new-view message carries the full set of n−f
//! view-changes (O(n²) bytes), for a worst-case total of **O(n³)** bits —
//! the scaling that experiment E6 measures and that makes the protocol
//! impractical at blockchain scale (Section 1.2).
//!
//! Recovery takes the paper's 7 delays: request → view-change → new-view →
//! ack → pre-prepare → prepare → commit. (The ack sits after new-view here
//! rather than before it as in Castro's thesis; the hop count — four extra
//! messages — is identical, which is what Table 1 records.)

use tetrabft_sim::{Context, Input, Node, TimerId, WireSize};
use tetrabft_types::{Config, NodeId, Value, View, VoteInfo};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

use crate::common::{PhaseRegisters, ViewChangeEngine, ViewChangeVerdict};
use tetrabft::Params;

const PREPARE: usize = 0;
const COMMIT: usize = 1;

/// The view timer.
pub const VIEW_TIMER: TimerId = TimerId(0);

/// One prepare vote inside a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareRecord {
    /// Voter.
    pub node: NodeId,
    /// View of the prepare.
    pub view: View,
    /// Prepared value.
    pub value: Value,
}

impl Wire for PrepareRecord {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        self.view.encode(w);
        self.value.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PrepareRecord {
            node: NodeId::decode(r)?,
            view: View::decode(r)?,
            value: Value::decode(r)?,
        })
    }
}

/// A full view-change record as bundled into a new-view message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcRecord {
    /// Originator of the view-change.
    pub node: NodeId,
    /// Its prepared value, if any.
    pub prepared: Option<VoteInfo>,
    /// Its prepared certificate — O(n) entries.
    pub cert: Vec<PrepareRecord>,
}

impl Wire for VcRecord {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        self.prepared.encode(w);
        self.cert.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VcRecord {
            node: NodeId::decode(r)?,
            prepared: Option::decode(r)?,
            cert: Vec::decode(r)?,
        })
    }
}

/// PBFT-style message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbftMsg {
    /// Leader's proposal.
    PrePrepare {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// First voting phase.
    Prepare {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// Second voting phase; a quorum decides.
    Commit {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// Timeout signal, requesting a move to `view`.
    Request {
        /// Requested view.
        view: View,
    },
    /// Certificate-carrying view change: O(n) bytes.
    ViewChange {
        /// Target view.
        view: View,
        /// Sender's prepared value.
        prepared: Option<VoteInfo>,
        /// Sender's prepared certificate.
        cert: Vec<PrepareRecord>,
    },
    /// The new leader's installation message: bundles n−f view-changes,
    /// O(n²) bytes.
    NewView {
        /// The new view.
        view: View,
        /// Value the leader will re-propose.
        value: Value,
        /// The collected view-change records.
        certs: Vec<VcRecord>,
    },
    /// Acknowledgement that the sender installed the new view.
    Ack {
        /// The acknowledged view.
        view: View,
    },
}

impl Wire for PbftMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            PbftMsg::PrePrepare { view, value } => {
                w.put_u8(1);
                view.encode(w);
                value.encode(w);
            }
            PbftMsg::Prepare { view, value } => {
                w.put_u8(2);
                view.encode(w);
                value.encode(w);
            }
            PbftMsg::Commit { view, value } => {
                w.put_u8(3);
                view.encode(w);
                value.encode(w);
            }
            PbftMsg::Request { view } => {
                w.put_u8(4);
                view.encode(w);
            }
            PbftMsg::ViewChange { view, prepared, cert } => {
                w.put_u8(5);
                view.encode(w);
                prepared.encode(w);
                cert.encode(w);
            }
            PbftMsg::NewView { view, value, certs } => {
                w.put_u8(6);
                view.encode(w);
                value.encode(w);
                certs.encode(w);
            }
            PbftMsg::Ack { view } => {
                w.put_u8(7);
                view.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(PbftMsg::PrePrepare { view: View::decode(r)?, value: Value::decode(r)? }),
            2 => Ok(PbftMsg::Prepare { view: View::decode(r)?, value: Value::decode(r)? }),
            3 => Ok(PbftMsg::Commit { view: View::decode(r)?, value: Value::decode(r)? }),
            4 => Ok(PbftMsg::Request { view: View::decode(r)? }),
            5 => Ok(PbftMsg::ViewChange {
                view: View::decode(r)?,
                prepared: Option::decode(r)?,
                cert: Vec::decode(r)?,
            }),
            6 => Ok(PbftMsg::NewView {
                view: View::decode(r)?,
                value: Value::decode(r)?,
                certs: Vec::decode(r)?,
            }),
            7 => Ok(PbftMsg::Ack { view: View::decode(r)? }),
            tag => Err(WireError::InvalidTag { what: "PbftMsg", tag }),
        }
    }
}

impl WireSize for PbftMsg {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
}

/// A peer's latest view-change: `(view, prepared, certificate)`.
type VcSlot = (View, Option<VoteInfo>, Vec<PrepareRecord>);

/// A well-behaved bounded-PBFT node.
#[derive(Debug)]
pub struct PbftNode {
    cfg: Config,
    params: Params,
    me: NodeId,
    input: Value,
    view: View,
    regs: PhaseRegisters<2>,
    requests: ViewChangeEngine,
    /// Per-peer latest view-change record.
    vcs: Vec<Option<VcSlot>>,
    /// Per-peer highest new-view ack.
    acks: Vec<Option<View>>,
    proposal: Option<(View, Value)>,
    sent: [Option<View>; 2],
    proposed: Option<View>,
    vc_broadcast: Option<View>,
    newview_sent: Option<View>,
    ack_sent: Option<View>,
    /// Set when an actual PrePrepare for the view arrived (a NewView's
    /// value announcement alone must not trigger prepares).
    preprepared: Option<View>,
    /// Persistent: the prepared value and its certificate.
    prepared: Option<VoteInfo>,
    cert: Vec<PrepareRecord>,
    decided: Option<Value>,
}

impl PbftNode {
    /// Creates a node with the given identity and input value.
    pub fn new(cfg: Config, params: Params, me: NodeId, input: Value) -> Self {
        PbftNode {
            cfg,
            params,
            me,
            input,
            view: View::ZERO,
            regs: PhaseRegisters::new(&cfg),
            requests: ViewChangeEngine::new(&cfg),
            vcs: vec![None; cfg.n()],
            acks: vec![None; cfg.n()],
            proposal: None,
            sent: [None; 2],
            proposed: None,
            vc_broadcast: None,
            newview_sent: None,
            ack_sent: None,
            preprepared: None,
            prepared: None,
            cert: Vec::new(),
            decided: None,
        }
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn leader(&self, view: View) -> NodeId {
        self.cfg.leader_of(view)
    }

    fn already(&self, phase: usize) -> bool {
        self.sent[phase].is_some_and(|v| v >= self.view)
    }

    fn drive(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut dirty = false;
            dirty |= self.step_request_engine(ctx);
            dirty |= self.step_new_view(ctx);
            dirty |= self.step_propose(ctx);
            dirty |= self.step_phases(ctx);
            dirty |= self.step_decide(ctx);
            if !dirty {
                break;
            }
        }
    }

    /// Requests (timeout signals) gather like view-changes: echo at f+1;
    /// at a quorum, broadcast the certificate-carrying ViewChange.
    fn step_request_engine(&mut self, ctx: &mut Ctx<'_>) -> bool {
        match self.requests.poll(&self.cfg, self.view) {
            ViewChangeVerdict::Echo(v) => {
                self.requests.sent = Some(v);
                ctx.broadcast(PbftMsg::Request { view: v });
                true
            }
            ViewChangeVerdict::Enter(v) => {
                if self.vc_broadcast.is_some_and(|b| b >= v) {
                    return false;
                }
                self.vc_broadcast = Some(v);
                ctx.broadcast(PbftMsg::ViewChange {
                    view: v,
                    prepared: self.prepared,
                    cert: self.cert.clone(),
                });
                true
            }
            ViewChangeVerdict::Idle => false,
        }
    }

    /// The new leader bundles n−f view-changes into the O(n²)-byte NewView.
    fn step_new_view(&mut self, ctx: &mut Ctx<'_>) -> bool {
        // Highest view with a quorum of view-change records.
        let mut views: Vec<View> = self.vcs.iter().flatten().map(|(v, _, _)| *v).collect();
        views.sort_unstable();
        views.reverse();
        views.dedup();
        for v in views {
            if v <= self.view || self.leader(v) != self.me {
                continue;
            }
            if self.newview_sent.is_some_and(|s| s >= v) {
                continue;
            }
            let records: Vec<VcRecord> = self
                .vcs
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.as_ref().map(|s| (i, s)))
                .filter(|(_, (vv, _, _))| *vv >= v)
                .map(|(i, (_, prepared, cert))| VcRecord {
                    node: NodeId(i as u16),
                    prepared: *prepared,
                    cert: cert.clone(),
                })
                .collect();
            if !self.cfg.is_quorum(records.len()) {
                continue;
            }
            let value = records
                .iter()
                .filter_map(|r| r.prepared)
                .max_by_key(|p| p.view)
                .map_or(self.input, |p| p.value);
            self.newview_sent = Some(v);
            ctx.broadcast(PbftMsg::NewView { view: v, value, certs: records });
            return true;
        }
        false
    }

    fn enter_view(&mut self, view: View, ctx: &mut Ctx<'_>) {
        self.view = view;
        ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
    }

    /// The leader pre-prepares: instantly at view 0; after a quorum of
    /// installation acks in later views (the fourth recovery hop).
    fn step_propose(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.leader(self.view) != self.me || self.proposed.is_some_and(|v| v >= self.view) {
            return false;
        }
        let value = if self.view.is_zero() {
            self.input
        } else {
            let acked = self.acks.iter().flatten().filter(|v| **v >= self.view).count();
            if !self.cfg.is_quorum(acked) {
                return false;
            }
            match self.proposal.filter(|(v, _)| *v == self.view) {
                Some((_, value)) => value, // the value announced in NewView
                None => return false,
            }
        };
        self.proposed = Some(self.view);
        ctx.broadcast(PbftMsg::PrePrepare { view: self.view, value });
        true
    }

    fn step_phases(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut dirty = false;
        // pre-prepare → prepare.
        if !self.already(PREPARE) {
            if let Some((view, value)) = self.proposal.filter(|(v, _)| *v == self.view) {
                // Only the actual PrePrepare (not just the NewView
                // announcement) triggers a prepare.
                let preprepared = self.preprepared.is_some_and(|p| p >= view);
                let accept = self.prepared.is_none_or(|p| p.value == value || view > p.view);
                if preprepared && accept {
                    self.sent[PREPARE] = Some(view);
                    ctx.broadcast(PbftMsg::Prepare { view, value });
                    dirty = true;
                }
            }
        }
        // prepare quorum → commit (and record the certificate).
        if !self.already(COMMIT) {
            if let Some((value, _)) = self
                .regs
                .tallies(PREPARE, self.view)
                .into_iter()
                .find(|(_, c)| self.cfg.is_quorum(*c))
            {
                self.prepared = Some(VoteInfo::new(self.view, value));
                self.cert = self
                    .regs
                    .iter_phase(PREPARE)
                    .filter(|(_, vi)| vi.view == self.view && vi.value == value)
                    .map(|(node, vi)| PrepareRecord { node, view: vi.view, value: vi.value })
                    .collect();
                self.sent[COMMIT] = Some(self.view);
                ctx.broadcast(PbftMsg::Commit { view: self.view, value });
                dirty = true;
            }
        }
        dirty
    }

    fn step_decide(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.decided.is_some() {
            return false;
        }
        let Some((value, _)) =
            self.regs.tallies(COMMIT, self.view).into_iter().find(|(_, c)| self.cfg.is_quorum(*c))
        else {
            return false;
        };
        self.decided = Some(value);
        ctx.output(value);
        true
    }
}

type Ctx<'a> = Context<'a, PbftMsg, Value>;

impl Node for PbftNode {
    type Msg = PbftMsg;
    type Output = Value;

    fn handle(&mut self, input: Input<PbftMsg>, ctx: &mut Ctx<'_>) {
        match input {
            Input::Start => {
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                self.drive(ctx);
            }
            Input::Deliver { from, msg } => {
                match msg {
                    PbftMsg::PrePrepare { view, value } => {
                        if from == self.leader(view) && view == self.view {
                            self.proposal = Some((view, value));
                            if self.preprepared.is_none_or(|p| view > p) {
                                self.preprepared = Some(view);
                            }
                        }
                    }
                    PbftMsg::Prepare { view, value } => {
                        self.regs.record(from, PREPARE, view, value)
                    }
                    PbftMsg::Commit { view, value } => self.regs.record(from, COMMIT, view, value),
                    PbftMsg::Request { view } => self.requests.record(from, view),
                    PbftMsg::ViewChange { view, prepared, cert } => {
                        let slot = &mut self.vcs[from.index()];
                        if slot.as_ref().is_none_or(|(v, _, _)| view > *v) {
                            *slot = Some((view, prepared, cert));
                        }
                    }
                    PbftMsg::NewView { view, value, certs } => {
                        if from == self.leader(view)
                            && view > self.view
                            && self.cfg.is_quorum(certs.len())
                        {
                            self.enter_view(view, ctx);
                            self.proposal = Some((view, value));
                            if self.ack_sent.is_none_or(|a| view > a) {
                                self.ack_sent = Some(view);
                                ctx.send(from, PbftMsg::Ack { view });
                            }
                        }
                    }
                    PbftMsg::Ack { view } => {
                        let slot = &mut self.acks[from.index()];
                        if slot.is_none_or(|held| view > held) {
                            *slot = Some(view);
                        }
                    }
                }
                self.drive(ctx);
            }
            Input::Timer { id } if id == VIEW_TIMER => {
                let target = self.view.next().max(self.requests.sent.unwrap_or(View::ZERO));
                self.requests.sent = Some(target);
                ctx.broadcast(PbftMsg::Request { view: target });
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                self.drive(ctx);
            }
            Input::Timer { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_sim::{LinkPolicy, SimBuilder, Time};

    #[test]
    fn good_case_is_three_message_delays() {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::synchronous(1))
            .build(move |id| PbftNode::new(cfg, Params::new(100), id, Value::from_u64(7)));
        assert!(sim.run_until_outputs(4, 1_000_000));
        for o in sim.outputs() {
            assert_eq!(o.time, Time(3), "PBFT good case is 3 delays (Table 1)");
        }
    }

    #[test]
    fn view_change_costs_seven_delays() {
        let cfg = Config::new(4).unwrap();
        let mut sim =
            SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id == NodeId(0) {
                    Box::new(tetrabft_sim::SilentNode::new())
                } else {
                    Box::new(PbftNode::new(cfg, Params::new(10), id, Value::from_u64(7)))
                }
            });
        assert!(sim.run_until_outputs(3, 1_000_000));
        // Timeout at 90, then request, vc, new-view, ack, pre-prepare,
        // prepare, commit: decide at 90 + 7.
        assert_eq!(sim.outputs()[0].time, Time(97));
        let first = sim.outputs()[0].output;
        assert!(sim.outputs().iter().all(|o| o.output == first));
    }

    #[test]
    fn view_change_messages_are_big() {
        // The certificate machinery must actually show up on the wire:
        // a ViewChange with a full cert and a NewView bundling a quorum of
        // them scale O(n) and O(n²).
        let n = 16;
        let cert: Vec<PrepareRecord> = (0..n)
            .map(|i| PrepareRecord {
                node: NodeId(i as u16),
                view: View(1),
                value: Value::from_u64(5),
            })
            .collect();
        let vc = PbftMsg::ViewChange {
            view: View(2),
            prepared: Some(VoteInfo::new(View(1), Value::from_u64(5))),
            cert: cert.clone(),
        };
        let nv = PbftMsg::NewView {
            view: View(2),
            value: Value::from_u64(5),
            certs: (0..n)
                .map(|i| VcRecord { node: NodeId(i as u16), prepared: None, cert: cert.clone() })
                .collect(),
        };
        // Under wire format v2 a PrepareRecord costs ≥ 10 bytes (varint
        // node + varint view + 8-byte value); the scaling is what matters.
        assert!(vc.wire_size() > n * 10, "view-change must be O(n)");
        assert!(nv.wire_size() > n * n * 10, "new-view must be O(n²)");
    }

    #[test]
    fn messages_roundtrip() {
        use tetrabft_wire::Wire;
        let cert =
            vec![PrepareRecord { node: NodeId(1), view: View(1), value: Value::from_u64(5) }];
        for msg in [
            PbftMsg::PrePrepare { view: View(1), value: Value::from_u64(2) },
            PbftMsg::Prepare { view: View(1), value: Value::from_u64(2) },
            PbftMsg::Commit { view: View(1), value: Value::from_u64(2) },
            PbftMsg::Request { view: View(2) },
            PbftMsg::ViewChange { view: View(2), prepared: None, cert: cert.clone() },
            PbftMsg::NewView {
                view: View(2),
                value: Value::from_u64(2),
                certs: vec![VcRecord { node: NodeId(0), prepared: None, cert }],
            },
            PbftMsg::Ack { view: View(2) },
        ] {
            assert_eq!(PbftMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }
}
