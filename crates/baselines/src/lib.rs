//! Baseline protocols from Table 1 of the TetraBFT paper, implemented from
//! scratch so that the paper's comparison can be *measured* rather than
//! quoted:
//!
//! * [`iths`] — **Information-Theoretic HotStuff** (Abraham & Stern 2020):
//!   responsive, constant storage, O(n²) communication, good-case latency
//!   **6** message delays (propose, echo, key-1, key-2, key-3, lock), **9**
//!   with a view change;
//! * [`ithsblog`] — the **blog version of IT-HS**: *non-responsive*,
//!   good-case latency **4** (propose, echo, accept, lock), **5** with a
//!   view change — but a new leader must wait a full Δ before proposing,
//!   which experiment E5 exposes;
//! * [`pbft`] — a **bounded-storage PBFT**-style protocol: good-case
//!   latency **3** (pre-prepare, prepare, commit), **7** with a view change
//!   (request, view-change, ack, new-view) — whose certificate-carrying
//!   view change costs O(n³) total bits, the scaling experiment E6 measures;
//! * [`repeated`] — **sequentially repeated single-shot TetraBFT**, the
//!   baseline for the ×5 pipelining throughput claim (experiment E7).
//!
//! These are latency- and communication-faithful reimplementations (the
//! originals have no open-source unauthenticated implementations); their
//! good-case and view-change message flows follow the phase structures the
//! TetraBFT paper itself attributes to them in Section 1.2, which is
//! exactly what Table 1 measures. See DESIGN.md §2 for the substitution
//! argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod iths;
pub mod ithsblog;
pub mod pbft;
pub mod repeated;

pub use common::{PhaseRegisters, ViewChangeEngine, ViewChangeVerdict};
pub use iths::IthsNode;
pub use ithsblog::BlogNode;
pub use pbft::PbftNode;
pub use repeated::RepeatedTetra;
