//! Shared machinery for the baseline protocols: per-peer phase registers
//! and the view-change engine (the same constant-storage receive model the
//! TetraBFT core uses — see DESIGN.md §2).

use tetrabft_types::{Config, NodeId, Value, View, VoteInfo};

/// Per-peer latest-vote registers for a protocol with `K` vote-like phases.
///
/// # Examples
///
/// ```
/// use tetrabft_baselines::PhaseRegisters;
/// use tetrabft_types::{Config, NodeId, Value, View};
///
/// let cfg = Config::new(4)?;
/// let mut regs: PhaseRegisters<2> = PhaseRegisters::new(&cfg);
/// regs.record(NodeId(1), 0, View(0), Value::from_u64(7));
/// assert_eq!(regs.count(0, View(0), Value::from_u64(7)), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhaseRegisters<const K: usize> {
    peers: Vec<[Option<VoteInfo>; K]>,
}

impl<const K: usize> PhaseRegisters<K> {
    /// Creates empty registers for `cfg.n()` peers.
    pub fn new(cfg: &Config) -> Self {
        PhaseRegisters { peers: vec![[None; K]; cfg.n()] }
    }

    /// Records a phase-`phase` message from `from`, keeping the newest view
    /// (first-received wins within a view, blunting equivocation).
    ///
    /// # Panics
    ///
    /// Panics if `phase >= K`.
    pub fn record(&mut self, from: NodeId, phase: usize, view: View, value: Value) {
        let slot = &mut self.peers[from.index()][phase];
        if slot.is_none_or(|held| view > held.view) {
            *slot = Some(VoteInfo::new(view, value));
        }
    }

    /// The latest phase-`phase` record from `from`.
    pub fn get(&self, from: NodeId, phase: usize) -> Option<VoteInfo> {
        self.peers[from.index()][phase]
    }

    /// Number of peers whose latest phase-`phase` record is exactly
    /// `(view, value)`.
    pub fn count(&self, phase: usize, view: View, value: Value) -> usize {
        self.peers.iter().filter(|p| p[phase] == Some(VoteInfo::new(view, value))).count()
    }

    /// Distinct values recorded for `phase` at `view`, with counts.
    pub fn tallies(&self, phase: usize, view: View) -> Vec<(Value, usize)> {
        let mut out: Vec<(Value, usize)> = Vec::new();
        for p in &self.peers {
            if let Some(v) = p[phase] {
                if v.view == view {
                    match out.iter_mut().find(|(val, _)| *val == v.value) {
                        Some((_, c)) => *c += 1,
                        None => out.push((v.value, 1)),
                    }
                }
            }
        }
        out
    }

    /// Iterator over all peers' latest phase-`phase` records.
    pub fn iter_phase(&self, phase: usize) -> impl Iterator<Item = (NodeId, VoteInfo)> + '_ {
        self.peers
            .iter()
            .enumerate()
            .filter_map(move |(i, p)| p[phase].map(|v| (NodeId(i as u16), v)))
    }
}

/// What the view-change engine wants done after new evidence arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewChangeVerdict {
    /// Nothing to do.
    Idle,
    /// Broadcast a view-change for this view (blocking-set echo rule).
    Echo(View),
    /// Enter this view (quorum rule).
    Enter(View),
}

/// The `f+1`-echo / `n−f`-enter view-change engine shared by every
/// partially-synchronous protocol in this repository (Section 3.2 of the
/// paper; identical rules appear in IT-HS and PBFT-style protocols).
#[derive(Debug, Clone)]
pub struct ViewChangeEngine {
    /// Per-peer highest view-change view received.
    highest: Vec<Option<View>>,
    /// Highest view-change this node has broadcast.
    pub sent: Option<View>,
}

impl ViewChangeEngine {
    /// Creates the engine for `cfg.n()` peers.
    pub fn new(cfg: &Config) -> Self {
        ViewChangeEngine { highest: vec![None; cfg.n()], sent: None }
    }

    /// Records a view-change message.
    pub fn record(&mut self, from: NodeId, view: View) {
        let slot = &mut self.highest[from.index()];
        if slot.is_none_or(|held| view > held) {
            *slot = Some(view);
        }
    }

    /// Number of peers whose highest request covers `view`.
    pub fn support(&self, view: View) -> usize {
        self.highest.iter().flatten().filter(|v| **v >= view).count()
    }

    /// Evaluates the enter/echo rules above `current`.
    pub fn poll(&self, cfg: &Config, current: View) -> ViewChangeVerdict {
        let mut candidates: Vec<View> =
            self.highest.iter().flatten().copied().filter(|v| *v > current).collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.reverse();
        for v in &candidates {
            if cfg.is_quorum(self.support(*v)) {
                return ViewChangeVerdict::Enter(*v);
            }
        }
        for v in &candidates {
            if cfg.is_blocking(self.support(*v)) && self.sent.is_none_or(|s| *v > s) {
                return ViewChangeVerdict::Echo(*v);
            }
        }
        ViewChangeVerdict::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(4).unwrap()
    }

    #[test]
    fn registers_keep_newest_view() {
        let mut regs: PhaseRegisters<3> = PhaseRegisters::new(&cfg());
        regs.record(NodeId(0), 1, View(1), Value::from_u64(1));
        regs.record(NodeId(0), 1, View(3), Value::from_u64(2));
        regs.record(NodeId(0), 1, View(2), Value::from_u64(3)); // stale
        assert_eq!(regs.get(NodeId(0), 1), Some(VoteInfo::new(View(3), Value::from_u64(2))));
    }

    #[test]
    fn tallies_and_counts() {
        let mut regs: PhaseRegisters<1> = PhaseRegisters::new(&cfg());
        for i in 0..3u16 {
            regs.record(NodeId(i), 0, View(0), Value::from_u64(9));
        }
        assert_eq!(regs.count(0, View(0), Value::from_u64(9)), 3);
        assert_eq!(regs.tallies(0, View(0)), vec![(Value::from_u64(9), 3)]);
        assert_eq!(regs.iter_phase(0).count(), 3);
    }

    #[test]
    fn engine_echo_then_enter() {
        let mut vc = ViewChangeEngine::new(&cfg());
        assert_eq!(vc.poll(&cfg(), View(0)), ViewChangeVerdict::Idle);
        vc.record(NodeId(1), View(1));
        assert_eq!(vc.poll(&cfg(), View(0)), ViewChangeVerdict::Idle);
        vc.record(NodeId(2), View(1));
        assert_eq!(vc.poll(&cfg(), View(0)), ViewChangeVerdict::Echo(View(1)));
        vc.sent = Some(View(1));
        assert_eq!(vc.poll(&cfg(), View(0)), ViewChangeVerdict::Idle);
        vc.record(NodeId(3), View(1));
        assert_eq!(vc.poll(&cfg(), View(0)), ViewChangeVerdict::Enter(View(1)));
    }

    #[test]
    fn higher_requests_support_lower_views() {
        let mut vc = ViewChangeEngine::new(&cfg());
        vc.record(NodeId(0), View(5));
        vc.record(NodeId(1), View(2));
        vc.record(NodeId(2), View(2));
        assert_eq!(vc.support(View(2)), 3);
        assert_eq!(vc.poll(&cfg(), View(0)), ViewChangeVerdict::Enter(View(2)));
    }
}
