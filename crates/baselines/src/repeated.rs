//! Sequentially repeated single-shot TetraBFT — the non-pipelined baseline
//! the paper compares Multi-shot TetraBFT against: "pipelined TetraBFT …
//! achieves a maximal throughput of 5 times the throughput that would be
//! achieved by simply repeating instances of single-shot TetraBFT"
//! (Section 1). Experiment E7 measures exactly that ratio.
//!
//! Each consensus instance is a fresh [`tetrabft::TetraNode`]; instance `i+1`
//! starts only after instance `i` decides locally. Messages are tagged with
//! their instance number; one future-instance message per peer is buffered
//! (a faster peer's traffic must not be lost on the instance boundary).

use tetrabft::{Message as CoreMessage, Params, TetraNode};
use tetrabft_sim::{Action, ActionBuf, Context, Dest, Input, Node, WireSize};
use tetrabft_types::{Config, NodeId, Value};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

/// A single-shot TetraBFT message tagged with its instance number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqMsg {
    /// Consensus instance the message belongs to.
    pub instance: u64,
    /// The wrapped single-shot message.
    pub inner: CoreMessage,
}

impl Wire for SeqMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.instance);
        self.inner.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SeqMsg { instance: r.get_u64()?, inner: CoreMessage::decode(r)? })
    }
}

impl WireSize for SeqMsg {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
}

/// A node running single-shot TetraBFT instances back to back.
///
/// Outputs `(instance, value)` pairs. Intended for good-case throughput
/// comparisons (E7); it assumes the post-GST regime for progress across
/// instance boundaries.
#[derive(Debug)]
pub struct RepeatedTetra {
    cfg: Config,
    params: Params,
    me: NodeId,
    instance: u64,
    node: TetraNode,
    /// One buffered future-instance message per peer.
    pending: Vec<Option<SeqMsg>>,
}

impl RepeatedTetra {
    /// Creates the node; instance `i` proposes the value `base + i`.
    pub fn new(cfg: Config, params: Params, me: NodeId) -> Self {
        RepeatedTetra {
            cfg,
            params,
            me,
            instance: 0,
            node: TetraNode::new(cfg, params, me, Value::from_u64(0)),
            pending: vec![None; cfg.n()],
        }
    }

    /// The instance currently being decided.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// Forwards one input to the inner node, translating its effects:
    /// messages get instance-tagged, a decision rolls over to the next
    /// instance.
    fn forward(&mut self, input: Input<CoreMessage>, ctx: &mut Ctx<'_>) {
        let mut buf: ActionBuf<CoreMessage, Value> = ActionBuf::new();
        {
            let mut inner_ctx = Context::buffered(self.me, self.cfg.n(), ctx.now(), &mut buf);
            self.node.handle(input, &mut inner_ctx);
        }
        let mut decided = None;
        for action in buf {
            match action {
                Action::Send { dest, msg } => {
                    let tagged = SeqMsg { instance: self.instance, inner: msg };
                    match dest {
                        Dest::All => ctx.broadcast(tagged),
                        Dest::Node(to) => ctx.send(to, tagged),
                    }
                }
                Action::SetTimer { id, after } => ctx.set_timer(id, after),
                Action::CancelTimer { id } => ctx.cancel_timer(id),
                Action::Output(value) => decided = Some(value),
            }
        }
        if let Some(value) = decided {
            ctx.output((self.instance, value));
            self.next_instance(ctx);
        }
    }

    fn next_instance(&mut self, ctx: &mut Ctx<'_>) {
        self.instance += 1;
        self.node = TetraNode::new(self.cfg, self.params, self.me, Value::from_u64(self.instance));
        self.forward(Input::Start, ctx);
        // Replay buffered traffic that was ahead of us.
        for peer in 0..self.cfg.n() {
            if let Some(msg) = self.pending[peer].take() {
                if msg.instance == self.instance {
                    self.forward(Input::Deliver { from: NodeId(peer as u16), msg: msg.inner }, ctx);
                } else if msg.instance > self.instance {
                    self.pending[peer] = Some(msg);
                }
            }
        }
    }
}

type Ctx<'a> = Context<'a, SeqMsg, (u64, Value)>;

impl Node for RepeatedTetra {
    type Msg = SeqMsg;
    type Output = (u64, Value);

    fn handle(&mut self, input: Input<SeqMsg>, ctx: &mut Ctx<'_>) {
        match input {
            Input::Start => self.forward(Input::Start, ctx),
            Input::Deliver { from, msg } => {
                if msg.instance == self.instance {
                    self.forward(Input::Deliver { from, msg: msg.inner }, ctx);
                } else if msg.instance > self.instance {
                    // Keep the newest future message per peer.
                    let slot = &mut self.pending[from.index()];
                    if slot.as_ref().is_none_or(|held| msg.instance >= held.instance) {
                        *slot = Some(msg);
                    }
                } // stale instances are dropped: that consensus is done
            }
            Input::Timer { id } => self.forward(Input::Timer { id }, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_sim::{LinkPolicy, SimBuilder, Time};

    #[test]
    fn one_decision_every_five_delays() {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::synchronous(1))
            .build(move |id| RepeatedTetra::new(cfg, Params::new(100), id));
        sim.run_until(Time(50));
        let times: Vec<u64> =
            sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| o.time.0).collect();
        assert!(times.len() >= 9, "50 delays / 5 per instance ≈ 10 decisions");
        assert_eq!(times[0], 5);
        for pair in times.windows(2) {
            assert_eq!(pair[1] - pair[0], 5, "repeated single-shot: 5 delays each");
        }
    }

    #[test]
    fn instances_decide_their_own_values_in_order() {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::synchronous(1))
            .build(move |id| RepeatedTetra::new(cfg, Params::new(100), id));
        sim.run_until(Time(26));
        let mine: Vec<(u64, Value)> =
            sim.outputs().iter().filter(|o| o.node == NodeId(1)).map(|o| o.output).collect();
        for (i, (instance, value)) in mine.iter().enumerate() {
            assert_eq!(*instance, i as u64);
            // Instance i's leader is node (i % 4)… at view 0 leader is node
            // 0 of that instance; all instances propose Value(instance)
            // because every node's input for instance i is i.
            assert_eq!(*value, Value::from_u64(i as u64));
        }
    }

    #[test]
    fn seq_msg_roundtrip() {
        let msg = SeqMsg {
            instance: 42,
            inner: CoreMessage::ViewChange { view: tetrabft_types::View(1) },
        };
        assert_eq!(SeqMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }
}
