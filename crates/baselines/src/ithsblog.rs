//! The "blog version" of IT-HS (Abraham & Stern 2021, decentralizedthoughts
//! post): the **non-responsive** 4-phase protocol of Table 1 — propose,
//! echo, accept, lock — deciding in 4 message delays in the good case and 5
//! with a view change, but paying a *fixed* `Δ` wait before every post-view-
//! change proposal. Experiment E5 uses it as the non-responsive contrast:
//! its recovery latency tracks the conservative bound Δ, not the actual
//! network delay δ.

use tetrabft_sim::{Context, Input, Node, TimerId, WireSize};
use tetrabft_types::{Config, NodeId, Value, View, VoteInfo};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

use crate::common::{PhaseRegisters, ViewChangeEngine, ViewChangeVerdict};
use tetrabft::Params;

const ECHO: usize = 0;
const ACCEPT: usize = 1;
const LOCK: usize = 2;

/// The view timer.
pub const VIEW_TIMER: TimerId = TimerId(0);
/// The non-responsive leader wait: fires `Δ` after entering a view.
pub const WAIT_TIMER: TimerId = TimerId(1);

/// Blog-IT-HS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlogMsg {
    /// Leader's proposal.
    Propose {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// Echo phase.
    Echo {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// Accept phase.
    Accept {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// Lock phase; a quorum decides.
    Lock {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// State report to the new leader.
    Suggest {
        /// The new view.
        view: View,
        /// Highest lock sent.
        lock: Option<VoteInfo>,
    },
    /// View-change request.
    ViewChange {
        /// Requested view.
        view: View,
    },
}

impl Wire for BlogMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            BlogMsg::Propose { view, value } => {
                w.put_u8(1);
                view.encode(w);
                value.encode(w);
            }
            BlogMsg::Echo { view, value } => {
                w.put_u8(2);
                view.encode(w);
                value.encode(w);
            }
            BlogMsg::Accept { view, value } => {
                w.put_u8(3);
                view.encode(w);
                value.encode(w);
            }
            BlogMsg::Lock { view, value } => {
                w.put_u8(4);
                view.encode(w);
                value.encode(w);
            }
            BlogMsg::Suggest { view, lock } => {
                w.put_u8(5);
                view.encode(w);
                lock.encode(w);
            }
            BlogMsg::ViewChange { view } => {
                w.put_u8(6);
                view.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(BlogMsg::Propose { view: View::decode(r)?, value: Value::decode(r)? }),
            2 => Ok(BlogMsg::Echo { view: View::decode(r)?, value: Value::decode(r)? }),
            3 => Ok(BlogMsg::Accept { view: View::decode(r)?, value: Value::decode(r)? }),
            4 => Ok(BlogMsg::Lock { view: View::decode(r)?, value: Value::decode(r)? }),
            5 => Ok(BlogMsg::Suggest { view: View::decode(r)?, lock: Option::decode(r)? }),
            6 => Ok(BlogMsg::ViewChange { view: View::decode(r)? }),
            tag => Err(WireError::InvalidTag { what: "BlogMsg", tag }),
        }
    }
}

impl WireSize for BlogMsg {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
}

/// A well-behaved node of the non-responsive blog-version IT-HS.
#[derive(Debug)]
pub struct BlogNode {
    cfg: Config,
    params: Params,
    me: NodeId,
    input: Value,
    view: View,
    regs: PhaseRegisters<3>,
    vc: ViewChangeEngine,
    suggests: Vec<Option<(View, Option<VoteInfo>)>>,
    proposal: Option<(View, Value)>,
    sent: [Option<View>; 3],
    proposed: Option<View>,
    /// Leader may propose in the current view only after the Δ wait.
    wait_done: Option<View>,
    lock: Option<VoteInfo>,
    decided: Option<Value>,
}

impl BlogNode {
    /// Creates a node with the given identity and input value.
    pub fn new(cfg: Config, params: Params, me: NodeId, input: Value) -> Self {
        BlogNode {
            cfg,
            params,
            me,
            input,
            view: View::ZERO,
            regs: PhaseRegisters::new(&cfg),
            vc: ViewChangeEngine::new(&cfg),
            suggests: vec![None; cfg.n()],
            proposal: None,
            sent: [None; 3],
            proposed: None,
            wait_done: None,
            lock: None,
            decided: None,
        }
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn leader(&self, view: View) -> NodeId {
        self.cfg.leader_of(view)
    }

    fn already(&self, phase: usize) -> bool {
        self.sent[phase].is_some_and(|v| v >= self.view)
    }

    fn enter_view(&mut self, view: View, ctx: &mut Ctx<'_>) {
        self.view = view;
        ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
        if !view.is_zero() {
            // Followers report state immediately…
            ctx.send(self.leader(view), BlogMsg::Suggest { view, lock: self.lock });
            // …but the leader must sit out a full Δ before proposing — the
            // non-responsive wait that guarantees every correct suggest has
            // arrived. This is what Table 1's "non-responsive" means.
            if self.leader(view) == self.me {
                ctx.set_timer(WAIT_TIMER, self.params.delta());
            }
        }
    }

    fn drive(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut dirty = false;
            match self.vc.poll(&self.cfg, self.view) {
                ViewChangeVerdict::Enter(v) => {
                    self.enter_view(v, ctx);
                    dirty = true;
                }
                ViewChangeVerdict::Echo(v) => {
                    self.vc.sent = Some(v);
                    ctx.broadcast(BlogMsg::ViewChange { view: v });
                    dirty = true;
                }
                ViewChangeVerdict::Idle => {}
            }
            dirty |= self.step_propose(ctx);
            dirty |= self.step_phases(ctx);
            dirty |= self.step_decide(ctx);
            if !dirty {
                break;
            }
        }
    }

    fn step_propose(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.leader(self.view) != self.me || self.proposed.is_some_and(|v| v >= self.view) {
            return false;
        }
        let value = if self.view.is_zero() {
            self.input
        } else {
            // Non-responsive: wait for the Δ timer, then use whatever
            // suggests arrived (after GST that is all of them).
            if self.wait_done != Some(self.view) {
                return false;
            }
            self.suggests
                .iter()
                .flatten()
                .filter(|(v, _)| *v == self.view)
                .filter_map(|(_, lock)| *lock)
                .max_by_key(|l| l.view)
                .map_or(self.input, |l| l.value)
        };
        self.proposed = Some(self.view);
        ctx.broadcast(BlogMsg::Propose { view: self.view, value });
        true
    }

    fn step_phases(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut dirty = false;
        // propose → echo
        if !self.already(ECHO) {
            if let Some((view, value)) = self.proposal.filter(|(v, _)| *v == self.view) {
                self.sent[ECHO] = Some(view);
                ctx.broadcast(BlogMsg::Echo { view, value });
                dirty = true;
            }
        }
        // echo → accept (lock-gated), accept → lock
        for (prev, next) in [(ECHO, ACCEPT), (ACCEPT, LOCK)] {
            if self.already(next) {
                continue;
            }
            let Some((value, _)) = self
                .regs
                .tallies(prev, self.view)
                .into_iter()
                .find(|(_, c)| self.cfg.is_quorum(*c))
            else {
                continue;
            };
            if next == ACCEPT && self.lock.is_some_and(|l| l.value != value) {
                continue;
            }
            self.sent[next] = Some(self.view);
            if next == ACCEPT {
                ctx.broadcast(BlogMsg::Accept { view: self.view, value });
            } else {
                self.lock = Some(VoteInfo::new(self.view, value));
                ctx.broadcast(BlogMsg::Lock { view: self.view, value });
            }
            dirty = true;
        }
        dirty
    }

    fn step_decide(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.decided.is_some() {
            return false;
        }
        let Some((value, _)) =
            self.regs.tallies(LOCK, self.view).into_iter().find(|(_, c)| self.cfg.is_quorum(*c))
        else {
            return false;
        };
        self.decided = Some(value);
        ctx.output(value);
        true
    }
}

type Ctx<'a> = Context<'a, BlogMsg, Value>;

impl Node for BlogNode {
    type Msg = BlogMsg;
    type Output = Value;

    fn handle(&mut self, input: Input<BlogMsg>, ctx: &mut Ctx<'_>) {
        match input {
            Input::Start => {
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                self.drive(ctx);
            }
            Input::Deliver { from, msg } => {
                match msg {
                    BlogMsg::Propose { view, value } => {
                        if from == self.leader(view) && self.proposal.is_none_or(|(v, _)| view > v)
                        {
                            self.proposal = Some((view, value));
                        }
                    }
                    BlogMsg::Echo { view, value } => self.regs.record(from, ECHO, view, value),
                    BlogMsg::Accept { view, value } => self.regs.record(from, ACCEPT, view, value),
                    BlogMsg::Lock { view, value } => self.regs.record(from, LOCK, view, value),
                    BlogMsg::Suggest { view, lock } => {
                        let slot = &mut self.suggests[from.index()];
                        if slot.is_none_or(|(v, _)| view > v) {
                            *slot = Some((view, lock));
                        }
                    }
                    BlogMsg::ViewChange { view } => self.vc.record(from, view),
                }
                self.drive(ctx);
            }
            Input::Timer { id } if id == VIEW_TIMER => {
                let target = self.view.next().max(self.vc.sent.unwrap_or(View::ZERO));
                self.vc.sent = Some(target);
                ctx.broadcast(BlogMsg::ViewChange { view: target });
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                self.drive(ctx);
            }
            Input::Timer { id } if id == WAIT_TIMER => {
                self.wait_done = Some(self.view);
                self.drive(ctx);
            }
            Input::Timer { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_sim::{LinkPolicy, SimBuilder, Time};

    #[test]
    fn good_case_is_four_message_delays() {
        let cfg = Config::new(4).unwrap();
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::synchronous(1))
            .build(move |id| BlogNode::new(cfg, Params::new(100), id, Value::from_u64(5)));
        assert!(sim.run_until_outputs(4, 1_000_000));
        for o in sim.outputs() {
            assert_eq!(o.time, Time(4), "blog IT-HS good case is 4 delays (Table 1)");
        }
    }

    #[test]
    fn recovery_pays_the_full_delta_wait() {
        // Crash the view-0 leader with Δ=50 but actual unit delays: the new
        // leader cannot propose before its Δ wait elapses, so the decision
        // lands ≥ Δ after the view change — non-responsiveness in action.
        let cfg = Config::new(4).unwrap();
        let delta = 50;
        let mut sim =
            SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id == NodeId(0) {
                    Box::new(tetrabft_sim::SilentNode::new())
                } else {
                    Box::new(BlogNode::new(cfg, Params::new(delta), id, Value::from_u64(5)))
                }
            });
        assert!(sim.run_until_outputs(3, 1_000_000));
        let timeout = Params::new(delta).view_timeout(); // 450
        let decided_at = sim.outputs()[0].time.0;
        assert!(
            decided_at >= timeout + delta,
            "decision at {decided_at} must include the Δ={delta} wait after timeout {timeout}"
        );
        let first = sim.outputs()[0].output;
        assert!(sim.outputs().iter().all(|o| o.output == first));
    }

    #[test]
    fn messages_roundtrip() {
        use tetrabft_wire::Wire;
        for msg in [
            BlogMsg::Propose { view: View(1), value: Value::from_u64(2) },
            BlogMsg::Echo { view: View(1), value: Value::from_u64(2) },
            BlogMsg::Accept { view: View(1), value: Value::from_u64(2) },
            BlogMsg::Lock { view: View(1), value: Value::from_u64(2) },
            BlogMsg::Suggest { view: View(2), lock: None },
            BlogMsg::ViewChange { view: View(2) },
        ] {
            assert_eq!(BlogMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }
}
