//! Information-Theoretic HotStuff (IT-HS), the closest competitor in
//! Table 1: responsive, constant storage, O(n²) communication — but a
//! good-case latency of **6** message delays (propose, echo, key-1, key-2,
//! key-3, lock) against TetraBFT's 5, and **9** with a view change
//! (view-change, request, suggest, then the six phases).
//!
//! The paper's Section 1.2 explains *why* IT-HS needs the extra echo phase:
//! unlocked well-behaved nodes may echo unsafe values, so `f+1` echoes prove
//! nothing and value safety is only established at key-1. This
//! implementation keeps that structure: echoes are unconditional, locks
//! gate key-1.

use tetrabft_sim::{Context, Input, Node, TimerId, WireSize};
use tetrabft_types::{Config, NodeId, Value, View, VoteInfo};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

use crate::common::{PhaseRegisters, ViewChangeEngine, ViewChangeVerdict};
use tetrabft::Params;

/// Phase indices into the register file.
const ECHO: usize = 0;
const KEY1: usize = 1;
const KEY2: usize = 2;
const KEY3: usize = 3;
const LOCK: usize = 4;

/// The view timer.
pub const VIEW_TIMER: TimerId = TimerId(0);

/// IT-HS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IthsMsg {
    /// Leader's proposal.
    Propose {
        /// View.
        view: View,
        /// Proposed value.
        value: Value,
    },
    /// Unconditional relay of the proposal (the phase TetraBFT eliminates).
    Echo {
        /// View.
        view: View,
        /// Echoed value.
        value: Value,
    },
    /// The three key phases.
    Key {
        /// Key level 1–3.
        level: u8,
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// Lock phase; a quorum of locks decides.
    Lock {
        /// View.
        view: View,
        /// Value.
        value: Value,
    },
    /// New leader's state pull after a view change.
    Request {
        /// The new view.
        view: View,
    },
    /// Reply to [`IthsMsg::Request`]: the sender's key-3 and lock state.
    Suggest {
        /// The new view.
        view: View,
        /// Highest key-3 sent.
        key3: Option<VoteInfo>,
        /// Highest lock sent.
        lock: Option<VoteInfo>,
    },
    /// View-change request.
    ViewChange {
        /// Requested view.
        view: View,
    },
}

impl Wire for IthsMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            IthsMsg::Propose { view, value } => {
                w.put_u8(1);
                view.encode(w);
                value.encode(w);
            }
            IthsMsg::Echo { view, value } => {
                w.put_u8(2);
                view.encode(w);
                value.encode(w);
            }
            IthsMsg::Key { level, view, value } => {
                w.put_u8(3);
                w.put_u8(*level);
                view.encode(w);
                value.encode(w);
            }
            IthsMsg::Lock { view, value } => {
                w.put_u8(4);
                view.encode(w);
                value.encode(w);
            }
            IthsMsg::Request { view } => {
                w.put_u8(5);
                view.encode(w);
            }
            IthsMsg::Suggest { view, key3, lock } => {
                w.put_u8(6);
                view.encode(w);
                key3.encode(w);
                lock.encode(w);
            }
            IthsMsg::ViewChange { view } => {
                w.put_u8(7);
                view.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(IthsMsg::Propose { view: View::decode(r)?, value: Value::decode(r)? }),
            2 => Ok(IthsMsg::Echo { view: View::decode(r)?, value: Value::decode(r)? }),
            3 => {
                let level = r.get_u8()?;
                if !(1..=3).contains(&level) {
                    return Err(WireError::InvalidTag { what: "IthsMsg::Key", tag: level });
                }
                Ok(IthsMsg::Key { level, view: View::decode(r)?, value: Value::decode(r)? })
            }
            4 => Ok(IthsMsg::Lock { view: View::decode(r)?, value: Value::decode(r)? }),
            5 => Ok(IthsMsg::Request { view: View::decode(r)? }),
            6 => Ok(IthsMsg::Suggest {
                view: View::decode(r)?,
                key3: Option::decode(r)?,
                lock: Option::decode(r)?,
            }),
            7 => Ok(IthsMsg::ViewChange { view: View::decode(r)? }),
            tag => Err(WireError::InvalidTag { what: "IthsMsg", tag }),
        }
    }
}

impl WireSize for IthsMsg {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
}

/// A peer's latest suggest: `(view, key3, lock)`.
type SuggestRecord = (View, Option<VoteInfo>, Option<VoteInfo>);

/// A well-behaved IT-HS node.
#[derive(Debug)]
pub struct IthsNode {
    cfg: Config,
    params: Params,
    me: NodeId,
    input: Value,
    view: View,
    regs: PhaseRegisters<5>,
    vc: ViewChangeEngine,
    /// Per-peer latest suggest (view, key3, lock) — leader state.
    suggests: Vec<Option<SuggestRecord>>,
    proposal: Option<(View, Value)>,
    /// Once-per-view send guards: echo, key1..3, lock.
    sent: [Option<View>; 5],
    requested: Option<View>,
    proposed: Option<View>,
    /// Persistent: highest key-3 and lock this node ever sent.
    key3: Option<VoteInfo>,
    lock: Option<VoteInfo>,
    decided: Option<Value>,
}

impl IthsNode {
    /// Creates a node with the given identity and input value.
    pub fn new(cfg: Config, params: Params, me: NodeId, input: Value) -> Self {
        IthsNode {
            cfg,
            params,
            me,
            input,
            view: View::ZERO,
            regs: PhaseRegisters::new(&cfg),
            vc: ViewChangeEngine::new(&cfg),
            suggests: vec![None; cfg.n()],
            proposal: None,
            sent: [None; 5],
            requested: None,
            proposed: None,
            key3: None,
            lock: None,
            decided: None,
        }
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    fn leader(&self, view: View) -> NodeId {
        self.cfg.leader_of(view)
    }

    fn already(&self, phase: usize) -> bool {
        self.sent[phase].is_some_and(|v| v >= self.view)
    }

    fn enter_view(&mut self, view: View, ctx: &mut Ctx<'_>) {
        self.view = view;
        ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
        // The new leader pulls state with a Request; followers answer with
        // Suggest (the request/suggest pair behind IT-HS's 9-delay view
        // change).
        if self.leader(view) == self.me && !view.is_zero() {
            self.requested = Some(view);
            ctx.broadcast(IthsMsg::Request { view });
        }
    }

    fn drive(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut dirty = false;
            // View-change engine.
            match self.vc.poll(&self.cfg, self.view) {
                ViewChangeVerdict::Enter(v) => {
                    self.enter_view(v, ctx);
                    dirty = true;
                }
                ViewChangeVerdict::Echo(v) => {
                    self.vc.sent = Some(v);
                    ctx.broadcast(IthsMsg::ViewChange { view: v });
                    dirty = true;
                }
                ViewChangeVerdict::Idle => {}
            }
            dirty |= self.step_propose(ctx);
            dirty |= self.step_echo(ctx);
            dirty |= self.step_keys(ctx);
            dirty |= self.step_decide(ctx);
            if !dirty {
                break;
            }
        }
    }

    fn step_propose(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.leader(self.view) != self.me || self.proposed.is_some_and(|v| v >= self.view) {
            return false;
        }
        let value = if self.view.is_zero() {
            self.input
        } else {
            // Responsive: propose as soon as a quorum of suggests for this
            // view arrived; adopt the value of the highest key-3/lock.
            let fresh: Vec<_> =
                self.suggests.iter().flatten().filter(|(v, _, _)| *v == self.view).collect();
            if !self.cfg.is_quorum(fresh.len()) {
                return false;
            }
            let best = fresh
                .iter()
                .filter_map(|(_, key3, lock)| match (key3, lock) {
                    (Some(k), Some(l)) => Some(if l.view >= k.view { *l } else { *k }),
                    (Some(k), None) => Some(*k),
                    (None, Some(l)) => Some(*l),
                    (None, None) => None,
                })
                .max_by_key(|vi| vi.view);
            best.map_or(self.input, |vi| vi.value)
        };
        self.proposed = Some(self.view);
        ctx.broadcast(IthsMsg::Propose { view: self.view, value });
        true
    }

    fn step_echo(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.already(ECHO) {
            return false;
        }
        let Some((view, value)) = self.proposal.filter(|(v, _)| *v == self.view) else {
            return false;
        };
        // Echo is *unconditional* — exactly the weakness Section 1.2 of the
        // TetraBFT paper points out.
        self.sent[ECHO] = Some(view);
        ctx.broadcast(IthsMsg::Echo { view, value });
        true
    }

    fn step_keys(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut dirty = false;
        // echo → key1 (lock-gated), key1 → key2, key2 → key3, key3 → lock.
        for (prev, next) in [(ECHO, KEY1), (KEY1, KEY2), (KEY2, KEY3), (KEY3, LOCK)] {
            if self.already(next) {
                continue;
            }
            let Some((value, _)) = self
                .regs
                .tallies(prev, self.view)
                .into_iter()
                .find(|(_, c)| self.cfg.is_quorum(*c))
            else {
                continue;
            };
            if next == KEY1 {
                // Safety gate: a locked node refuses conflicting key-1s.
                if self.lock.is_some_and(|l| l.value != value) {
                    continue;
                }
            }
            self.sent[next] = Some(self.view);
            match next {
                KEY1 | KEY2 | KEY3 => {
                    if next == KEY3 {
                        self.key3 = Some(VoteInfo::new(self.view, value));
                    }
                    ctx.broadcast(IthsMsg::Key { level: next as u8, view: self.view, value });
                }
                LOCK => {
                    self.lock = Some(VoteInfo::new(self.view, value));
                    ctx.broadcast(IthsMsg::Lock { view: self.view, value });
                }
                _ => unreachable!(),
            }
            dirty = true;
        }
        dirty
    }

    fn step_decide(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if self.decided.is_some() {
            return false;
        }
        let Some((value, _)) =
            self.regs.tallies(LOCK, self.view).into_iter().find(|(_, c)| self.cfg.is_quorum(*c))
        else {
            return false;
        };
        self.decided = Some(value);
        ctx.output(value);
        true
    }
}

type Ctx<'a> = Context<'a, IthsMsg, Value>;

impl Node for IthsNode {
    type Msg = IthsMsg;
    type Output = Value;

    fn handle(&mut self, input: Input<IthsMsg>, ctx: &mut Ctx<'_>) {
        match input {
            Input::Start => {
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                self.drive(ctx);
            }
            Input::Deliver { from, msg } => {
                match msg {
                    IthsMsg::Propose { view, value } => {
                        if from == self.leader(view) && self.proposal.is_none_or(|(v, _)| view > v)
                        {
                            self.proposal = Some((view, value));
                        }
                    }
                    IthsMsg::Echo { view, value } => self.regs.record(from, ECHO, view, value),
                    IthsMsg::Key { level, view, value } if (1..=3).contains(&level) => {
                        self.regs.record(from, level as usize, view, value)
                    }
                    IthsMsg::Key { .. } => {}
                    IthsMsg::Lock { view, value } => self.regs.record(from, LOCK, view, value),
                    IthsMsg::Request { view } => {
                        if from == self.leader(view) && view >= self.view {
                            ctx.send(
                                from,
                                IthsMsg::Suggest { view, key3: self.key3, lock: self.lock },
                            );
                        }
                    }
                    IthsMsg::Suggest { view, key3, lock } => {
                        let slot = &mut self.suggests[from.index()];
                        if slot.is_none_or(|(v, _, _)| view > v) {
                            *slot = Some((view, key3, lock));
                        }
                    }
                    IthsMsg::ViewChange { view } => self.vc.record(from, view),
                }
                self.drive(ctx);
            }
            Input::Timer { id } if id == VIEW_TIMER => {
                let target = self.view.next().max(self.vc.sent.unwrap_or(View::ZERO));
                self.vc.sent = Some(target);
                ctx.broadcast(IthsMsg::ViewChange { view: target });
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                self.drive(ctx);
            }
            Input::Timer { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_sim::{LinkPolicy, SimBuilder, Time};

    fn sim_honest(n: usize) -> tetrabft_sim::Sim<IthsMsg, Value> {
        let cfg = Config::new(n).unwrap();
        SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| {
            IthsNode::new(cfg, Params::new(100), id, Value::from_u64(id.0 as u64 + 1))
        })
    }

    #[test]
    fn good_case_is_six_message_delays() {
        let mut sim = sim_honest(4);
        assert!(sim.run_until_outputs(4, 1_000_000));
        for o in sim.outputs() {
            assert_eq!(o.time, Time(6), "IT-HS good case is 6 delays (Table 1)");
        }
    }

    #[test]
    fn agreement_under_crash_leader() {
        let cfg = Config::new(4).unwrap();
        let mut sim =
            SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id == NodeId(0) {
                    Box::new(tetrabft_sim::SilentNode::new())
                } else {
                    Box::new(IthsNode::new(cfg, Params::new(10), id, Value::from_u64(9)))
                }
            });
        assert!(sim.run_until_outputs(3, 1_000_000));
        let first = sim.outputs()[0].output;
        assert!(sim.outputs().iter().all(|o| o.output == first));
    }

    #[test]
    fn view_change_costs_nine_delays() {
        // Crash the view-0 leader: decisions land 9 delays after the nodes
        // converge on view 1 (timeout at 9Δ = 90, then 9 more unit hops).
        let cfg = Config::new(4).unwrap();
        let mut sim =
            SimBuilder::new(4).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id == NodeId(0) {
                    Box::new(tetrabft_sim::SilentNode::new())
                } else {
                    Box::new(IthsNode::new(cfg, Params::new(10), id, Value::from_u64(9)))
                }
            });
        assert!(sim.run_until_outputs(3, 1_000_000));
        // Timeout fires at 90; vc(91) request(92) suggest(93) propose(94)
        // echo(95) k1(96) k2(97) k3(98) lock(99): decide at t = 90 + 9.
        assert_eq!(sim.outputs()[0].time, Time(99));
    }

    #[test]
    fn messages_roundtrip() {
        use tetrabft_wire::Wire;
        for msg in [
            IthsMsg::Propose { view: View(1), value: Value::from_u64(2) },
            IthsMsg::Echo { view: View(1), value: Value::from_u64(2) },
            IthsMsg::Key { level: 2, view: View(1), value: Value::from_u64(2) },
            IthsMsg::Lock { view: View(1), value: Value::from_u64(2) },
            IthsMsg::Request { view: View(3) },
            IthsMsg::Suggest {
                view: View(3),
                key3: Some(VoteInfo::new(View(1), Value::from_u64(1))),
                lock: None,
            },
            IthsMsg::ViewChange { view: View(4) },
        ] {
            assert_eq!(IthsMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }
}
