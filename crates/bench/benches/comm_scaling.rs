//! **E6 — communication & storage scaling** (Table 1's last column as a
//! scaling law): per view,
//!
//! * TetraBFT and IT-HS send O(n) bytes **per node** (O(n²) total) in both
//!   the good case and the view-change case;
//! * PBFT's certificate-carrying view change sends O(n²) per node at the
//!   leader (O(n³) total);
//! * persistent storage is flat in n and in the number of views for all of
//!   them (bounded PBFT's certificate is O(n) in the *system size*, not in
//!   history).

use tetrabft::{Params, TetraNode};
use tetrabft_bench::{
    pbft_loaded_view_change, print_table, run_protocol, scaling_exponent, Protocol, Scenario,
};
use tetrabft_types::{Config, NodeId, Value};

fn main() {
    let sizes = [4usize, 7, 10, 16, 25, 40];

    // Good case: totals should scale ~n², per-node ~n.
    let mut rows = Vec::new();
    let mut prev: Option<(usize, f64, f64, f64)> = None;
    for &n in &sizes {
        let tetra = run_protocol(Protocol::Tetra, Scenario::GoodCase, n, 1);
        let iths = run_protocol(Protocol::Iths, Scenario::GoodCase, n, 1);
        let pbft_vc = pbft_loaded_view_change(n, 10);
        let (t_exp, p_exp) = match prev {
            Some((pn, pt, _pi, pp)) => (
                format!(
                    "{:.2}",
                    scaling_exponent(pn as f64, pt, n as f64, tetra.total_bytes as f64)
                ),
                format!(
                    "{:.2}",
                    scaling_exponent(pn as f64, pp, n as f64, pbft_vc.total_bytes as f64)
                ),
            ),
            None => ("—".into(), "—".into()),
        };
        rows.push(vec![
            n.to_string(),
            format!("{} ({})", tetra.total_bytes, t_exp),
            tetra.max_node_bytes.to_string(),
            iths.total_bytes.to_string(),
            format!("{} ({})", pbft_vc.total_bytes, p_exp),
            pbft_vc.max_node_bytes.to_string(),
        ]);
        prev = Some((
            n,
            tetra.total_bytes as f64,
            iths.total_bytes as f64,
            pbft_vc.total_bytes as f64,
        ));
    }
    print_table(
        "Communication scaling (bytes per decision; 'exp' = log-log slope vs previous row)",
        &[
            "n",
            "TetraBFT good total (exp)",
            "TetraBFT max/node",
            "IT-HS good total",
            "PBFT view-change total (exp)",
            "PBFT max/node",
        ],
        &rows,
    );

    // Fitted overall exponents across the sweep ends.
    let t0 = run_protocol(Protocol::Tetra, Scenario::GoodCase, sizes[0], 1);
    let t1 = run_protocol(Protocol::Tetra, Scenario::GoodCase, *sizes.last().unwrap(), 1);
    let p0 = pbft_loaded_view_change(sizes[0], 10);
    let p1 = pbft_loaded_view_change(*sizes.last().unwrap(), 10);
    let tetra_exp = scaling_exponent(
        sizes[0] as f64,
        t0.total_bytes as f64,
        *sizes.last().unwrap() as f64,
        t1.total_bytes as f64,
    );
    let pbft_exp = scaling_exponent(
        sizes[0] as f64,
        p0.total_bytes as f64,
        *sizes.last().unwrap() as f64,
        p1.total_bytes as f64,
    );
    println!("\nfitted exponents: TetraBFT good case ≈ n^{tetra_exp:.2} (paper: n²),");
    println!("                  PBFT view change   ≈ n^{pbft_exp:.2} (paper: n³ worst case)");
    assert!(tetra_exp < 2.4, "TetraBFT must stay ~quadratic in total");
    assert!(pbft_exp > tetra_exp + 0.5, "PBFT view change must scale a power worse");

    // Storage: constant in the number of views.
    let node =
        TetraNode::new(Config::new(4).unwrap(), Params::new(10), NodeId(0), Value::from_u64(0));
    println!(
        "\nstorage: TetraBFT persistent state = {} bytes, independent of views and of n \
         (six vote registers — Table 1's O(1)).",
        node.persistent_bytes()
    );
}
