//! **Model checking at scale** — the packed parallel explorer vs the v1
//! clone-based BFS (ROADMAP: "symmetry reduction + disk-backed frontier").
//!
//! Head-to-head at 2 values × 2 rounds (full exhaustion of the reachable
//! space): states/sec and bytes-per-stored-state for the legacy
//! `HashSet<State>` engine against the packed engine (bit-packed
//! fingerprints, honest-node + value symmetry, sharded seen-set, threaded
//! expansion). Asserts the packed engine is ≥5× faster per state and ≥8×
//! smaller per state. Bounded sweeps then push 3 values × 3+ rounds — far
//! past what the v1 engine could hold in RAM — with the frontier spilling
//! to disk, and a forged near-disagreement exercises counterexample
//! tracing end to end.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for the CI smoke run: the same 2 × 2
//! head-to-head and assertions, with the throughput threshold relaxed for
//! noisy shared runners (the ≥5× claim is asserted by the full run) and
//! smaller bounded sweeps.

use std::time::Instant;

use tetrabft_bench::print_table;
use tetrabft_mc::{Explorer, LegacyExplorer, ModelCfg, State};

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from).min(8)
}

struct Row {
    engine: &'static str,
    cfg: ModelCfg,
    states: usize,
    transitions: usize,
    depth: usize,
    exhausted: bool,
    secs: f64,
    bytes_per_state: f64,
    spilled: u64,
}

impl Row {
    fn rate(&self) -> f64 {
        self.states as f64 / self.secs
    }

    fn cells(&self) -> Vec<String> {
        vec![
            format!("{} values × {} rounds", self.cfg.values, self.cfg.rounds),
            self.engine.to_string(),
            self.states.to_string(),
            self.transitions.to_string(),
            self.depth.to_string(),
            if self.exhausted { "yes".into() } else { "budget".into() },
            format!("{:.2}s", self.secs),
            format!("{:.0}", self.rate()),
            format!("{:.1}", self.bytes_per_state),
            self.spilled.to_string(),
        ]
    }
}

fn run_legacy(cfg: ModelCfg, budget: usize) -> Row {
    let started = Instant::now();
    let report = LegacyExplorer::new(cfg).run(budget);
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(report.violations, 0, "agreement must hold");
    Row {
        engine: "v1 clone BFS",
        cfg,
        states: report.states,
        transitions: report.transitions,
        depth: report.depth,
        exhausted: report.exhausted,
        secs,
        bytes_per_state: LegacyExplorer::approx_bytes_per_state(&cfg) as f64,
        spilled: 0,
    }
}

fn run_packed(engine: &'static str, explorer: Explorer, cfg: ModelCfg, budget: usize) -> Row {
    let started = Instant::now();
    let (report, stats) = explorer.run_with_stats(budget);
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(report.violations, 0, "agreement must hold");
    Row {
        engine,
        cfg,
        states: report.states,
        transitions: report.transitions,
        depth: report.depth,
        exhausted: report.exhausted,
        secs,
        bytes_per_state: stats.seen_bytes as f64 / report.states.max(1) as f64,
        spilled: stats.spilled_states,
    }
}

fn main() {
    let smoke = smoke();
    let threads = threads();
    let mut rows: Vec<Row> = Vec::new();

    // ---- head-to-head: full exhaustion, old engine vs packed ------------
    let head = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
    let budget = 50_000_000;
    rows.push(run_legacy(head, budget));
    rows.push(run_packed(
        "packed, node sym",
        Explorer::new(head).value_symmetry(false),
        head,
        budget,
    ));
    rows.push(run_packed("packed+value sym", Explorer::new(head).threads(threads), head, budget));
    let (v1, node_only, packed) = (&rows[0], &rows[1], &rows[2]);
    assert!(v1.exhausted && node_only.exhausted && packed.exhausted);
    assert_eq!(
        v1.states, node_only.states,
        "node-symmetry-only packed run must agree with the v1 orbit count"
    );
    assert!(packed.states < v1.states, "value symmetry must shrink the space");

    let speedup = packed.rate() / v1.rate();
    let shrink = v1.bytes_per_state / packed.bytes_per_state;
    let min_speedup = if smoke { 2.5 } else { 5.0 };
    assert!(
        speedup >= min_speedup,
        "packed engine must be ≥{min_speedup}× states/sec (got {speedup:.1}×)"
    );
    assert!(shrink >= 8.0, "packed engine must be ≥8× smaller per state (got {shrink:.1}×)");

    // ---- bounded sweeps past the v1 wall --------------------------------
    let sweeps: &[(ModelCfg, usize)] = if smoke {
        &[(ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 2 }, 100_000)]
    } else {
        &[
            (ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 3 }, 3_000_000),
            (ModelCfg::paper(), 3_000_000),
        ]
    };
    for &(cfg, sweep_budget) in sweeps {
        let row = run_packed(
            "packed+value sym",
            // A deliberately small in-RAM frontier proves the disk-backed
            // path at scale (spilled > 0 below).
            Explorer::new(cfg).threads(threads).frontier_mem(1 << 14),
            cfg,
            sweep_budget,
        );
        assert!(
            row.exhausted || row.states == sweep_budget,
            "a truncated sweep must have stored exactly its budget"
        );
        rows.push(row);
    }

    print_table(
        "Model checking at scale — packed/symmetry/disk explorer vs v1 (4 nodes, 1 Byzantine)",
        &[
            "instance",
            "engine",
            "states",
            "transitions",
            "depth",
            "exhausted",
            "time",
            "states/sec",
            "bytes/state",
            "spilled",
        ],
        &rows.iter().map(Row::cells).collect::<Vec<_>>(),
    );
    println!(
        "\npacked vs v1 at {} values × {} rounds: {speedup:.1}× states/sec (threads={threads}), \
         {shrink:.1}× less memory per state (asserted ≥{min_speedup}× and ≥8×).",
        head.values, head.rounds
    );

    // ---- counterexample tracing on a forged near-disagreement -----------
    let cfg = ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 };
    let mut forged = State::initial(&cfg);
    forged.round = vec![1, 1, 1];
    for p in 0..2 {
        for phase in 1..=4 {
            forged.votes[p].set(0, phase, 0);
        }
        for phase in 1..=3 {
            forged.votes[p].set(1, phase, 1);
        }
    }
    let report = Explorer::new(cfg).with_initial(forged).trace(true).run(1_000_000);
    assert!(report.violations > 0, "forged disagreement must be reachable");
    let trace = report.counterexample.expect("trace reconstructed");
    assert_eq!(trace.decided.len(), 2, "trace ends in two decided values");
    println!(
        "\nforged-disagreement audit: {} violating states; shortest trace = {} steps to \
         decided values {:?}.",
        report.violations,
        trace.steps.len(),
        trace.decided
    );
}
