//! **E5 — optimistic responsiveness** (Sections 1–2): after GST, responsive
//! protocols decide in time proportional to the *actual* network delay δ
//! (TetraBFT within 7δ of the view change), while a non-responsive protocol
//! pays the conservative bound Δ regardless of how fast the network really
//! is.
//!
//! Scenario: the view-0 leader is crashed, Δ is fixed at 100 ticks, and the
//! actual per-hop delay δ sweeps 1..50. Reported: decision time after the
//! 9Δ timeout.

use tetrabft::Params;
use tetrabft_baselines::{BlogNode, IthsNode};
use tetrabft_bench::print_table;
use tetrabft_sim::{LinkPolicy, SilentNode, SimBuilder};
use tetrabft_types::{Config, NodeId, Value};

fn recovery_after_timeout<F>(delta: u64, hop: u64, build: F) -> u64
where
    F: Fn(NodeId) -> Box<dyn tetrabft_sim::Node<Msg = tetrabft::Message, Output = Value>>,
{
    let mut sim = SimBuilder::new(4).policy(LinkPolicy::synchronous(hop)).build_boxed(build);
    assert!(sim.run_until_outputs(3, 50_000_000));
    sim.outputs()[0].time.0 - Params::new(delta).view_timeout()
}

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let delta = 100u64;
    let deltas_actual = [1u64, 2, 5, 10, 20, 50];

    let mut rows = Vec::new();
    for &hop in &deltas_actual {
        // TetraBFT (responsive): expect ≈ 7δ.
        let tetra = recovery_after_timeout(delta, hop, |id| {
            if id == NodeId(0) {
                Box::new(SilentNode::new())
            } else {
                Box::new(tetrabft::TetraNode::new(cfg, Params::new(delta), id, Value::from_u64(7)))
            }
        });

        // IT-HS (responsive): expect ≈ 9δ.
        let iths = {
            let mut sim =
                SimBuilder::new(n).policy(LinkPolicy::synchronous(hop)).build_boxed(|id| {
                    if id == NodeId(0) {
                        Box::new(SilentNode::new())
                    } else {
                        Box::new(IthsNode::new(cfg, Params::new(delta), id, Value::from_u64(7)))
                    }
                });
            assert!(sim.run_until_outputs(3, 50_000_000));
            sim.outputs()[0].time.0 - Params::new(delta).view_timeout()
        };

        // Blog IT-HS (non-responsive): expect ≈ Δ + 5δ, flat in δ.
        let blog = {
            let mut sim =
                SimBuilder::new(n).policy(LinkPolicy::synchronous(hop)).build_boxed(|id| {
                    if id == NodeId(0) {
                        Box::new(SilentNode::new())
                    } else {
                        Box::new(BlogNode::new(cfg, Params::new(delta), id, Value::from_u64(7)))
                    }
                });
            assert!(sim.run_until_outputs(3, 50_000_000));
            sim.outputs()[0].time.0 - Params::new(delta).view_timeout()
        };

        rows.push(vec![
            hop.to_string(),
            format!("{tetra} (= {}δ)", tetra / hop),
            format!("{iths} (= {}δ)", iths / hop),
            format!("{blog} (Δ + {}δ)", blog.saturating_sub(delta) / hop),
        ]);

        assert_eq!(tetra, 7 * hop, "TetraBFT recovery must be exactly 7δ after GST");
        assert!(blog >= delta, "non-responsive recovery always pays Δ");
    }

    print_table(
        "Responsiveness — recovery latency after the 9Δ timeout (Δ = 100 fixed, δ sweeps)",
        &["δ (actual delay)", "TetraBFT", "IT-HS", "IT-HS blog (non-responsive)"],
        &rows,
    );

    println!(
        "\nReproduced: responsive protocols track δ (TetraBFT at 7δ — the paper's \
         'at most 7δ'; IT-HS at 9δ), while the non-responsive baseline is dominated \
         by the fixed Δ wait even on a fast network — the practical argument of \
         Section 1.2."
    );
}
