//! **Saturation under client load** — prices the paper's latency-optimal
//! commit (5δ) against *offered traffic* instead of an idle RTT: an
//! open-loop Poisson fleet of concurrent TCP clients submits against a
//! sharded serving cluster while the harness sweeps the aggregate rate
//! and measures p50/p99/p999 commit latency and finalized throughput at
//! each load point, locating the saturation knee.
//!
//! Asserted at every scale:
//! - the full client fleet is sustained to the end of every load point
//!   (full mode: ≥10k concurrent sockets, which is why the fleet runs in
//!   a re-executed child process with its own fd table);
//! - below the knee the cluster keeps up (≥90% of offered finalized) and
//!   p99 commit latency stays flat — within 2× of the best load point,
//!   plus an allowance of one 9Δ view timeout (on a contended box the
//!   scheduler can stall a shard into a single view change, which parks
//!   a tail of that window's transactions without saying anything about
//!   queueing) — i.e. latency is a property of the protocol, not of the
//!   queue;
//! - the first load point is below the knee (the sweep starts in the
//!   flat regime).
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for the CI smoke run: reduced client
//! count and shorter windows, every assertion still active.

use std::time::Duration;

use tetrabft_bench::print_table;
use tetrabft_load::{knee_index, print_matrix, sweep, LoadOptions};

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

fn main() {
    // Child-process fleets re-execute this binary with
    // TETRABFT_LOAD_CHILD set; they must not fall through into the
    // harness below.
    tetrabft_load::maybe_run_child();

    let (clients, rates, duration): (usize, &[u64], Duration) = if smoke() {
        (1_000, &[150, 300], Duration::from_secs(3))
    } else {
        (10_000, &[250, 1_000, 4_000, 16_000, 64_000], Duration::from_secs(10))
    };

    let mut base = LoadOptions::new(clients, 0, duration);
    base.shards = 2;
    base.nodes_per_shard = 4;
    base.delta_ms = 100;
    base.remote_fleet = true;

    let reports = sweep(&base, rates).expect("saturation sweep runs");
    print_matrix(
        &format!(
            "Load saturation — {} clients, {} shards × {} nodes, open loop",
            clients, base.shards, base.nodes_per_shard
        ),
        &reports,
    );

    // ---- fleet sustained at every load point ---------------------------
    for report in &reports {
        assert_eq!(
            report.connected, clients as u64,
            "all {clients} clients must stay connected through the {} tx/s point",
            report.offered_tps
        );
        assert!(report.submitted > 0, "open loop must submit");
    }

    // ---- knee location and flat p99 below it ---------------------------
    let knee = knee_index(&reports);
    assert!(knee >= 1, "the lowest offered rate must be below the saturation knee");
    let below = &reports[..knee];
    let p99_min = below.iter().map(|r| r.p99_us).min().expect("non-empty");
    let p99_max = below.iter().map(|r| r.p99_us).max().expect("non-empty");
    let stall_us = u32::try_from(9 * base.delta_ms * 1000).expect("small delta");
    assert!(
        p99_max <= p99_min.saturating_mul(2).saturating_add(stall_us),
        "p99 must stay flat (within 2x + one view timeout) below the knee: \
         min {p99_min}us max {p99_max}us"
    );

    let knee_cell = if knee == reports.len() {
        format!("> {} tx/s (never saturated)", rates[rates.len() - 1])
    } else {
        format!("at {} tx/s offered", rates[knee])
    };
    print_table(
        "Saturation knee",
        &["clients", "knee", "flat-p99 band (ms)"],
        &[vec![
            clients.to_string(),
            knee_cell,
            format!("{:.1} .. {:.1}", f64::from(p99_min) / 1000.0, f64::from(p99_max) / 1000.0),
        ]],
    );
}
