//! Criterion micro-bench: end-to-end simulator throughput — full good-case
//! consensus runs per second, and multi-shot blocks finalized per wall
//! second. These bound the cost of every experiment in this repository and
//! demonstrate the state machines are cheap enough for real deployment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tetrabft::{Params, TetraNode};
use tetrabft_multishot::MultiShotNode;
use tetrabft_sim::{LinkPolicy, SimBuilder, Time};
use tetrabft_types::{Config, Value};

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_shot_good_case");
    for &n in &[4usize, 16, 40] {
        let cfg = Config::new(n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(|id| {
                    TetraNode::new(cfg, Params::new(1_000_000), id, Value::from_u64(1))
                });
                assert!(sim.run_until_outputs(n, 10_000_000));
                black_box(sim.outputs().len())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("multishot_100_blocks");
    for &n in &[4usize, 10] {
        let cfg = Config::new(n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut sim = SimBuilder::new(n)
                    .policy(LinkPolicy::synchronous(1))
                    .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
                sim.run_until(Time(104)); // ≈100 finalized blocks per node
                black_box(sim.outputs().len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_steps
}
criterion_main!(benches);
