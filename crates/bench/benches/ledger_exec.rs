//! **Ledger execution** — pricing the application layer the chain carries:
//! applied transfers/s through the deterministic state machine, the
//! per-block state-root cost of the persistent account trie against a
//! rescan-the-world baseline, the invalid-transaction rejection path, and
//! the end-to-end consensus→execution pipeline on the sharded sim.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for a tiny CI smoke run (all correctness
//! assertions stay armed; the perf-ratio gate needs the full run).

use std::collections::HashMap;
use std::time::Instant;

use tetrabft::Params;
use tetrabft_bench::print_table;
use tetrabft_ledger::{
    shard_of_account, transfer_admission, AccountId, Ledger, LedgerReplica, Transfer,
};
use tetrabft_multishot::{MultiShotNode, ShardSpec, ShardedSim, Transaction};
use tetrabft_sim::{LinkPolicy, Time};
use tetrabft_types::{Config, NodeId};

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

/// The retained baseline: account state in a plain `HashMap`, with the
/// per-block commitment recomputed by rescanning every account in sorted
/// order — what a ledger without a persistent hashed structure must do.
/// The trie ledger's per-node cached digests amortize the same commitment
/// into the inserts themselves.
struct RescanLedger {
    accounts: HashMap<u64, (u64, u64)>, // id -> (balance, nonce)
    root: u64,
}

impl RescanLedger {
    fn new(genesis: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let accounts = genesis.into_iter().map(|(id, bal)| (id, (bal, 0))).collect();
        RescanLedger { accounts, root: 0 }
    }

    fn apply_block(&mut self, slot: u64, txs: &[Vec<u8>]) -> usize {
        use tetrabft_wire::Wire;
        let mut applied = 0;
        for bytes in txs {
            let Ok(t) = Transfer::from_bytes(bytes) else { continue };
            if t.amount == 0 || t.from == t.to {
                continue;
            }
            let from = self.accounts.entry(t.from.0).or_insert((0, 0));
            if t.nonce != from.1 || from.0 < t.amount {
                continue;
            }
            from.0 -= t.amount;
            from.1 += 1;
            let to = self.accounts.entry(t.to.0).or_insert((0, 0));
            let Some(credited) = to.0.checked_add(t.amount) else { continue };
            to.0 = credited;
            applied += 1;
        }
        // The full-rescan commitment: sort every account, hash the lot.
        let mut entries: Vec<_> = self.accounts.iter().map(|(id, a)| (*id, *a)).collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_be_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.root);
        mix(slot);
        for (id, (bal, nonce)) in entries {
            mix(id);
            mix(bal);
            mix(nonce);
        }
        self.root = h;
        applied
    }
}

/// Pre-built valid traffic: `blocks` blocks of `per_block` transfers
/// round-robining over `accounts` payers, nonces sequenced per account.
fn valid_blocks(accounts: u64, blocks: usize, per_block: usize) -> Vec<Vec<Vec<u8>>> {
    let mut nonces = vec![0u64; accounts as usize];
    (0..blocks)
        .map(|b| {
            (0..per_block)
                .map(|i| {
                    let from = ((b * per_block + i) as u64 % accounts) + 1;
                    let to = (from % accounts) + 1;
                    let nonce = nonces[(from - 1) as usize];
                    nonces[(from - 1) as usize] += 1;
                    Transfer { from: AccountId(from), to: AccountId(to), amount: 1, nonce }
                        .canonical_bytes()
                })
                .collect()
        })
        .collect()
}

fn main() {
    let (accounts, blocks, per_block) =
        if smoke() { (128u64, 40usize, 64usize) } else { (4_096u64, 1_500usize, 256usize) };
    let genesis: Vec<(AccountId, u64)> =
        (1..=accounts).map(|id| (AccountId(id), 1_000_000)).collect();
    let supply = accounts as u128 * 1_000_000;
    let traffic = valid_blocks(accounts, blocks, per_block);
    let total_txs = (blocks * per_block) as u64;

    // ---- applied transfers/s, trie ledger vs rescan baseline ------------
    let mut ledger = Ledger::new(genesis.clone());
    let t0 = Instant::now();
    let mut applied = 0usize;
    for (b, txs) in traffic.iter().enumerate() {
        applied += ledger.apply_block(b as u64 + 1, txs).applied;
    }
    let trie_time = t0.elapsed();
    assert_eq!(applied as u64, total_txs, "all pre-sequenced transfers must apply");
    assert_eq!(ledger.accounts().total_balance(), supply, "conservation");

    let mut rescan = RescanLedger::new((1..=accounts).map(|id| (id, 1_000_000)));
    let t0 = Instant::now();
    let mut rescan_applied = 0usize;
    for (b, txs) in traffic.iter().enumerate() {
        rescan_applied += rescan.apply_block(b as u64 + 1, txs);
    }
    let rescan_time = t0.elapsed();
    assert_eq!(rescan_applied, applied, "both executors apply the same transfers");

    // Determinism: a second trie run lands on bit-identical roots.
    let mut ledger2 = Ledger::new(genesis.clone());
    for (b, txs) in traffic.iter().enumerate() {
        ledger2.apply_block(b as u64 + 1, txs);
    }
    assert_eq!(ledger2.root(), ledger.root(), "execution is deterministic");

    let per_block_us = |t: std::time::Duration, b: usize| t.as_secs_f64() * 1e6 / b as f64;
    let rows = vec![
        vec![
            "trie (persistent, cached digests)".to_string(),
            format!("{:.0}", applied as f64 / trie_time.as_secs_f64()),
            format!("{:.1}", per_block_us(trie_time, blocks)),
            format!("{}", ledger.root()),
        ],
        vec![
            "rescan baseline (HashMap + full rehash)".to_string(),
            format!("{:.0}", rescan_applied as f64 / rescan_time.as_secs_f64()),
            format!("{:.1}", per_block_us(rescan_time, blocks)),
            format!("root:{:016x}", rescan.root),
        ],
    ];
    print_table(
        &format!("Ledger execution — {accounts} accounts, {blocks} blocks × {per_block} transfers"),
        &["executor", "applied tx/s", "µs/block (incl. root)", "final root"],
        &rows,
    );

    // ---- per-block root cost vs account-set size -------------------------
    // The trie's commitment upkeep is O(writes · depth) per block; the
    // rescan baseline is O(accounts). Growing the account set shows the
    // crossover: per-block cost stays near-flat for the trie and grows
    // linearly for the rescan.
    let root_blocks = if smoke() { 20 } else { 100 };
    let sizes: &[u64] = if smoke() { &[128, 2_048] } else { &[4_096, 65_536] };
    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for &size in sizes {
        let traffic = valid_blocks(size, root_blocks, per_block);
        let mut trie = Ledger::new((1..=size).map(|id| (AccountId(id), 1_000_000)));
        let t0 = Instant::now();
        for (b, txs) in traffic.iter().enumerate() {
            trie.apply_block(b as u64 + 1, txs);
        }
        let trie_t = t0.elapsed();
        let mut rescan = RescanLedger::new((1..=size).map(|id| (id, 1_000_000)));
        let t0 = Instant::now();
        for (b, txs) in traffic.iter().enumerate() {
            rescan.apply_block(b as u64 + 1, txs);
        }
        let rescan_t = t0.elapsed();
        costs.push((trie_t, rescan_t));
        rows.push(vec![
            size.to_string(),
            format!("{:.1}", per_block_us(trie_t, root_blocks)),
            format!("{:.1}", per_block_us(rescan_t, root_blocks)),
            format!("{:.2}×", rescan_t.as_secs_f64() / trie_t.as_secs_f64()),
        ]);
    }
    print_table(
        &format!("Per-block root cost vs account-set size — {per_block} transfers/block"),
        &["accounts", "trie µs/block", "rescan µs/block", "rescan/trie"],
        &rows,
    );
    if !smoke() {
        // At the largest size the account set dwarfs the write set: the
        // incremental trie commitment must beat the full rescan outright.
        let (trie_t, rescan_t) = costs[costs.len() - 1];
        assert!(
            trie_t < rescan_t,
            "trie root upkeep must beat the full rescan at {} accounts ({trie_t:?} vs {rescan_t:?})",
            sizes[sizes.len() - 1]
        );
    }

    // ---- invalid-transaction rejection path ------------------------------
    // Half the traffic is invalid (replays, overdrafts, malformed): the
    // rejection path must be cheap, exact, and leave roots untouched by
    // the rejects.
    let mut mixed = Vec::new();
    let mut nonces = vec![0u64; accounts as usize];
    for b in 0..blocks {
        let mut txs = Vec::with_capacity(per_block);
        for i in 0..per_block {
            let from = ((b * per_block + i) as u64 % accounts) + 1;
            let to = (from % accounts) + 1;
            if i % 2 == 0 {
                let nonce = nonces[(from - 1) as usize];
                nonces[(from - 1) as usize] += 1;
                txs.push(
                    Transfer { from: AccountId(from), to: AccountId(to), amount: 1, nonce }
                        .canonical_bytes(),
                );
            } else {
                match i % 6 {
                    1 => {
                        // Bad nonce: a replay once the account has moved, a
                        // far-future gap while it is still fresh — wrong
                        // either way.
                        let cur = nonces[(from - 1) as usize];
                        let nonce = if cur > 0 { cur - 1 } else { cur + 1_000_000 };
                        txs.push(
                            Transfer { from: AccountId(from), to: AccountId(to), amount: 1, nonce }
                                .canonical_bytes(),
                        );
                    }
                    3 => txs.push(
                        // Overdraft: more than the whole supply.
                        Transfer {
                            from: AccountId(from),
                            to: AccountId(to),
                            amount: u64::MAX,
                            nonce: nonces[(from - 1) as usize],
                        }
                        .canonical_bytes(),
                    ),
                    _ => txs.push(b"not a transfer".to_vec()), // malformed
                }
            }
        }
        mixed.push(txs);
    }
    let mut dirty = Ledger::new(genesis.clone());
    let t0 = Instant::now();
    let (mut ok, mut bad) = (0usize, 0usize);
    for (b, txs) in mixed.iter().enumerate() {
        let receipt = dirty.apply_block(b as u64 + 1, txs);
        ok += receipt.applied;
        bad += receipt.rejected.len();
    }
    let mixed_time = t0.elapsed();
    assert_eq!(ok + bad, blocks * per_block);
    assert_eq!(ok, blocks * (per_block / 2 + per_block % 2), "exactly the valid half applies");
    assert_eq!(dirty.accounts().total_balance(), supply, "rejects never move funds");
    // Identical mixed stream twice ⇒ identical root: rejection is part of
    // the deterministic state machine.
    let mut dirty2 = Ledger::new(genesis.clone());
    for (b, txs) in mixed.iter().enumerate() {
        dirty2.apply_block(b as u64 + 1, txs);
    }
    assert_eq!(dirty2.root(), dirty.root());
    print_table(
        "Invalid-transaction path — 50% invalid (replay / overdraft / malformed)",
        &["applied", "rejected", "rejects/s", "µs/block"],
        &[vec![
            ok.to_string(),
            bad.to_string(),
            format!("{:.0}", bad as f64 / mixed_time.as_secs_f64()),
            format!("{:.1}", per_block_us(mixed_time, blocks)),
        ]],
    );

    // ---- end to end: consensus → merge → execution (k = 1, 2) -----------
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let horizon: u64 = if smoke() { 40 } else { 200 };
    let per_account = if smoke() { 8u64 } else { 32 };
    let exec_accounts = 8u64;
    let exec_genesis: Vec<(AccountId, u64)> =
        (1..=exec_accounts).map(|id| (AccountId(id), 10_000)).collect();
    let mut rows = Vec::new();
    for k in [1usize, 2] {
        let spec = ShardSpec::new(k);
        let mut sharded = ShardedSim::new(
            k,
            n,
            0,
            |_, _| LinkPolicy::synchronous(1),
            |shard, id| {
                let mut node = MultiShotNode::new(cfg, Params::new(1_000), id)
                    .with_admission(transfer_admission);
                if id == NodeId(0) {
                    for from in 1..=exec_accounts {
                        if shard_of_account(&spec, AccountId(from)) != shard {
                            continue;
                        }
                        for t in 0..per_account {
                            let tx = Transfer {
                                from: AccountId(from),
                                to: AccountId((from % exec_accounts) + 1),
                                amount: 1,
                                nonce: t,
                            };
                            node.submit_tx(&tx).unwrap();
                        }
                    }
                }
                node
            },
        );
        sharded.run_until(Time(horizon));
        let t0 = Instant::now();
        let mut replica = LedgerReplica::sharded(spec, exec_genesis.clone());
        for (j, shard) in sharded.shards().iter().enumerate() {
            for record in shard.outputs().iter().filter(|o| o.node == NodeId(0)) {
                replica.push(j, &record.output);
            }
        }
        let exec_time = t0.elapsed();
        let applied: usize = replica.receipts().iter().map(|r| r.applied).sum();
        assert_eq!(
            applied as u64,
            exec_accounts * per_account,
            "every submitted transfer finalizes and applies exactly once (k={k})"
        );
        assert_eq!(replica.ledger().accounts().total_balance(), exec_accounts as u128 * 10_000);
        rows.push(vec![
            k.to_string(),
            replica.height().to_string(),
            applied.to_string(),
            format!("{:.0}", replica.height() as f64 / exec_time.as_secs_f64()),
            format!("{}", replica.root()),
        ]);
    }
    print_table(
        &format!(
            "Consensus → execution — n={n}, {exec_accounts} accounts × {per_account} transfers, \
             horizon {horizon} delays, account-routed shards"
        ),
        &["k", "blocks executed", "applied", "blocks/s (exec)", "final root"],
        &rows,
    );

    println!(
        "\nExecution is deterministic (same stream ⇒ bit-identical chained roots), \
         invalid transactions reject without touching state, and the persistent \
         trie keeps per-block commitments incremental instead of rescanning \
         every account."
    );
}
