//! **Crash-recovery latency** — how long a durable multishot node takes
//! to come back after `kill -9`, as a function of finalized-chain length.
//!
//! The durability design splits state two ways: the per-live-slot vote WAL
//! is rewritten in place and stays **constant-size** no matter how long
//! the chain runs (the paper's bounded-storage claim, crash-real), while
//! the finalized chain is an append-only log that grows linearly.
//! Restart therefore costs one scan of the chain log to rebuild the tip
//! index plus a constant amount of live-slot and mempool restoration —
//! linear in history size on disk, far below a second even at 10k blocks,
//! and entirely independent of how much *live* voting state existed at
//! the moment of the crash.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for the CI smoke run (shorter chains;
//! every assertion still executes).

use std::path::Path;
use std::time::{Duration, Instant};

use tetrabft::Params;
use tetrabft_bench::print_table;
use tetrabft_multishot::{Block, MultiShotNode, GENESIS_HASH};
use tetrabft_store::NodeStore;
use tetrabft_types::{Config, FsyncPolicy, NodeId, Phase, Slot, Value, View, VoteBook};
use tetrabft_wire::Wire;

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

/// Writes a store shaped exactly like a crashed node's: `len` finalized
/// blocks in the chain log, votes churning in the slot just past the tip,
/// and a pending mempool snapshot.
fn seed_store(dir: &Path, len: u64) -> (u64, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let mut store = NodeStore::open(dir, FsyncPolicy::Never).expect("store opens");
    let mut parent = GENESIS_HASH;
    for s in 1..=len {
        let mut book = VoteBook::new();
        for phase in Phase::ALL {
            book.record(phase, View(s), Value::from_u64(s));
        }
        store.record_votes(Slot(s + 1), View(0), Slot(s), &book).expect("votes recorded");
        let txs = (0..4).map(|t| format!("slot{s}-tx{t}-{:032}", s * 4 + t).into_bytes());
        let block = Block::new(Slot(s), parent, txs.collect());
        let hash = block.hash();
        store.append_block(Slot(s), hash.0, &block.to_bytes()).expect("block appended");
        parent = hash;
    }
    store
        .save_mempool((0..8u32).map(|t| format!("pending-{t}").into_bytes()))
        .expect("mempool snapshot");
    store.sync().expect("sync");
    (store.live_bytes(), store.chain_bytes())
}

fn main() {
    let lengths: &[u64] = if smoke() { &[50, 100] } else { &[100, 1_000, 10_000] };
    let cfg = Config::new(4).unwrap();
    let params = Params::new(50).with_fsync(FsyncPolicy::Always);

    let mut rows = Vec::new();
    let mut live_sizes = Vec::new();
    let mut chain_sizes = Vec::new();
    let mut times = Vec::new();
    for &len in lengths {
        let dir = std::env::temp_dir()
            .join(format!("tetrabft-recovery-bench-{}-{len}", std::process::id()));
        let (live, chain) = seed_store(&dir, len);

        let started = Instant::now();
        let node =
            MultiShotNode::durable(cfg, params, NodeId(0), dir.clone()).expect("restart from disk");
        let elapsed = started.elapsed();

        assert_eq!(node.finalized_slot(), Slot(len), "the tip must survive the crash");
        let (live_after, chain_after, chain_len) =
            node.durable_stats().expect("restarted node is durable");
        assert_eq!(chain_len, len, "every finalized block must be recovered");
        assert_eq!(live_after, live, "recovery must not inflate the live-slot WAL");
        assert_eq!(chain_after, chain, "recovery must not rewrite the chain log");
        assert!(elapsed < Duration::from_secs(5), "recovery after {len} blocks took {elapsed:?}");

        live_sizes.push(live);
        chain_sizes.push(chain);
        times.push(elapsed);
        rows.push(vec![
            len.to_string(),
            chain.to_string(),
            live.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The storage split the design promises: live state bounded by a
    // constant at every chain length (the WAL oscillates below the
    // compaction slack, it never tracks history), chain log linear in it.
    const LIVE_BOUND: u64 = 16 * 1024;
    assert!(
        live_sizes.iter().all(|&l| l <= LIVE_BOUND),
        "live-slot WAL must stay below the constant compaction bound \
         ({LIVE_BOUND} B) at every chain length: {live_sizes:?}"
    );
    for (pair, lens) in chain_sizes.windows(2).zip(lengths.windows(2)) {
        let growth = pair[1] as f64 / pair[0] as f64;
        let expected = lens[1] as f64 / lens[0] as f64;
        assert!(
            (growth / expected - 1.0).abs() < 0.2,
            "chain log must grow linearly: {}x blocks grew bytes {growth:.2}x",
            expected
        );
    }

    print_table(
        "Crash-recovery latency vs chain length (restart = chain-log scan + constant \
         live-slot and mempool restore)",
        &["chain length", "chain log (bytes)", "live WAL (bytes)", "recovery (ms)"],
        &rows,
    );

    println!(
        "\nRestart after kill -9 is a single pass over the finalized chain log plus a \
         constant-size live-slot restore: the vote WAL stayed below {} bytes at every \
         chain length above (max seen: {}), so the paper's bounded live-state claim \
         holds on disk exactly as it does in memory, and recovery latency ({:.2} ms at \
         the longest chain) stays orders of magnitude below the view timeout.",
        LIVE_BOUND,
        live_sizes.iter().max().unwrap(),
        times.last().unwrap().as_secs_f64() * 1e3
    );
}
