//! **E4 — Section 5 (formal verification)**: agreement of the abstract
//! TetraBFT model. The paper verifies `Consistency` with Apalache (4 nodes,
//! 1 Byzantine, 3 values, 5 views, inductive invariant, ~3 h). This bench
//! reproduces the result with explicit-state BFS: exhaustively at
//! explicitly-tractable bounds, and as a deep bounded sweep at the paper's
//! bounds (the sampled inductive-invariant obligations live in
//! `crates/mc/tests/inductive.rs`).

use std::time::Instant;

use tetrabft_bench::print_table;
use tetrabft_mc::{Explorer, ModelCfg};

fn main() {
    let mut rows = Vec::new();
    let instances = [
        ("exhaustive", ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 1 }, 5_000_000),
        ("exhaustive", ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 1 }, 5_000_000),
        ("exhaustive", ModelCfg { nodes: 4, byzantine: 1, values: 2, rounds: 2 }, 1_500_000),
        ("bounded", ModelCfg { nodes: 4, byzantine: 1, values: 3, rounds: 5 }, 3_000_000),
    ];
    for (mode, cfg, budget) in instances {
        let started = Instant::now();
        let report = Explorer::new(cfg).check_inductive(true).run(budget);
        let secs = started.elapsed().as_secs_f64();
        rows.push(vec![
            format!("{} values × {} rounds", cfg.values, cfg.rounds),
            mode.to_string(),
            report.states.to_string(),
            report.transitions.to_string(),
            report.depth.to_string(),
            if report.exhausted { "yes".into() } else { "budget".into() },
            report.violations.to_string(),
            report.invariant_violations.to_string(),
            format!("{secs:.1}s"),
        ]);
        assert_eq!(report.violations, 0, "agreement must hold");
        assert_eq!(report.invariant_violations, 0, "ConsistencyInvariant must hold");
    }

    print_table(
        "Section 5 — agreement model checking (4 nodes, 1 angelic Byzantine)",
        &[
            "instance",
            "mode",
            "states",
            "transitions",
            "depth",
            "exhausted",
            "agreement violations",
            "invariant violations",
            "time",
        ],
        &rows,
    );

    println!(
        "\nPaper: Apalache verifies the inductive invariant for 3 values × 5 views \
         in ~3 h. Here: zero violations across every explored state (exhaustive at \
         small bounds, {}-state frontier at the paper's bounds), plus the sampled \
         inductive obligations in crates/mc/tests/inductive.rs.",
        rows.last().map(|r| r[2].clone()).unwrap_or_default()
    );
}
