//! **Zero-alloc consensus hot path** — the perf harness gating the scratch
//! buffer, tally-table, inline-vec, and batched-stepping work.
//!
//! Two pipelines run the identical good-case multi-shot scenario with
//! *durable* nodes — the deployed shape, where every persist seal writes
//! the dirtied vote books to the write-ahead log:
//!
//! * **baseline** — `Params::with_hotpath_baseline(true)` routes quorum
//!   checks through the retained pre-tally-table allocating scans, and the
//!   simulator steps unbatched: one persist/flush seal (one WAL write per
//!   dirtied slot) per event — the shape of the code before this
//!   optimization pass;
//! * **hot path** — tally-table quorum checks, scratch-buffer reuse,
//!   inline action buffers, and batched stepping (one seal per coalesced
//!   batch of same-instant events), all on.
//!
//! Decisions are identical either way (asserted); only the cost differs.
//! A counting global allocator prices every window: engine steps per wall
//! second, blocks finalized per second, and allocations/bytes per step.
//!
//! A third measurement isolates where seal coalescing acts in deployment:
//! the **mailbox drain** replays one node's recorded good-case traffic
//! into a durable engine — per-event sealing versus [`Engine::step_batch`]
//! over 64-event chunks, the TCP runtime's drain bound. (The simulator's
//! global queue interleaves targets, so consecutive same-node events are
//! rare there; a per-node mailbox is where batching pays.)
//!
//! Asserted gates (smoke mode included):
//! * mailbox-drain steps/s ≥ 2× the per-event-seal baseline, on the
//!   identical finalized chain;
//! * good-case steady-state allocations per step stay bounded (and below
//!   baseline), and the end-to-end pipeline beats the baseline;
//! * a warmed engine fed duplicate votes allocates **exactly zero** — the
//!   strict steady-state target, checked at the dispatch level where no
//!   sim bookkeeping (event queue, outputs, metrics) can blur it.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for the CI smoke run (n ∈ {4, 16}).

use std::time::Instant;

use tetrabft::Params;
use tetrabft_bench::{print_table, CountingAlloc};
use tetrabft_multishot::{BlockHash, Finalized, MsMessage, MultiShotNode};
use tetrabft_sim::{
    Dest, Engine, EngineEvent, LinkPolicy, SimBuilder, Time, TimerId, TraceEvent, Transport,
};
use tetrabft_types::{Config, FsyncPolicy, NodeId, Slot, View};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

/// One measured window of the good-case pipeline.
#[derive(Debug, Clone, Copy)]
struct Sample {
    steps_per_s: f64,
    blocks_per_s: f64,
    allocs_per_step: f64,
    bytes_per_step: f64,
    /// Chain tip of node 0 at the end of the window (decision equality).
    tip: u64,
}

/// Runs n *durable* nodes of the good case (no faults, synchronous unit
/// delays, timers effectively off) over a warmup then a measured window.
/// Durable nodes pay the write-ahead persist on every seal, so the seal
/// cadence — per event unbatched, per batch on the hot path — is priced
/// the way the deployed runtime pays it. `FsyncPolicy::Never` keeps disk
/// sync jitter out of the measurement; the WAL writes themselves stay.
fn run_pipeline(n: usize, baseline: bool, horizon: u64) -> Sample {
    let cfg = Config::new(n).expect("valid n");
    let params =
        Params::new(1_000_000).with_fsync(FsyncPolicy::Never).with_hotpath_baseline(baseline);
    let root = std::env::temp_dir().join(format!(
        "tetrabft-hotpath-{}-n{n}-b{}",
        std::process::id(),
        u8::from(baseline)
    ));
    let _ = std::fs::remove_dir_all(&root);
    let stores = root.clone();
    let mut sim =
        SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).batched(!baseline).build(move |id| {
            MultiShotNode::durable(cfg, params, id, stores.join(format!("node{}", id.0)))
                .expect("fresh durable store")
        });

    // Warmup: every per-node container (registers, scratch buffers, event
    // queue, outbox) reaches its steady-state footprint.
    let warm = horizon / 5;
    sim.run_until(Time(warm));

    let steps0 = sim.metrics().events_processed;
    let blocks0 = sim.outputs().len();
    let alloc0 = ALLOC.snapshot();
    let wall = Instant::now();
    sim.run_until(Time(horizon));
    let elapsed = wall.elapsed().as_secs_f64();
    let alloc1 = ALLOC.snapshot();

    let steps = sim.metrics().events_processed - steps0;
    let blocks = (sim.outputs().len() - blocks0) as f64;
    let tip = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| o.output.slot.0)
        .max()
        .unwrap_or(0);
    assert!(steps > 0, "the measured window must process events (n={n})");
    drop(sim);
    let _ = std::fs::remove_dir_all(&root);
    Sample {
        steps_per_s: steps as f64 / elapsed,
        blocks_per_s: blocks / elapsed,
        allocs_per_step: alloc0.allocs_since(&alloc1) as f64 / steps as f64,
        bytes_per_step: alloc0.bytes_since(&alloc1) as f64 / steps as f64,
        tip,
    }
}

/// A transport that drops everything: isolates the engine + node cost from
/// any environment bookkeeping for the strict zero-alloc gate.
struct DropTransport;

impl Transport<MsMessage, Finalized> for DropTransport {
    fn send(&mut self, _dest: Dest, _msg: MsMessage) {}
    fn arm_timer(&mut self, _id: TimerId, _generation: u64, _after: u64) {}
    fn deliver_output(&mut self, _out: Finalized) {}
}

/// Drops sends and timers, but records finalizations: how the mailbox
/// drain proves both seal cadences decide the identical chain.
#[derive(Default)]
struct SinkTransport {
    outputs: u64,
    tip: u64,
}

impl Transport<MsMessage, Finalized> for SinkTransport {
    fn send(&mut self, _dest: Dest, _msg: MsMessage) {}
    fn arm_timer(&mut self, _id: TimerId, _generation: u64, _after: u64) {}
    fn deliver_output(&mut self, out: Finalized) {
        self.outputs += 1;
        self.tip = out.slot.0;
    }
}

/// Batch bound for the hot mailbox drain — the same bound the TCP runtime
/// uses when draining a node's event queue per wakeup.
const MAILBOX_BATCH: usize = 64;

/// Records every delivery into node 0's mailbox over a traced good-case
/// run: the event stream the deployed runtime would drain for that node.
fn recorded_mailbox(n: usize, horizon: u64) -> Vec<(Time, NodeId, MsMessage)> {
    let cfg = Config::new(n).expect("valid n");
    let params = Params::new(1_000_000);
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .record_trace(true)
        .build(move |id| MultiShotNode::new(cfg, params, id));
    sim.run_until(Time(horizon));
    sim.trace()
        .expect("tracing is on")
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Delivered { at, from, to, msg } if *to == NodeId(0) => {
                Some((*at, *from, msg.clone()))
            }
            _ => None,
        })
        .collect()
}

/// One mailbox-drain measurement.
#[derive(Debug, Clone, Copy)]
struct DrainSample {
    events_per_s: f64,
    allocs_per_event: f64,
    outputs: u64,
    tip: u64,
}

/// Replays node 0's recorded traffic into a fresh *durable* engine — the
/// deployed runtime shape, one node draining its mailbox.
///
/// * **baseline** — one `on_deliver` per event: every event pays a full
///   persist/flush seal (a WAL write per dirtied slot), the pre-batching
///   cadence;
/// * **hot path** — [`Engine::step_batch`] over [`MAILBOX_BATCH`]-event
///   chunks: the same dispatches, one seal per chunk, so re-dirtied slots
///   collapse to a single WAL record per batch.
fn drain_mailbox(n: usize, events: &[(Time, NodeId, MsMessage)], baseline: bool) -> DrainSample {
    let cfg = Config::new(n).expect("valid n");
    let params =
        Params::new(1_000_000).with_fsync(FsyncPolicy::Never).with_hotpath_baseline(baseline);
    let root = std::env::temp_dir().join(format!(
        "tetrabft-mailbox-{}-n{n}-b{}",
        std::process::id(),
        u8::from(baseline)
    ));
    let _ = std::fs::remove_dir_all(&root);
    let node = MultiShotNode::durable(cfg, params, NodeId(0), &root).expect("fresh durable store");
    let mut engine = Engine::new(node, NodeId(0), n);
    let mut transport = SinkTransport::default();
    engine.start(Time(0), &mut transport);

    let alloc0 = ALLOC.snapshot();
    let wall = Instant::now();
    if baseline {
        for (at, from, msg) in events {
            engine.on_deliver(*from, msg.clone(), *at, &mut transport);
        }
    } else {
        for chunk in events.chunks(MAILBOX_BATCH) {
            let now = chunk.last().expect("chunks are non-empty").0;
            engine.step_batch(
                chunk
                    .iter()
                    .map(|(_, from, msg)| EngineEvent::Deliver { from: *from, msg: msg.clone() }),
                now,
                &mut transport,
            );
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let alloc1 = ALLOC.snapshot();
    let _ = std::fs::remove_dir_all(&root);
    DrainSample {
        events_per_s: events.len() as f64 / elapsed,
        allocs_per_event: alloc0.allocs_since(&alloc1) as f64 / events.len() as f64,
        outputs: transport.outputs,
        tip: transport.tip,
    }
}

/// The strict gate: a warmed multi-shot engine fed duplicate/stale votes —
/// the steady-state shape of good-case traffic — must allocate exactly 0.
fn assert_steady_state_is_alloc_free() {
    let n = 4;
    let cfg = Config::new(n).expect("valid n");
    let me = NodeId(0);
    let mut engine = Engine::new(MultiShotNode::new(cfg, Params::new(1_000_000), me), me, n);
    let mut transport = DropTransport;
    engine.start(Time(0), &mut transport);

    // Votes from every peer for the live slot window: these exercise the
    // registers, tally tables, quorum checks, and the full drive loop.
    let votes: Vec<(NodeId, MsMessage)> = (0..n as u16)
        .flat_map(|peer| {
            (1..=4u64).map(move |slot| {
                (
                    NodeId(peer),
                    MsMessage::Vote { slot: Slot(slot), view: View(0), hash: BlockHash(0xABCD) },
                )
            })
        })
        .collect();

    // Two warm passes: the first grows containers to steady state, the
    // second confirms the shapes have settled before the counted window.
    for round in 1..=2u64 {
        for (from, msg) in &votes {
            engine.on_deliver(*from, msg.clone(), Time(round), &mut transport);
        }
    }

    let before = ALLOC.snapshot();
    for round in 0..100u64 {
        for (from, msg) in &votes {
            engine.on_deliver(*from, msg.clone(), Time(3 + round), &mut transport);
        }
    }
    let after = ALLOC.snapshot();
    let allocs = before.allocs_since(&after);
    assert_eq!(
        allocs,
        0,
        "steady-state dispatch must be allocation-free, got {allocs} allocations \
         over {} duplicate-vote deliveries",
        votes.len() * 100,
    );
    println!(
        "strict gate: {} duplicate-vote deliveries through a warmed engine → 0 allocations",
        votes.len() * 100
    );
}

/// The asserted ≥ 2× gate: drain the recorded mailbox both ways and
/// compare engine steps (drained events) per second.
fn run_mailbox_gate(json_sections: &mut Vec<String>) {
    let n = 4;
    let horizon: u64 = if smoke() { 800 } else { 3_000 };
    let events = recorded_mailbox(n, horizon);
    assert!(events.len() > 1_000, "the recorded run must produce real traffic");

    let base = drain_mailbox(n, &events, true);
    let fast = drain_mailbox(n, &events, false);
    assert_eq!(
        (base.outputs, base.tip),
        (fast.outputs, fast.tip),
        "both seal cadences must finalize the identical chain"
    );
    assert!(fast.tip > 0, "the drained mailbox must actually finalize blocks");

    let speedup = fast.events_per_s / base.events_per_s;
    println!(
        "mailbox drain (n={n}, {} events, durable): baseline {:.0}k steps/s \
         ({:.2} allocs/step) → batched {:.0}k steps/s ({:.2} allocs/step), {speedup:.2}x",
        events.len(),
        base.events_per_s / 1e3,
        base.allocs_per_event,
        fast.events_per_s / 1e3,
        fast.allocs_per_event,
    );
    json_sections.push(format!(
        "  \"mailbox_drain\": {{\"n\": {n}, \"events\": {}, \"steps_per_s\": {:.0}, \
         \"baseline_steps_per_s\": {:.0}, \"speedup\": {speedup:.2}, \
         \"allocs_per_step\": {:.3}, \"baseline_allocs_per_step\": {:.3}}}",
        events.len(),
        fast.events_per_s,
        base.events_per_s,
        fast.allocs_per_event,
        base.allocs_per_event,
    ));

    assert!(
        speedup >= 2.0,
        "batched stepping must drain the mailbox ≥ 2x as fast as per-event \
         sealing (got {speedup:.2}x)"
    );
    println!("mailbox-drain speedup: {speedup:.2}x (required ≥ 2x)");
}

fn main() {
    let sizes: &[usize] = if smoke() { &[4, 16] } else { &[4, 16, 40] };
    let horizon: u64 = if smoke() { 150 } else { 400 };

    assert_steady_state_is_alloc_free();

    let mut json_sections: Vec<String> = Vec::new();
    run_mailbox_gate(&mut json_sections);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut best_speedup = 0.0f64;
    let mut json_entries: Vec<String> = Vec::new();
    for &n in sizes {
        let base = run_pipeline(n, true, horizon);
        let fast = run_pipeline(n, false, horizon);
        assert_eq!(
            base.tip, fast.tip,
            "baseline and hot path must finalize the same chain (n={n})"
        );
        let speedup = fast.steps_per_s / base.steps_per_s;
        best_speedup = best_speedup.max(speedup);
        rows.push(vec![
            n.to_string(),
            format!("{:.0}k", base.steps_per_s / 1e3),
            format!("{:.0}k", fast.steps_per_s / 1e3),
            format!("{speedup:.2}x"),
            format!("{:.2}", base.allocs_per_step),
            format!("{:.2}", fast.allocs_per_step),
            format!("{:.0}", fast.bytes_per_step),
            format!("{:.0}k", fast.blocks_per_s / 1e3),
        ]);
        json_entries.push(format!(
            "    {{\"n\": {n}, \"steps_per_s\": {:.0}, \"baseline_steps_per_s\": {:.0}, \
             \"speedup\": {speedup:.2}, \"allocs_per_step\": {:.3}, \
             \"baseline_allocs_per_step\": {:.3}, \"bytes_per_step\": {:.1}, \
             \"blocks_per_s\": {:.0}}}",
            fast.steps_per_s,
            base.steps_per_s,
            fast.allocs_per_step,
            base.allocs_per_step,
            fast.bytes_per_step,
            fast.blocks_per_s,
        ));

        // Sim-level steady-state allocation bound: the full harness (event
        // queue, slot turnover, outputs) plus the durable store add
        // bookkeeping on top of the zero-alloc dispatch, but the good
        // case must stay bounded — and below baseline.
        assert!(
            fast.allocs_per_step < 6.0,
            "good-case allocations per step must stay below 6.0, got {:.3} at n={n}",
            fast.allocs_per_step
        );
        assert!(
            fast.allocs_per_step < base.allocs_per_step,
            "hot path must allocate less than baseline at n={n} ({:.3} vs {:.3})",
            fast.allocs_per_step,
            base.allocs_per_step
        );
    }

    print_table(
        "Good-case pipeline hot path (baseline = allocating scans, unbatched)",
        &[
            "n",
            "base steps/s",
            "hot steps/s",
            "speedup",
            "base allocs/step",
            "hot allocs/step",
            "hot B/step",
            "blocks/s",
        ],
        &rows,
    );

    json_sections.push(format!("  \"pipeline_hotpath\": [\n{}\n  ]", json_entries.join(",\n")));
    println!("\n{{\n{}\n}}", json_sections.join(",\n"));

    // The end-to-end pipeline must not regress either — the big asserted
    // win (≥ 2×) is the mailbox drain above, where seal coalescing acts.
    // Smoke windows are too short for a stable wall-clock comparison, so
    // this gate (unlike the mailbox and allocation gates) is full-run only.
    if !smoke() {
        assert!(
            best_speedup > 1.0,
            "the hot path must beat the baseline end-to-end (best {best_speedup:.2}x)"
        );
    }
    println!("\nend-to-end pipeline speedup: {best_speedup:.2}x");
}
