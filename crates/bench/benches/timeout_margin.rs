//! **E8 — the 9Δ timeout justification** (Section 3.2): after GST, a view
//! led by a correct leader completes within 8Δ of the *earliest* node
//! entering it (2Δ view-entry skew + 6Δ of protocol messages), so the 9Δ
//! timeout never fires spuriously; materially smaller timeouts do.
//!
//! Scenario: worst-case network — every hop takes the full Δ — with the
//! view-0 leader crashed, sweeping the timeout factor. A factor is *safe*
//! when all honest nodes decide in view 1 (no spurious view change past
//! view 1 before the decision).

use tetrabft::{Params, TetraNode};
use tetrabft_bench::print_table;
use tetrabft_sim::{LinkPolicy, SilentNode, SimBuilder};
use tetrabft_types::{Config, NodeId, Value};

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let delta = 10u64;

    let mut rows = Vec::new();
    for factor in [4u64, 5, 6, 7, 8, 9, 10, 12] {
        let params = Params::with_timeout_factor(delta, factor);
        let mut sim = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(delta)) // worst case: δ = Δ
            .build_boxed(move |id| {
                if id == NodeId(0) {
                    Box::new(SilentNode::new())
                } else {
                    Box::new(TetraNode::new(cfg, params, id, Value::from_u64(id.0 as u64)))
                }
            });
        let decided = sim.run_until_outputs(n - 1, 5_000_000);
        let first = sim.outputs().first().map(|o| o.time.0);
        // Did anyone ask for view 2 before the first decision? That's a
        // spurious timeout: view 1's correct leader was going to finish.
        let timeout = factor * delta;
        let spurious = first.is_some_and(|t| t > timeout * 2) || !decided;
        rows.push(vec![
            format!("{factor}Δ"),
            decided.to_string(),
            first.map_or("—".into(), |t| t.to_string()),
            if spurious { "yes (view >1 needed)".into() } else { "no".to_string() },
        ]);
        if factor >= 9 {
            assert!(decided, "9Δ and above must decide");
            assert!(
                first.unwrap() <= timeout + 7 * delta,
                "with the paper's margin, view 1 decides within timeout + 7Δ"
            );
        }
    }

    print_table(
        "Timeout-margin ablation (Δ = 10, every hop takes the full Δ, leader 0 crashed)",
        &["timeout", "all honest decided", "first decision (tick)", "spurious view changes"],
        &rows,
    );

    println!(
        "\nReproduced: the paper's 9Δ (2Δ entry skew + 6Δ phases + margin) leaves \
         view 1 enough room even when every message takes the full bound; short \
         timeouts burn extra views before deciding."
    );
}
