//! **Wire format v2 — measured bytes on the wire.** The paper's efficiency
//! headline is communication-optimal view changes (O(n) bytes per node per
//! view); this bench prices the *constant* in front of that O(n) by running
//! the single-shot view-change scenario at n ∈ {4, 8, 16} and accounting
//! every sent message under both wire formats:
//!
//! * **v1** — the retired fixed-width layout (`tetrabft::wire_v1`);
//! * **v2** — varint kernel integers + delta-compressed suggest/proof
//!   payloads with a presence bitmap (the live codec).
//!
//! Per-phase v2 bytes come from the simulator's per-kind [`Metrics`]
//! counters; v1 bytes re-encode the identical traffic from the recorded
//! trace. The run asserts v2 cuts total view-change bytes (suggest + proof
//! + view-change) by ≥ 35% at n = 16 — in smoke mode too.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for the CI smoke run (n ∈ {4, 16}).

use std::collections::BTreeMap;

use tetrabft::{wire_v1, Message, Params, SuggestData, TetraNode};
use tetrabft_bench::print_table;
use tetrabft_sim::{LinkPolicy, Metrics, SilentNode, SimBuilder, TraceEvent};
use tetrabft_types::{Config, NodeId, Phase, Value, View, VoteInfo};
use tetrabft_wire::Wire;

/// The phases whose bytes the O(n)-per-node view-change claim is about.
const VIEW_CHANGE_KINDS: [&str; 3] = ["suggest", "proof", "view-change"];

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

/// v1 and v2 byte totals for one message kind on identical traffic.
#[derive(Debug, Clone, Copy, Default)]
struct KindBytes {
    msgs: u64,
    v1: u64,
    v2: u64,
}

/// Runs the crashed-leader view-change scenario and accounts every
/// non-loopback send under both wire formats.
fn run_view_change(n: usize) -> (BTreeMap<&'static str, KindBytes>, Metrics) {
    let cfg = Config::new(n).expect("valid n");
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .record_trace(true)
        .build_boxed(move |id| {
            if id == NodeId(0) {
                Box::new(SilentNode::new())
            } else {
                Box::new(TetraNode::new(cfg, Params::new(10), id, Value::from_u64(id.0 as u64 + 1)))
            }
        });
    assert!(sim.run_until_outputs(n - 1, 50_000_000), "view change must decide at n={n}");

    let mut by_kind: BTreeMap<&'static str, KindBytes> = BTreeMap::new();
    for event in sim.trace().expect("trace enabled") {
        let TraceEvent::Sent { from, to, msg, .. } = event else { continue };
        if from == to {
            continue; // loopback is free, exactly as in Metrics
        }
        let e = by_kind.entry(msg.kind()).or_default();
        e.msgs += 1;
        e.v1 += wire_v1::wire_len(msg) as u64;
        e.v2 += msg.wire_len() as u64;
    }

    // The trace-derived v2 totals must agree with the metrics counters —
    // the same numbers every other communication experiment reports.
    let metrics = sim.metrics().clone();
    for (kind, bytes) in &by_kind {
        let counted = metrics.kind(kind);
        assert_eq!(counted.bytes, bytes.v2, "metrics vs trace mismatch for {kind}");
        assert_eq!(counted.msgs, bytes.msgs, "message count mismatch for {kind}");
    }
    let trace_total: u64 = by_kind.values().map(|b| b.v2).sum();
    assert_eq!(trace_total, metrics.total_bytes_sent(), "metrics vs trace total mismatch");

    (by_kind, metrics)
}

fn pct_cut(v1: u64, v2: u64) -> f64 {
    100.0 * (1.0 - v2 as f64 / v1 as f64)
}

/// Per-message sizes of representative protocol messages — the README's
/// byte-level table.
fn per_message_table() {
    let vi = |view: u64, val: u64| VoteInfo::new(View(view), Value::from_u64(val));
    let samples: Vec<(&str, Message)> = vec![
        ("proposal (view 1)", Message::Proposal { view: View(1), value: Value::from_u64(7) }),
        (
            "vote (any phase, view 1)",
            Message::Vote { phase: Phase::VOTE2, view: View(1), value: Value::from_u64(7) },
        ),
        ("view-change (view 1)", Message::ViewChange { view: View(1) }),
        (
            "suggest, no prior votes",
            Message::Suggest { view: View(1), data: SuggestData::default() },
        ),
        (
            "suggest, 3 prior votes",
            Message::Suggest {
                view: View(5),
                data: SuggestData {
                    vote2: Some(vi(4, 1)),
                    prev_vote2: Some(vi(2, 2)),
                    vote3: Some(vi(4, 1)),
                },
            },
        ),
    ];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|(name, msg)| {
            let v1 = wire_v1::wire_len(msg) as u64;
            let v2 = msg.wire_len() as u64;
            vec![
                (*name).to_string(),
                v1.to_string(),
                v2.to_string(),
                format!("{:.0}%", pct_cut(v1, v2)),
            ]
        })
        .collect();
    print_table("Per-message sizes (bytes)", &["message", "v1", "v2", "cut"], &rows);
}

fn main() {
    let sizes: &[usize] = if smoke() { &[4, 16] } else { &[4, 8, 16] };

    per_message_table();

    let mut reduction_at_16 = None;
    for &n in sizes {
        let (by_kind, metrics) = run_view_change(n);
        let rows: Vec<Vec<String>> = by_kind
            .iter()
            .map(|(kind, b)| {
                vec![
                    (*kind).to_string(),
                    b.msgs.to_string(),
                    b.v1.to_string(),
                    b.v2.to_string(),
                    format!("{:.0}%", pct_cut(b.v1, b.v2)),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Per-phase bytes, crashed-leader view change, n={n} \
                 (total v2 on the wire: {} B, max/node {} B)",
                metrics.total_bytes_sent(),
                metrics.max_node_bytes_sent()
            ),
            &["phase", "msgs", "v1 bytes", "v2 bytes", "cut"],
            &rows,
        );

        let (vc1, vc2) = VIEW_CHANGE_KINDS.iter().fold((0u64, 0u64), |(a, b), kind| {
            let e = by_kind.get(kind).copied().unwrap_or_default();
            (a + e.v1, b + e.v2)
        });
        let (t1, t2) = by_kind.values().fold((0u64, 0u64), |(a, b), e| (a + e.v1, b + e.v2));
        println!(
            "\nn={n}: view-change traffic {vc1} → {vc2} B ({:.1}% cut); \
             all traffic {t1} → {t2} B ({:.1}% cut)",
            pct_cut(vc1, vc2),
            pct_cut(t1, t2),
        );
        if n == 16 {
            reduction_at_16 = Some(pct_cut(vc1, vc2));
        }
    }

    let reduction = reduction_at_16.expect("n=16 always runs");
    assert!(
        reduction >= 35.0,
        "wire format v2 must cut view-change bytes by ≥ 35% at n=16 (got {reduction:.1}%)"
    );
    println!("\nv2 view-change byte cut at n=16: {reduction:.1}% (required ≥ 35%)");
}
