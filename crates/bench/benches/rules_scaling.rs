//! Criterion micro-bench: cost of the safe-value determination algorithms
//! (Algorithm 4 / Algorithm 5), whose complexity the paper states as
//! `O(v · m · n)` with `m = O(n)` candidate values. Sweeping `n` at fixed
//! `v` and `v` at fixed `n` lets the Criterion report exhibit the claimed
//! linear factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tetrabft::rules::{leader_determine_safe, node_determine_safe};
use tetrabft::{ProofData, SuggestData};
use tetrabft_types::{Config, Value, View, VoteInfo};

/// Worst-case-ish inputs: every node reports distinct values at staggered
/// views so the candidate set is large and no early exit fires.
fn suggests(n: usize, view: u64) -> Vec<SuggestData> {
    (0..n)
        .map(|i| {
            let hi = view.saturating_sub(1 + (i as u64 % 3));
            let lo = hi.saturating_sub(1);
            SuggestData {
                vote2: Some(VoteInfo::new(View(hi), Value::from_u64(i as u64))),
                prev_vote2: Some(VoteInfo::new(View(lo), Value::from_u64(i as u64 + 1))),
                vote3: Some(VoteInfo::new(View(lo), Value::from_u64(i as u64))),
            }
        })
        .collect()
}

fn proofs(n: usize, view: u64) -> Vec<ProofData> {
    (0..n)
        .map(|i| {
            let hi = view.saturating_sub(1 + (i as u64 % 3));
            let lo = hi.saturating_sub(1);
            ProofData {
                vote1: Some(VoteInfo::new(View(hi), Value::from_u64(i as u64))),
                prev_vote1: Some(VoteInfo::new(View(lo), Value::from_u64(i as u64 + 1))),
                vote4: Some(VoteInfo::new(View(lo), Value::from_u64(i as u64))),
            }
        })
        .collect()
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm4_leader_safe");
    for &n in &[4usize, 16, 64] {
        let cfg = Config::new(n).unwrap();
        let input = suggests(n, 16);
        group.bench_with_input(BenchmarkId::new("n_sweep_v16", n), &n, |b, _| {
            b.iter(|| {
                black_box(leader_determine_safe(
                    &cfg,
                    black_box(&input),
                    View(16),
                    Value::from_u64(999),
                ))
            })
        });
    }
    for &v in &[4u64, 16, 64] {
        let cfg = Config::new(16).unwrap();
        let input = suggests(16, v);
        group.bench_with_input(BenchmarkId::new("v_sweep_n16", v), &v, |b, _| {
            b.iter(|| {
                black_box(leader_determine_safe(
                    &cfg,
                    black_box(&input),
                    View(v),
                    Value::from_u64(999),
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("algorithm5_node_safe");
    for &n in &[4usize, 16, 64] {
        let cfg = Config::new(n).unwrap();
        let input = proofs(n, 16);
        group.bench_with_input(BenchmarkId::new("n_sweep_v16", n), &n, |b, _| {
            b.iter(|| {
                black_box(node_determine_safe(
                    &cfg,
                    black_box(&input),
                    View(16),
                    Value::from_u64(0),
                ))
            })
        });
    }
    for &v in &[4u64, 16, 64] {
        let cfg = Config::new(16).unwrap();
        let input = proofs(16, v);
        group.bench_with_input(BenchmarkId::new("v_sweep_n16", v), &v, |b, _| {
            b.iter(|| {
                black_box(node_determine_safe(&cfg, black_box(&input), View(v), Value::from_u64(0)))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rules
}
criterion_main!(benches);
