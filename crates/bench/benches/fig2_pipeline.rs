//! **E2 — Fig. 2**: Multi-shot TetraBFT in the good case. Regenerates the
//! figure's per-slot message timeline and verifies the pipelining claims:
//! the first block finalizes at 5 message delays, then **one block per
//! message delay**, using only proposals and votes.

use std::collections::BTreeMap;

use tetrabft::Params;
use tetrabft_multishot::{MsMessage, MultiShotNode};
use tetrabft_sim::{LinkPolicy, SimBuilder, Time, TraceEvent};
use tetrabft_types::{Config, NodeId};

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .record_trace(true)
        .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
    sim.run_until(Time(12));

    // Timeline: at each tick, which message kinds were sent for which slot.
    let mut timeline: BTreeMap<(u64, u64, &'static str), usize> = BTreeMap::new();
    for ev in sim.trace().unwrap() {
        if let TraceEvent::Sent { at, msg, .. } = ev {
            let slot = match msg {
                MsMessage::Proposal { block, .. } => block.slot.0,
                MsMessage::Vote { slot, .. } => slot.0,
                MsMessage::Suggest { slot, .. }
                | MsMessage::Proof { slot, .. }
                | MsMessage::ViewChange { slot, .. } => slot.0,
                // Resync traffic is slot-ranged, not per-slot, and a
                // healthy good-case run sends none of it anyway.
                MsMessage::CatchUp { from_slot } => from_slot.0,
                MsMessage::Blocks { .. } => continue,
            };
            *timeline.entry((at.0, slot, msg.kind())).or_default() += 1;
        }
    }

    println!("## Fig. 2 — pipelined good case, per-tick message timeline (n = 4)\n");
    println!("tick | slot | message  | copies");
    println!("-----|------|----------|-------");
    let mut saw_recovery_traffic = false;
    for ((tick, slot, kind), count) in &timeline {
        if *tick > 8 {
            continue;
        }
        println!("{tick:4} | s{slot:<3} | {kind:<8} | {count}");
        if *kind != "proposal" && *kind != "vote" {
            saw_recovery_traffic = true;
        }
    }

    let fins: Vec<(u64, u64)> = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| (o.time.0, o.output.slot.0))
        .collect();
    println!("\nfinalizations at node 0 (tick, slot): {fins:?}");

    assert!(!saw_recovery_traffic, "good case must use only proposals and votes");
    assert_eq!(fins[0], (5, 1), "first finalization at 5 message delays (paper: Fig. 2)");
    for pair in fins.windows(2) {
        assert_eq!(pair[1].0 - pair[0].0, 1, "one block per message delay");
        assert_eq!(pair[1].1 - pair[0].1, 1, "slots finalize in order");
    }
    println!(
        "\nReproduced: finalization every message delay after a 5-delay ramp-up; \
         good case uses only 2 message types (paper Section 6.1)."
    );
}
