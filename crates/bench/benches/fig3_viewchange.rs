//! **E3 — Fig. 3**: Multi-shot TetraBFT with failed blocks. The leader of
//! slot 3 suppresses its proposal, so the pipeline stalls; the bench
//! regenerates the figure's storyline: timers expire, view-change messages
//! circulate for the aborted slots, suggest/proof messages seed Rule 1 /
//! Rule 3 in view 1, the aborted slots are re-proposed, and later slots
//! return to the view-0 good case.

use std::collections::BTreeMap;

use tetrabft::Params;
use tetrabft_multishot::{Finalized, MsMessage, MultiShotNode};
use tetrabft_sim::{
    Action, ActionBuf, Context, Input, LinkPolicy, Node, SimBuilder, Time, TraceEvent,
};
use tetrabft_types::{Config, NodeId};

/// Wraps an honest node but swallows its proposal for one slot — the
/// minimal Fig. 3 fault (a leader that fails to propose, without crashing).
struct SuppressSlot {
    inner: MultiShotNode,
    slot: u64,
}

impl Node for SuppressSlot {
    type Msg = MsMessage;
    type Output = Finalized;

    fn handle(&mut self, input: Input<MsMessage>, ctx: &mut Context<'_, MsMessage, Finalized>) {
        let mut buf: ActionBuf<MsMessage, Finalized> = ActionBuf::new();
        {
            let mut inner_ctx = Context::buffered(ctx.me(), ctx.n(), ctx.now(), &mut buf);
            self.inner.handle(input, &mut inner_ctx);
        }
        for action in buf {
            match action {
                Action::Send { dest: _, msg: MsMessage::Proposal { view, ref block } }
                    if block.slot.0 == self.slot && view.is_zero() =>
                {
                    // Swallowed: the slot-3 block never goes out.
                }
                Action::Send { dest, msg } => match dest {
                    tetrabft_sim::Dest::All => ctx.broadcast(msg),
                    tetrabft_sim::Dest::Node(to) => ctx.send(to, msg),
                },
                Action::SetTimer { id, after } => ctx.set_timer(id, after),
                Action::CancelTimer { id } => ctx.cancel_timer(id),
                Action::Output(out) => ctx.output(out),
            }
        }
    }
}

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let delta = 5; // 9Δ = 45-tick view timeout
    let failed_slot = 3;
    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::synchronous(1))
        .record_trace(true)
        .build_boxed(|id| {
            let inner = MultiShotNode::new(cfg, Params::new(delta), id);
            if id
                == MultiShotNode::leader_of(
                    &cfg,
                    tetrabft_types::Slot(failed_slot),
                    tetrabft_types::View(0),
                )
            {
                Box::new(SuppressSlot { inner, slot: failed_slot })
            } else {
                Box::new(inner)
            }
        });
    sim.run_until(Time(120));

    // Condensed timeline: first occurrence of each (slot, view, kind).
    let mut first: BTreeMap<(u64, u64, &'static str), u64> = BTreeMap::new();
    for ev in sim.trace().unwrap() {
        if let TraceEvent::Sent { at, msg, .. } = ev {
            let (slot, view) = match msg {
                MsMessage::Proposal { view, block } => (block.slot.0, view.0),
                MsMessage::Vote { slot, view, .. }
                | MsMessage::Suggest { slot, view, .. }
                | MsMessage::Proof { slot, view, .. }
                | MsMessage::ViewChange { slot, view } => (slot.0, view.0),
                // Resync traffic has no view and cannot appear in a
                // non-durable view-change run.
                MsMessage::CatchUp { .. } | MsMessage::Blocks { .. } => continue,
            };
            first.entry((slot, view, msg.kind())).or_insert(at.0);
        }
    }

    println!("## Fig. 3 — view change after a failed block (slot {failed_slot} suppressed)\n");
    println!("first occurrence of each (slot, view, message):\n");
    println!("tick | slot | view | message");
    println!("-----|------|------|--------");
    let mut ordered: Vec<(u64, u64, u64, &'static str)> =
        first.iter().map(|((s, v, k), t)| (*t, *s, *v, *k)).collect();
    ordered.sort();
    for (t, s, v, k) in &ordered {
        println!("{t:4} | s{s:<3} | v{v:<3} | {k}");
    }

    let fins: Vec<(u64, u64)> = sim
        .outputs()
        .iter()
        .filter(|o| o.node == NodeId(0))
        .map(|o| (o.time.0, o.output.slot.0))
        .collect();
    println!("\nfinalizations at node 0 (tick, slot): {fins:?}");

    // The storyline assertions.
    let vc_at = ordered
        .iter()
        .find(|(_, _, _, k)| *k == "view-change")
        .expect("a view change must occur")
        .0;
    assert!(vc_at >= 9 * delta, "view change only after the 9Δ timeout");
    assert!(
        ordered.iter().any(|(_, s, v, k)| *k == "suggest" && *v == 1 && *s <= failed_slot),
        "suggest messages must be sent for the aborted slots in view 1"
    );
    assert!(
        ordered.iter().any(|(_, s, v, k)| *k == "proposal" && *v >= 1 && *s == failed_slot),
        "the failed slot must be re-proposed in a later view"
    );
    assert!(
        ordered.iter().any(|(_, s, v, k)| *k == "proposal" && *v == 0 && *s > failed_slot + 1),
        "slots beyond the recovery window restart in view 0 (Fig. 3's slot 4)"
    );
    assert!(
        fins.iter().any(|(_, s)| *s > failed_slot),
        "the chain must finalize past the failed slot"
    );
    // At most 5 blocks can be aborted (Section 6.2): slots that were
    // proposed in view 0 but had to be re-proposed.
    let aborted = ordered
        .iter()
        .filter(|(_, _, v, k)| *k == "proposal" && *v >= 1)
        .map(|(_, s, _, _)| s)
        .collect::<std::collections::BTreeSet<_>>();
    println!("\nre-proposed (aborted) slots: {aborted:?}");
    assert!(aborted.len() <= 5, "the number of aborted blocks is limited to 5");
    println!("\nReproduced: Fig. 3's abort → view-change → suggest/proof → re-propose → good-case storyline.");
}
