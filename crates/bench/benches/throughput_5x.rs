//! **E7 — the ×5 pipelining claim** (Sections 1 and 6): "TetraBFT is able
//! to commit one new block every message delay in the good case, and thus,
//! in theory, it achieves a maximal throughput of 5 times the throughput
//! that would be achieved by simply repeating instances of single-shot
//! TetraBFT."

use tetrabft::Params;
use tetrabft_baselines::RepeatedTetra;
use tetrabft_bench::print_table;
use tetrabft_multishot::MultiShotNode;
use tetrabft_sim::{LinkPolicy, SimBuilder, Time};
use tetrabft_types::{Config, NodeId};

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let horizons = [100u64, 250, 500, 1000];

    let mut rows = Vec::new();
    for &h in &horizons {
        let mut pipelined = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
        pipelined.run_until(Time(h));
        let blocks = pipelined.outputs().iter().filter(|o| o.node == NodeId(0)).count() as f64;

        let mut repeated = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| RepeatedTetra::new(cfg, Params::new(1_000_000), id));
        repeated.run_until(Time(h));
        let decisions = repeated.outputs().iter().filter(|o| o.node == NodeId(0)).count() as f64;

        let ratio = blocks / decisions;
        rows.push(vec![
            h.to_string(),
            format!("{blocks}"),
            format!("{decisions}"),
            format!("{ratio:.2}×"),
        ]);
        assert!(
            ratio > 4.5 && ratio < 5.5,
            "throughput ratio must approach 5× (got {ratio:.2} at horizon {h})"
        );
    }

    print_table(
        "Throughput — pipelined multi-shot vs repeated single-shot (blocks per horizon, node 0)",
        &["horizon (delays)", "pipelined blocks", "repeated decisions", "ratio"],
        &rows,
    );

    println!(
        "\nReproduced: one block per delay vs one decision per 5 delays — the \
         paper's ×5 pipelining factor, converging from below as the 5-delay \
         ramp-up amortizes."
    );
}
