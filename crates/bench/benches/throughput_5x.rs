//! **E7 — the ×5 pipelining claim** (Sections 1 and 6): "TetraBFT is able
//! to commit one new block every message delay in the good case, and thus,
//! in theory, it achieves a maximal throughput of 5 times the throughput
//! that would be achieved by simply repeating instances of single-shot
//! TetraBFT."
//!
//! Part two measures the sharded multi-instance mode on top: k independent
//! engine groups partitioning the slot space, reported as blocks and txs
//! per message delay for k ∈ {1, 2, 4}.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for a tiny-horizon CI smoke run.

use tetrabft::Params;
use tetrabft_baselines::RepeatedTetra;
use tetrabft_bench::print_table;
use tetrabft_multishot::{MultiShotNode, ShardedSim};
use tetrabft_sim::{LinkPolicy, SimBuilder, Time};
use tetrabft_types::{Config, NodeId};

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let horizons: &[u64] = if smoke() { &[100] } else { &[100, 250, 500, 1000] };

    let mut rows = Vec::new();
    for &h in horizons {
        let mut pipelined = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| MultiShotNode::new(cfg, Params::new(1_000_000), id));
        pipelined.run_until(Time(h));
        let blocks = pipelined.outputs().iter().filter(|o| o.node == NodeId(0)).count() as f64;

        let mut repeated = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| RepeatedTetra::new(cfg, Params::new(1_000_000), id));
        repeated.run_until(Time(h));
        let decisions = repeated.outputs().iter().filter(|o| o.node == NodeId(0)).count() as f64;

        let ratio = blocks / decisions;
        rows.push(vec![
            h.to_string(),
            format!("{blocks}"),
            format!("{decisions}"),
            format!("{ratio:.2}×"),
        ]);
        assert!(
            ratio > 4.5 && ratio < 5.5,
            "throughput ratio must approach 5× (got {ratio:.2} at horizon {h})"
        );
    }

    print_table(
        "Throughput — pipelined multi-shot vs repeated single-shot (blocks per horizon, node 0)",
        &["horizon (delays)", "pipelined blocks", "repeated decisions", "ratio"],
        &rows,
    );

    println!(
        "\nReproduced: one block per delay vs one decision per 5 delays — the \
         paper's ×5 pipelining factor, converging from below as the 5-delay \
         ramp-up amortizes."
    );

    // ---- part two: sharded scaling ------------------------------------

    let horizon = if smoke() { 50 } else { 500 };
    let max_block_txs = 64;
    let mut rows = Vec::new();
    let mut txs_at_k1 = 0.0;
    let mut txs_at_k4 = 0.0;
    for k in [1usize, 2, 4] {
        // Keep every leader saturated for the whole horizon: capacity and
        // preload sized to the number of blocks each node can lead.
        let preload = (horizon as usize + 8) * max_block_txs / n + max_block_txs;
        let params =
            Params::new(1_000_000).with_max_block_txs(max_block_txs).with_mempool_capacity(preload);
        let mut sharded = ShardedSim::new(
            k,
            n,
            0,
            |_, _| LinkPolicy::synchronous(1),
            move |shard, id| {
                let mut node = MultiShotNode::new(cfg, params, id);
                for t in 0..preload {
                    node.submit_tx(format!("s{shard}-n{id}-t{t:06}").into_bytes()).unwrap();
                }
                node
            },
        );
        sharded.run_until(Time(horizon));
        let chain = sharded.merged_chain(NodeId(0));
        let blocks = chain.len() as f64;
        let txs: usize = chain.iter().map(|g| g.fin.block.txs.len()).sum();
        let txs = txs as f64;
        if k == 1 {
            txs_at_k1 = txs;
        }
        if k == 4 {
            txs_at_k4 = txs;
        }
        rows.push(vec![
            k.to_string(),
            format!("{blocks}"),
            format!("{:.2}", blocks / horizon as f64),
            format!("{txs}"),
            format!("{:.1}", txs / horizon as f64),
            format!("{:.2}×", txs / txs_at_k1),
        ]);
    }
    print_table(
        &format!(
            "Sharded multi-instance scaling — k engine groups, n=4 each, horizon {horizon} \
             delays, ≤{max_block_txs} txs/block (node 0's merged global chain)"
        ),
        &["k", "blocks", "blocks/delay", "txs", "txs/delay", "tx speedup"],
        &rows,
    );
    assert!(
        txs_at_k4 >= 3.0 * txs_at_k1,
        "4 shards must finalize ≳4× the txs of 1 (got {txs_at_k1} vs {txs_at_k4})"
    );

    println!(
        "\nEach shard keeps the one-block-per-delay pipeline, so blocks/delay \
         and txs/delay scale ≈linearly with k: slots are partitioned round-robin \
         over independent engine groups and re-merged into one global stream."
    );
}
