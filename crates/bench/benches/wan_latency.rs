//! **WAN responsiveness** — the headline claim measured on the
//! fault-injecting network layer: TetraBFT commits at *network speed*
//! (latency proportional to the actual per-hop delay δ), not at the
//! pessimistic `9Δ` view timeout, even on WAN and geo-distributed
//! latency matrices and across a partition heal.
//!
//! One declarative [`LinkPlan`] drives both runtimes: the deterministic
//! simulator (one tick = 1 ms) prices the matrices exactly at n = 4..16,
//! then real TCP clusters reproduce the same behavior in wall-clock time,
//! and a partition-heal scenario must finalize right after the heal with
//! no divergence between the sim and TCP runs.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for the CI smoke run (smaller n, fewer
//! scenarios; every assertion still executes).

use std::time::{Duration, Instant};

use tetrabft::{Params, TetraNode};
use tetrabft_bench::print_table;
use tetrabft_net::{ClusterBuilder, EdgeSpec, LinkPlan, PartitionWindow};
use tetrabft_sim::SimBuilder;
use tetrabft_types::{Config, NodeId, Value};

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

/// A three-region geo matrix (ids round-robin over regions): 5 ms intra,
/// 40/70/80 ms inter-region one-way delays.
fn geo_matrix(n: usize) -> Vec<Vec<u64>> {
    const REGION: [[u64; 3]; 3] = [[5, 40, 80], [40, 5, 70], [80, 70, 5]];
    (0..n)
        .map(|i| (0..n).map(|j| if i == j { 0 } else { REGION[i % 3][j % 3] }).collect())
        .collect()
}

/// First-decision time (virtual ms) of an n-node good-case run under
/// `plan`, with the view timeout pushed out to `delta` ms.
fn sim_commit_ms(n: usize, plan: &LinkPlan, delta: u64) -> u64 {
    let cfg = Config::new(n).unwrap();
    let mut sim = SimBuilder::new(n).plan(plan).build(|id| {
        TetraNode::new(cfg, Params::new(delta), id, Value::from_u64(u64::from(id.0) + 1))
    });
    assert!(sim.run_until_outputs(n, 50_000_000), "scenario must decide");
    sim.outputs()[0].time.0
}

/// Wall-clock first-decision latency of an n-node TCP cluster under
/// `plan`; returns the elapsed time and every node's decided value.
fn tcp_commit(n: usize, plan: LinkPlan, delta: u64) -> (Duration, Vec<Value>) {
    let cfg = Config::new(n).unwrap();
    let started = Instant::now();
    let (mut cluster, _net) = ClusterBuilder::new(n)
        .plan(plan)
        .spawn(|id| {
            TetraNode::new(cfg, Params::new(delta), id, Value::from_u64(u64::from(id.0) + 1))
        })
        .expect("cluster spawns");
    let (_, first) =
        cluster.next_output_timeout(Duration::from_secs(60)).expect("decide within 60s");
    let elapsed = started.elapsed();
    let mut values = vec![first];
    for _ in 1..n {
        let (_, v) =
            cluster.next_output_timeout(Duration::from_secs(60)).expect("decide within 60s");
        values.push(v);
    }
    (elapsed, values)
}

fn main() {
    // ---- part one: exact latency matrices in the simulator -------------

    // Δ = 100 s: if commit latency were timeout-bound, every number below
    // would be ≥ 900_000 ms. Good-case TetraBFT needs 5 message delays.
    let delta = 100_000u64;
    let timeout = Params::new(delta).view_timeout();
    let ns: &[usize] = if smoke() { &[4, 8] } else { &[4, 8, 16] };

    let mut rows = Vec::new();
    for &n in ns {
        let lan = sim_commit_ms(n, &LinkPlan::uniform(EdgeSpec::delay(1)), delta);
        let wan = sim_commit_ms(n, &LinkPlan::uniform(EdgeSpec::delay(30)), delta);
        let geo = sim_commit_ms(n, &LinkPlan::from_matrix(&geo_matrix(n)), delta);

        assert_eq!(lan, 5, "good case is 5 message delays at δ=1 (n={n})");
        assert_eq!(wan, 5 * 30, "latency scales with the injected delay, not n (n={n})");
        assert_eq!(wan, 30 * lan, "30× the delay ⇒ 30× the commit latency (n={n})");
        assert!(
            (5 * 5..=5 * 80).contains(&geo),
            "geo latency is bounded by the slowest inter-region path (n={n}, got {geo})"
        );
        assert!(
            timeout >= 100 * wan.max(geo),
            "commit is two orders of magnitude below the 9Δ timeout (n={n})"
        );
        for (scenario, ms) in [("LAN 1 ms", lan), ("WAN 30 ms", wan), ("geo 5–80 ms", geo)] {
            rows.push(vec![
                n.to_string(),
                scenario.to_string(),
                format!("{ms}"),
                format!("{:.1}%", 100.0 * ms as f64 / timeout as f64),
            ]);
        }
    }
    print_table(
        &format!(
            "WAN responsiveness (sim) — good-case commit latency under injected delay \
             (Δ = {delta} ms fixed, 9Δ timeout = {timeout} ms)"
        ),
        &["n", "scenario", "commit (ms)", "of timeout"],
        &rows,
    );

    // ---- part two: the same matrices over real TCP ---------------------

    // Δ = 3 s ⇒ 27 s timeout; wall-clock latencies must track the plan's
    // injected delay (≈5δ plus spawn/scheduling overhead), not the timeout.
    let tcp_delta = 3_000u64;
    let tcp_timeout = Params::new(tcp_delta).view_timeout();
    let tcp_ns: &[usize] = if smoke() { &[4] } else { &[4, 8] };

    let mut rows = Vec::new();
    for &n in tcp_ns {
        let (lan, _) = tcp_commit(n, LinkPlan::uniform(EdgeSpec::delay(1)), tcp_delta);
        let (wan, wan_values) = tcp_commit(n, LinkPlan::uniform(EdgeSpec::delay(30)), tcp_delta);
        let first = wan_values[0];
        assert!(wan_values.iter().all(|v| *v == first), "agreement over the WAN (n={n})");
        assert!(
            wan >= Duration::from_millis(4 * 30),
            "five 30 ms hops cannot commit in {wan:?} — conditioning must apply (n={n})"
        );
        assert!(
            wan < Duration::from_millis(tcp_timeout / 5),
            "commit latency must track the injected delay, not the {tcp_timeout} ms timeout \
             (n={n}, got {wan:?})"
        );
        assert!(wan > lan, "30× the delay must cost wall-clock time (n={n})");
        for (scenario, d) in [("LAN 1 ms", lan), ("WAN 30 ms", wan)] {
            rows.push(vec![
                n.to_string(),
                scenario.to_string(),
                format!("{}", d.as_millis()),
                format!("{:.1}%", 100.0 * d.as_millis() as f64 / tcp_timeout as f64),
            ]);
        }
    }
    print_table(
        &format!(
            "WAN responsiveness (TCP) — wall-clock first commit \
             (Δ = {tcp_delta} ms, 9Δ timeout = {tcp_timeout} ms; includes cluster spawn)"
        ),
        &["n", "scenario", "commit (ms)", "of timeout"],
        &rows,
    );

    // ---- part three: partition-heal parity, sim vs TCP -----------------

    // Node 0 (the view-0 leader) is severed from everyone for the first
    // 600 ms; no quorum exists before the heal. Both runtimes must
    // finalize right after the heal — not at the view timeout — and must
    // agree on the decided value.
    let heal = 600u64;
    let hop = 5u64;
    let plan = LinkPlan::uniform(EdgeSpec::delay(hop)).partition(PartitionWindow::isolate(
        0,
        heal,
        [NodeId(0)],
    ));

    let sim_ms = {
        let n = 4;
        let cfg = Config::new(n).unwrap();
        let mut sim = SimBuilder::new(n).plan(&plan).build(|id| {
            TetraNode::new(cfg, Params::new(delta), id, Value::from_u64(u64::from(id.0) + 1))
        });
        assert!(sim.run_until_outputs(n, 50_000_000), "sim heals and decides");
        let decided: Vec<Value> = sim.outputs().iter().map(|o| o.output).collect();
        assert!(decided.iter().all(|v| *v == decided[0]), "sim agreement: {decided:?}");
        assert_eq!(decided[0], Value::from_u64(1), "leader 0's value survives the partition");
        sim.outputs()[0].time.0
    };
    assert!(
        (heal..=heal + 10 * hop).contains(&sim_ms),
        "sim finalizes right after the heal at {heal} ms, got {sim_ms}"
    );

    let (tcp_elapsed, tcp_values) = tcp_commit(4, plan, tcp_delta);
    assert!(
        tcp_elapsed >= Duration::from_millis(heal - 50),
        "no quorum exists before the heal, yet TCP decided after {tcp_elapsed:?}"
    );
    assert!(
        tcp_elapsed < Duration::from_millis(tcp_timeout / 2),
        "TCP must finalize after the heal, not at the {tcp_timeout} ms timeout ({tcp_elapsed:?})"
    );
    let first = tcp_values[0];
    assert!(tcp_values.iter().all(|v| *v == first), "TCP agreement: {tcp_values:?}");
    assert_eq!(
        first,
        Value::from_u64(1),
        "no divergence between runtimes: TCP decides the sim's value"
    );

    print_table(
        "Partition heal — leader severed for 600 ms, Δ far away (no divergence: both \
         runtimes decide leader 0's value)",
        &["runtime", "commit after start (ms)", "decided"],
        &[
            vec!["sim (virtual)".into(), sim_ms.to_string(), "value 1".into()],
            vec!["TCP (wall)".into(), tcp_elapsed.as_millis().to_string(), "value 1".into()],
        ],
    );

    println!(
        "\nReproduced on the fault-injecting network layer: commit latency is a small \
         multiple of the injected one-way delay in every matrix (5δ in the good case) \
         and snaps back right after a partition heals, while the 9Δ timeout never \
         enters the picture — the responsiveness argument of Sections 1–2, now \
         demonstrated over real reconnecting TCP links as well as in virtual time."
    );
}
