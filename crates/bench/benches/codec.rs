//! Criterion micro-bench: the hand-rolled wire codec. An unauthenticated
//! protocol's pitch includes avoiding expensive cryptography, so the
//! remaining per-message CPU cost — encoding — should be trivially small;
//! this bench quantifies it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tetrabft::{Message, SuggestData};
use tetrabft_multishot::{Block, MsMessage};
use tetrabft_types::{Phase, Slot, Value, View, VoteInfo};
use tetrabft_wire::Wire;

fn bench_codec(c: &mut Criterion) {
    let vote = Message::Vote { phase: Phase::VOTE2, view: View(9), value: Value::from_u64(7) };
    let suggest = Message::Suggest {
        view: View(9),
        data: SuggestData {
            vote2: Some(VoteInfo::new(View(8), Value::from_u64(1))),
            prev_vote2: Some(VoteInfo::new(View(5), Value::from_u64(2))),
            vote3: Some(VoteInfo::new(View(8), Value::from_u64(1))),
        },
    };
    let block_msg = MsMessage::Proposal {
        view: View(0),
        block: Block::new(
            Slot(42),
            tetrabft_multishot::GENESIS_HASH,
            (0..32).map(|i| vec![i as u8; 64]).collect(),
        ),
    };

    c.bench_function("encode_vote", |b| b.iter(|| black_box(black_box(&vote).to_bytes())));
    let vote_bytes = vote.to_bytes();
    c.bench_function("decode_vote", |b| {
        b.iter(|| black_box(Message::from_bytes(black_box(&vote_bytes)).unwrap()))
    });

    c.bench_function("encode_suggest", |b| b.iter(|| black_box(black_box(&suggest).to_bytes())));
    let suggest_bytes = suggest.to_bytes();
    c.bench_function("decode_suggest", |b| {
        b.iter(|| black_box(Message::from_bytes(black_box(&suggest_bytes)).unwrap()))
    });

    c.bench_function("encode_block_32txs", |b| {
        b.iter(|| black_box(black_box(&block_msg).to_bytes()))
    });
    let block_bytes = block_msg.to_bytes();
    c.bench_function("decode_block_32txs", |b| {
        b.iter(|| black_box(MsMessage::from_bytes(black_box(&block_bytes)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_codec
}
criterion_main!(benches);
