//! **Mempool under load** — the batching/backpressure pipeline end to end:
//! clients flood every node past the mempool's admission bound, leaders
//! drain FIFO batches into blocks, and the sharded mode multiplies the
//! drain rate by k. Reports admissions, typed rejections (the
//! backpressure signal), and finalized blocks/sec + txs/sec for
//! k ∈ {1, 2, 4}.
//!
//! Set `TETRABFT_BENCH_SMOKE=1` for a tiny-horizon CI smoke run.

use tetrabft::Params;
use tetrabft_bench::print_table;
use tetrabft_multishot::{MultiShotNode, ShardedSim, SubmitError};
use tetrabft_sim::Time;
use tetrabft_types::{Config, NodeId};

fn smoke() -> bool {
    std::env::var_os("TETRABFT_BENCH_SMOKE").is_some()
}

fn main() {
    let n = 4;
    let cfg = Config::new(n).unwrap();
    let horizon: u64 = if smoke() { 40 } else { 400 };
    let capacity = if smoke() { 512 } else { 4_096 };
    let offered = capacity + capacity / 2; // 1.5× the admission bound
    let params = Params::new(1_000_000)
        .with_max_block_txs(64)
        .with_mempool_capacity(capacity)
        .with_max_tx_bytes(64);

    let mut rows = Vec::new();
    let mut baseline_txs = 0.0;
    let mut txs_at_k4 = 0.0;
    for k in [1usize, 2, 4] {
        let mut admitted = 0u64;
        let mut rejected_full = 0u64;
        let mut sharded = ShardedSim::new(
            k,
            n,
            0,
            |_, _| tetrabft_sim::LinkPolicy::synchronous(1),
            |shard, id| {
                let mut node = MultiShotNode::new(cfg, params, id);
                // Every client hammers every node of its shard well past
                // the bound; the overflow must surface as typed errors,
                // not unbounded memory.
                for t in 0..offered {
                    let tx = format!("s{shard}-n{id}-t{t:06}").into_bytes();
                    match node.submit_tx(tx) {
                        Ok(()) => admitted += 1,
                        Err(SubmitError::Full { .. }) => rejected_full += 1,
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
                assert_eq!(node.mempool_len(), capacity, "pool fills exactly to capacity");
                node
            },
        );
        sharded.run_until(Time(horizon));
        let chain = sharded.merged_chain(NodeId(0));
        let blocks = chain.len() as f64;
        let txs: usize = chain.iter().map(|g| g.fin.block.txs.len()).sum();
        let txs = txs as f64;
        if k == 1 {
            baseline_txs = txs;
        }
        if k == 4 {
            txs_at_k4 = txs;
        }
        rows.push(vec![
            k.to_string(),
            admitted.to_string(),
            rejected_full.to_string(),
            format!("{blocks}"),
            format!("{:.2}", blocks / horizon as f64),
            format!("{txs}"),
            format!("{:.1}", txs / horizon as f64),
            format!("{:.2}×", txs / baseline_txs),
        ]);
        assert_eq!(
            admitted,
            (k * n * capacity) as u64,
            "each of the k·n pools admits exactly its capacity"
        );
        assert_eq!(admitted + rejected_full, (k * n * offered) as u64);
    }

    print_table(
        &format!(
            "Mempool load — offered {offered} txs/node into capacity {capacity}, \
             horizon {horizon} delays, ≤64 txs/block (node 0's merged chain)"
        ),
        &[
            "k",
            "admitted",
            "rejected (Full)",
            "blocks",
            "blocks/delay",
            "txs finalized",
            "txs/delay",
            "tx speedup",
        ],
        &rows,
    );

    assert!(
        txs_at_k4 >= 3.0 * baseline_txs,
        "txs/sec must scale ≳4× from k=1 to k=4 (got {baseline_txs} vs {txs_at_k4})"
    );

    println!(
        "\nBackpressure is exact (admitted = capacity per pool, the rest refused \
         with SubmitError::Full), and the k sharded engine groups drain k mempool \
         sets in parallel slots — txs/delay scales ≈linearly with k."
    );
}
