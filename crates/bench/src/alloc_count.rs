//! A counting global allocator for the zero-alloc hot-path benches.
//!
//! Wraps [`std::alloc::System`] and keeps atomic tallies of allocation
//! events, bytes requested, live bytes, and the live-byte peak. A bench
//! registers one instance as its `#[global_allocator]`, snapshots the
//! counters around a measured window, and asserts on the delta — turning
//! "the steady state does not allocate" from a code-review claim into a
//! hard pass/fail gate.
//!
//! This is the only module in the workspace that needs `unsafe`
//! (implementing [`GlobalAlloc`] requires it); everything it does with
//! that license is delegate to `System` and bump counters.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] wrapper around [`System`] that counts.
///
/// All counters use relaxed atomics: the benches snapshot them from the
/// same thread that does the allocating, and cross-thread drift of a few
/// events would not move the asserted bounds.
///
/// # Examples
///
/// ```
/// use tetrabft_bench::CountingAlloc;
///
/// // Registered once, at most, per binary:
/// // #[global_allocator]
/// // static ALLOC: CountingAlloc = CountingAlloc::new();
/// static ALLOC: CountingAlloc = CountingAlloc::new();
/// let before = ALLOC.snapshot();
/// let after = ALLOC.snapshot();
/// assert_eq!(after.allocs - before.allocs, 0);
/// ```
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
    live: AtomicU64,
    peak: AtomicU64,
}

/// A point-in-time copy of the counters; subtract two to price a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events so far (`alloc`, `alloc_zeroed`, and every
    /// `realloc`, since a realloc may move the block).
    pub allocs: u64,
    /// Deallocation events so far.
    pub deallocs: u64,
    /// Total bytes ever requested from the allocator.
    pub bytes: u64,
    /// Bytes currently live.
    pub live: u64,
    /// High-water mark of `live`.
    pub peak: u64,
}

impl CountingAlloc {
    /// A fresh counter set (const: usable as a `static` initializer).
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            live: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Copies the current counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            peak: self.peak.load(Ordering::Relaxed),
        }
    }

    fn on_alloc(&self, size: u64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size, Ordering::Relaxed);
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(&self, size: u64) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

impl AllocSnapshot {
    /// Allocation events between `self` (earlier) and `later`.
    pub fn allocs_since(&self, later: &AllocSnapshot) -> u64 {
        later.allocs - self.allocs
    }

    /// Bytes requested between `self` (earlier) and `later`.
    pub fn bytes_since(&self, later: &AllocSnapshot) -> u64 {
        later.bytes - self.bytes
    }
}

// SAFETY: every path delegates the actual memory management verbatim to
// `System`; the wrapper only adds relaxed counter bumps, which cannot
// violate any `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            self.on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            self.on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // A realloc is an allocation event (the block may move and
            // grow); account the transition old → new against the tallies.
            self.allocs.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
            let old = layout.size() as u64;
            let new = new_size as u64;
            let live = if new >= old {
                self.live.fetch_add(new - old, Ordering::Relaxed) + (new - old)
            } else {
                self.live.fetch_sub(old - new, Ordering::Relaxed) - (old - new)
            };
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not registered as the global allocator here (tests must not hijack
    // the test harness's allocations); exercised directly instead.
    #[test]
    fn counters_track_alloc_and_dealloc() {
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            let s = counter.snapshot();
            assert_eq!((s.allocs, s.bytes, s.live, s.peak), (1, 64, 64, 64));
            counter.dealloc(p, layout);
        }
        let s = counter.snapshot();
        assert_eq!((s.allocs, s.deallocs, s.live, s.peak), (1, 1, 0, 64));
    }

    #[test]
    fn realloc_counts_as_allocation_and_moves_live() {
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(32, 8).unwrap();
        unsafe {
            let p = counter.alloc(layout);
            let p2 = counter.realloc(p, layout, 128);
            assert!(!p2.is_null());
            let s = counter.snapshot();
            assert_eq!(s.allocs, 2);
            assert_eq!(s.live, 128);
            assert_eq!(s.peak, 128);
            counter.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(counter.snapshot().live, 0);
    }

    #[test]
    fn snapshot_deltas_window_correctly() {
        let counter = CountingAlloc::new();
        let layout = Layout::from_size_align(16, 8).unwrap();
        let before = counter.snapshot();
        unsafe {
            let p = counter.alloc(layout);
            counter.dealloc(p, layout);
        }
        let after = counter.snapshot();
        assert_eq!(before.allocs_since(&after), 1);
        assert_eq!(before.bytes_since(&after), 16);
    }
}
