//! Shared measurement harness for the table/figure reproduction benches.
//!
//! Every `benches/*.rs` target regenerates one artifact of the paper
//! (Table 1, Fig. 2, Fig. 3, the Section 5 verification, or a quantitative
//! claim from the text); this library holds the scenario runners they
//! share. See `EXPERIMENTS.md` for the paper-vs-measured record.

// `deny`, not `forbid`: the allocation-counting module implements
// `GlobalAlloc`, which requires `unsafe` and carries a scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod alloc_count;

pub use alloc_count::{AllocSnapshot, CountingAlloc};

use tetrabft::{Params, TetraNode};
use tetrabft_baselines::{BlogNode, IthsNode, PbftNode};
use tetrabft_sim::{LinkPolicy, SilentNode, Sim, SimBuilder, Time, WireSize};
use tetrabft_types::{Config, NodeId, Value};

/// Latency + communication measurements for one protocol scenario.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// First decision time in message delays.
    pub latency: u64,
    /// Total bytes all nodes handed to the network.
    pub total_bytes: u64,
    /// Largest per-node byte count.
    pub max_node_bytes: u64,
    /// Total messages sent.
    pub total_msgs: u64,
}

fn measure<M, O>(mut sim: Sim<M, O>, outputs: usize) -> Measurement
where
    M: WireSize + Clone,
{
    assert!(
        sim.run_until_outputs(outputs, 50_000_000),
        "scenario failed to produce {outputs} outputs"
    );
    Measurement {
        latency: sim.outputs()[0].time.0,
        total_bytes: sim.metrics().total_bytes_sent(),
        max_node_bytes: sim.metrics().max_node_bytes_sent(),
        total_msgs: sim.metrics().total_msgs_sent(),
    }
}

/// Which run to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Synchronous from the start, all leaders correct, unit delays.
    GoodCase,
    /// The leader of view 0 is crashed; latency is reported relative to the
    /// `9Δ` timeout so it counts the *view-change* message delays.
    ViewChange {
        /// Δ in ticks (hops stay unit-delay).
        delta: u64,
    },
}

/// Protocols under comparison in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// TetraBFT (this paper).
    Tetra,
    /// Information-Theoretic HotStuff.
    Iths,
    /// IT-HS blog version (non-responsive).
    IthsBlog,
    /// Bounded-storage PBFT.
    Pbft,
}

impl Protocol {
    /// Display name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Tetra => "TetraBFT",
            Protocol::Iths => "IT-HS",
            Protocol::IthsBlog => "IT-HS (blog version)",
            Protocol::Pbft => "PBFT (bounded)",
        }
    }

    /// Paper-reported (good-case, view-change) latencies in message delays.
    pub fn paper_latencies(self) -> (u64, u64) {
        match self {
            Protocol::Tetra => (5, 7),
            Protocol::Iths => (6, 9),
            Protocol::IthsBlog => (4, 5),
            Protocol::Pbft => (3, 7),
        }
    }

    /// Paper-reported responsiveness.
    pub fn responsive(self) -> &'static str {
        match self {
            Protocol::IthsBlog => "non-responsive",
            _ => "responsive",
        }
    }
}

/// Runs `protocol` under `scenario` with `n` nodes and per-hop delay
/// `hop` ticks, measuring the first decision.
pub fn run_protocol(protocol: Protocol, scenario: Scenario, n: usize, hop: u64) -> Measurement {
    let cfg = Config::new(n).expect("valid n");
    let (params, crash_leader) = match scenario {
        Scenario::GoodCase => (Params::new(1_000_000), false),
        Scenario::ViewChange { delta } => (Params::new(delta), true),
    };
    let policy = LinkPolicy::synchronous(hop);
    let outputs = if crash_leader { n - 1 } else { n };
    match protocol {
        Protocol::Tetra => {
            let sim = SimBuilder::new(n).policy(policy).build_boxed(move |id| {
                if crash_leader && id == NodeId(0) {
                    Box::new(SilentNode::new())
                } else {
                    Box::new(TetraNode::new(cfg, params, id, Value::from_u64(id.0 as u64 + 1)))
                }
            });
            measure(sim, outputs)
        }
        Protocol::Iths => {
            let sim = SimBuilder::new(n).policy(policy).build_boxed(move |id| {
                if crash_leader && id == NodeId(0) {
                    Box::new(SilentNode::new())
                } else {
                    Box::new(IthsNode::new(cfg, params, id, Value::from_u64(id.0 as u64 + 1)))
                }
            });
            measure(sim, outputs)
        }
        Protocol::IthsBlog => {
            let sim = SimBuilder::new(n).policy(policy).build_boxed(move |id| {
                if crash_leader && id == NodeId(0) {
                    Box::new(SilentNode::new())
                } else {
                    Box::new(BlogNode::new(cfg, params, id, Value::from_u64(id.0 as u64 + 1)))
                }
            });
            measure(sim, outputs)
        }
        Protocol::Pbft => {
            let sim = SimBuilder::new(n).policy(policy).build_boxed(move |id| {
                if crash_leader && id == NodeId(0) {
                    Box::new(SilentNode::new())
                } else {
                    Box::new(PbftNode::new(cfg, params, id, Value::from_u64(id.0 as u64 + 1)))
                }
            });
            measure(sim, outputs)
        }
    }
}

/// View-change latency in message delays: decision time minus the `9Δ`
/// timeout instant (hops are unit-delay in the view-change scenario).
pub fn view_change_delays(protocol: Protocol, n: usize, delta: u64) -> u64 {
    let m = run_protocol(protocol, Scenario::ViewChange { delta }, n, 1);
    let timeout = Params::new(delta).view_timeout();
    m.latency.saturating_sub(timeout)
}

/// A PBFT node whose view-0 commits are swallowed: the view completes its
/// prepare phase (so every node holds a full O(n) prepared certificate) but
/// stalls before deciding, forcing the *worst-case* view change Table 1
/// prices at O(n³) total bits — certificate-carrying view-changes from all
/// nodes plus the O(n²) new-view bundle.
struct StalledCommitPbft {
    inner: PbftNode,
}

impl tetrabft_sim::Node for StalledCommitPbft {
    type Msg = tetrabft_baselines::pbft::PbftMsg;
    type Output = Value;

    fn handle(
        &mut self,
        input: tetrabft_sim::Input<Self::Msg>,
        ctx: &mut tetrabft_sim::Context<'_, Self::Msg, Value>,
    ) {
        use tetrabft_baselines::pbft::PbftMsg;
        use tetrabft_sim::{Action, ActionBuf, Context, Dest};
        let mut buf: ActionBuf<Self::Msg, Value> = ActionBuf::new();
        {
            let mut inner_ctx = Context::buffered(ctx.me(), ctx.n(), ctx.now(), &mut buf);
            self.inner.handle(input, &mut inner_ctx);
        }
        for action in buf {
            match action {
                Action::Send { msg: PbftMsg::Commit { view, .. }, .. } if view.is_zero() => {
                    // Swallowed: view 0 prepared but can never commit.
                }
                Action::Send { dest, msg } => match dest {
                    Dest::All => ctx.broadcast(msg),
                    Dest::Node(to) => ctx.send(to, msg),
                },
                Action::SetTimer { id, after } => ctx.set_timer(id, after),
                Action::CancelTimer { id } => ctx.cancel_timer(id),
                Action::Output(v) => ctx.output(v),
            }
        }
    }
}

/// Runs PBFT through a *loaded* view change: view 0 reaches the prepared
/// state everywhere, stalls, and recovers in view 1 with full certificates
/// on the wire. Returns the communication measurement (the O(n³) scenario
/// of experiment E6).
pub fn pbft_loaded_view_change(n: usize, delta: u64) -> Measurement {
    let cfg = Config::new(n).expect("valid n");
    let params = Params::new(delta);
    let sim =
        SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| StalledCommitPbft {
            inner: PbftNode::new(cfg, params, id, Value::from_u64(u64::from(id.0) + 1)),
        });
    measure(sim, n)
}

/// Pretty-prints a Markdown-ish table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<String>| {
        let padded: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
        format!("| {} |", padded.join(" | "))
    };
    println!("{}", fmt_row(header.iter().map(|s| s.to_string()).collect()));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Log-log slope between two (x, y) samples — the empirical scaling
/// exponent used by the communication experiments.
pub fn scaling_exponent(x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
    ((y1 / y0).ln()) / ((x1 / x0).ln())
}

/// Time horizon helper for throughput runs.
pub fn horizon(ticks: u64) -> Time {
    Time(ticks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies_match_paper_at_n4() {
        for protocol in [Protocol::Tetra, Protocol::Iths, Protocol::IthsBlog, Protocol::Pbft] {
            let (good, _) = protocol.paper_latencies();
            let m = run_protocol(protocol, Scenario::GoodCase, 4, 1);
            assert_eq!(m.latency, good, "{} good case", protocol.name());
        }
    }

    #[test]
    fn responsive_view_change_latencies_match_paper() {
        for protocol in [Protocol::Tetra, Protocol::Iths, Protocol::Pbft] {
            let (_, vc) = protocol.paper_latencies();
            let got = view_change_delays(protocol, 4, 10);
            assert_eq!(got, vc, "{} view change", protocol.name());
        }
    }

    #[test]
    fn scaling_exponent_sanity() {
        let e = scaling_exponent(4.0, 16.0, 8.0, 64.0);
        assert!((e - 2.0).abs() < 1e-9);
    }
}
