//! Message types of Basic TetraBFT (Section 3.1).

use tetrabft_sim::WireSize;
use tetrabft_types::{Phase, Value, View, VoteInfo};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

/// Payload of a `suggest` message: the sender's historical `vote-2`/`vote-3`
/// records, used by leaders to determine safe values (Rule 1 / Rule 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuggestData {
    /// Highest `vote-2` the sender ever cast.
    pub vote2: Option<VoteInfo>,
    /// Highest `vote-2` the sender cast for a value different from `vote2`.
    pub prev_vote2: Option<VoteInfo>,
    /// Highest `vote-3` the sender ever cast.
    pub vote3: Option<VoteInfo>,
}

/// Payload of a `proof` message: same structure as [`SuggestData`] but with
/// `vote-1` in place of `vote-2` and `vote-4` in place of `vote-3`, used by
/// followers to validate proposals (Rule 3 / Rule 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProofData {
    /// Highest `vote-1` the sender ever cast.
    pub vote1: Option<VoteInfo>,
    /// Highest `vote-1` the sender cast for a value different from `vote1`.
    pub prev_vote1: Option<VoteInfo>,
    /// Highest `vote-4` the sender ever cast.
    pub vote4: Option<VoteInfo>,
}

/// A Basic TetraBFT message.
///
/// The good case uses only [`Message::Proposal`] and [`Message::Vote`];
/// suggest/proof/view-change appear only when recovering from asynchrony or
/// a faulty leader — the property that distinguishes TetraBFT's pipelined
/// extension from IT-HS's (Section 1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// `⟨proposal, v, val⟩` — only sent by the leader of `view`.
    Proposal {
        /// View the proposal is made in.
        view: View,
        /// Proposed value.
        value: Value,
    },
    /// `⟨vote-i, v, val⟩` for `i ∈ 1..=4`.
    Vote {
        /// Which of the four voting phases.
        phase: Phase,
        /// View the vote is cast in.
        view: View,
        /// Value voted for.
        value: Value,
    },
    /// `⟨suggest, …⟩` — sent to the leader on entering a view `> 0`.
    Suggest {
        /// View the sender is entering.
        view: View,
        /// Historical vote-2/vote-3 records.
        data: SuggestData,
    },
    /// `⟨proof, …⟩` — broadcast on entering a view `> 0`.
    Proof {
        /// View the sender is entering.
        view: View,
        /// Historical vote-1/vote-4 records.
        data: ProofData,
    },
    /// `⟨view-change, v⟩` — a request to move to view `v`.
    ViewChange {
        /// The view the sender wants to move to.
        view: View,
    },
}

impl Message {
    /// The view this message belongs to.
    pub fn view(&self) -> View {
        match self {
            Message::Proposal { view, .. }
            | Message::Vote { view, .. }
            | Message::Suggest { view, .. }
            | Message::Proof { view, .. }
            | Message::ViewChange { view } => *view,
        }
    }

    /// Short human-readable kind, used by traces and figures.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Proposal { .. } => "proposal",
            Message::Vote { phase, .. } => match phase.as_u8() {
                1 => "vote-1",
                2 => "vote-2",
                3 => "vote-3",
                _ => "vote-4",
            },
            Message::Suggest { .. } => "suggest",
            Message::Proof { .. } => "proof",
            Message::ViewChange { .. } => "view-change",
        }
    }
}

const TAG_PROPOSAL: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_SUGGEST: u8 = 3;
const TAG_PROOF: u8 = 4;
const TAG_VIEW_CHANGE: u8 = 5;

impl Wire for SuggestData {
    fn encode(&self, w: &mut Writer) {
        self.vote2.encode(w);
        self.prev_vote2.encode(w);
        self.vote3.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SuggestData {
            vote2: Option::decode(r)?,
            prev_vote2: Option::decode(r)?,
            vote3: Option::decode(r)?,
        })
    }
}

impl Wire for ProofData {
    fn encode(&self, w: &mut Writer) {
        self.vote1.encode(w);
        self.prev_vote1.encode(w);
        self.vote4.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProofData {
            vote1: Option::decode(r)?,
            prev_vote1: Option::decode(r)?,
            vote4: Option::decode(r)?,
        })
    }
}

impl Wire for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::Proposal { view, value } => {
                w.put_u8(TAG_PROPOSAL);
                view.encode(w);
                value.encode(w);
            }
            Message::Vote { phase, view, value } => {
                w.put_u8(TAG_VOTE);
                phase.encode(w);
                view.encode(w);
                value.encode(w);
            }
            Message::Suggest { view, data } => {
                w.put_u8(TAG_SUGGEST);
                view.encode(w);
                data.encode(w);
            }
            Message::Proof { view, data } => {
                w.put_u8(TAG_PROOF);
                view.encode(w);
                data.encode(w);
            }
            Message::ViewChange { view } => {
                w.put_u8(TAG_VIEW_CHANGE);
                view.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_PROPOSAL => {
                Ok(Message::Proposal { view: View::decode(r)?, value: Value::decode(r)? })
            }
            TAG_VOTE => Ok(Message::Vote {
                phase: Phase::decode(r)?,
                view: View::decode(r)?,
                value: Value::decode(r)?,
            }),
            TAG_SUGGEST => {
                Ok(Message::Suggest { view: View::decode(r)?, data: SuggestData::decode(r)? })
            }
            TAG_PROOF => Ok(Message::Proof { view: View::decode(r)?, data: ProofData::decode(r)? }),
            TAG_VIEW_CHANGE => Ok(Message::ViewChange { view: View::decode(r)? }),
            tag => Err(WireError::InvalidTag { what: "Message", tag }),
        }
    }
}

impl WireSize for Message {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_types::View;

    fn vi(view: u64, value: u64) -> VoteInfo {
        VoteInfo::new(View(view), Value::from_u64(value))
    }

    fn roundtrip(msg: Message) {
        let bytes = msg.to_bytes();
        assert_eq!(Message::from_bytes(&bytes).unwrap(), msg);
        assert_eq!(msg.wire_size(), bytes.len());
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Proposal { view: View(3), value: Value::from_u64(9) });
        for phase in Phase::ALL {
            roundtrip(Message::Vote { phase, view: View(1), value: Value::from_u64(2) });
        }
        roundtrip(Message::Suggest {
            view: View(4),
            data: SuggestData { vote2: Some(vi(3, 1)), prev_vote2: Some(vi(1, 2)), vote3: None },
        });
        roundtrip(Message::Proof {
            view: View(4),
            data: ProofData { vote1: None, prev_vote1: None, vote4: Some(vi(2, 5)) },
        });
        roundtrip(Message::ViewChange { view: View(77) });
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Message::from_bytes(&[99]),
            Err(WireError::InvalidTag { what: "Message", tag: 99 })
        ));
    }

    #[test]
    fn view_accessor_and_kind() {
        let m = Message::Vote { phase: Phase::VOTE3, view: View(6), value: Value::from_u64(0) };
        assert_eq!(m.view(), View(6));
        assert_eq!(m.kind(), "vote-3");
        assert_eq!(Message::ViewChange { view: View(1) }.kind(), "view-change");
    }

    #[test]
    fn messages_are_constant_size() {
        // Every TetraBFT message is O(1) bytes — the communication row of
        // Table 1 relies on it.
        let worst = Message::Suggest {
            view: View(u64::MAX),
            data: SuggestData {
                vote2: Some(vi(u64::MAX, u64::MAX)),
                prev_vote2: Some(vi(u64::MAX, u64::MAX)),
                vote3: Some(vi(u64::MAX, u64::MAX)),
            },
        };
        assert!(worst.wire_size() < 128, "messages must be constant-size");
    }
}
