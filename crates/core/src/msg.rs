//! Message types of Basic TetraBFT (Section 3.1).

use tetrabft_sim::WireSize;
use tetrabft_types::{AuditClaim, Phase, Value, View, VoteInfo};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

/// Encodes a historical vote against the base view both ends already know
/// (the message's own view): a varint view *delta* plus the value.
///
/// Real suggest/proof traffic reports votes from views at or just below the
/// message's view, so the delta is almost always one byte. The delta is a
/// wrapping difference, which keeps the encoding lossless for *any* pair of
/// views — a Byzantine sender claiming a vote from the future costs itself
/// up to ten bytes but decodes back to exactly what it sent.
fn encode_vote_delta(base: View, vote: &VoteInfo, w: &mut Writer) {
    w.put_varint(base.0.wrapping_sub(vote.view.0));
    vote.value.encode(w);
}

fn decode_vote_delta(base: View, r: &mut Reader<'_>) -> Result<VoteInfo, WireError> {
    let delta = r.get_varint_u64()?;
    Ok(VoteInfo { view: View(base.0.wrapping_sub(delta)), value: Value::decode(r)? })
}

/// Encodes three optional votes as one presence bitmap byte (bits 0..=2)
/// followed by the present votes, delta-compressed against `base` — v2's
/// replacement for three per-`Option` tag bytes and absolute views.
fn encode_vote_triple(base: View, votes: [&Option<VoteInfo>; 3], w: &mut Writer) {
    let mut bitmap = 0u8;
    for (bit, vote) in votes.iter().enumerate() {
        if vote.is_some() {
            bitmap |= 1 << bit;
        }
    }
    w.put_u8(bitmap);
    for vote in votes.into_iter().flatten() {
        encode_vote_delta(base, vote, w);
    }
}

fn decode_vote_triple(
    base: View,
    what: &'static str,
    r: &mut Reader<'_>,
) -> Result<[Option<VoteInfo>; 3], WireError> {
    let bitmap = r.get_u8()?;
    if bitmap & !0b111 != 0 {
        return Err(WireError::InvalidTag { what, tag: bitmap });
    }
    let mut votes = [None, None, None];
    for (bit, vote) in votes.iter_mut().enumerate() {
        if bitmap & (1 << bit) != 0 {
            *vote = Some(decode_vote_delta(base, r)?);
        }
    }
    Ok(votes)
}

/// Payload of a `suggest` message: the sender's historical `vote-2`/`vote-3`
/// records, used by leaders to determine safe values (Rule 1 / Rule 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuggestData {
    /// Highest `vote-2` the sender ever cast.
    pub vote2: Option<VoteInfo>,
    /// Highest `vote-2` the sender cast for a value different from `vote2`.
    pub prev_vote2: Option<VoteInfo>,
    /// Highest `vote-3` the sender ever cast.
    pub vote3: Option<VoteInfo>,
}

/// Payload of a `proof` message: same structure as [`SuggestData`] but with
/// `vote-1` in place of `vote-2` and `vote-4` in place of `vote-3`, used by
/// followers to validate proposals (Rule 3 / Rule 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProofData {
    /// Highest `vote-1` the sender ever cast.
    pub vote1: Option<VoteInfo>,
    /// Highest `vote-1` the sender cast for a value different from `vote1`.
    pub prev_vote1: Option<VoteInfo>,
    /// Highest `vote-4` the sender ever cast.
    pub vote4: Option<VoteInfo>,
}

/// A Basic TetraBFT message.
///
/// The good case uses only [`Message::Proposal`] and [`Message::Vote`];
/// suggest/proof/view-change appear only when recovering from asynchrony or
/// a faulty leader — the property that distinguishes TetraBFT's pipelined
/// extension from IT-HS's (Section 1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// `⟨proposal, v, val⟩` — only sent by the leader of `view`.
    Proposal {
        /// View the proposal is made in.
        view: View,
        /// Proposed value.
        value: Value,
    },
    /// `⟨vote-i, v, val⟩` for `i ∈ 1..=4`.
    Vote {
        /// Which of the four voting phases.
        phase: Phase,
        /// View the vote is cast in.
        view: View,
        /// Value voted for.
        value: Value,
    },
    /// `⟨suggest, …⟩` — sent to the leader on entering a view `> 0`.
    Suggest {
        /// View the sender is entering.
        view: View,
        /// Historical vote-2/vote-3 records.
        data: SuggestData,
    },
    /// `⟨proof, …⟩` — broadcast on entering a view `> 0`.
    Proof {
        /// View the sender is entering.
        view: View,
        /// Historical vote-1/vote-4 records.
        data: ProofData,
    },
    /// `⟨view-change, v⟩` — a request to move to view `v`.
    ViewChange {
        /// The view the sender wants to move to.
        view: View,
    },
}

impl Message {
    /// The view this message belongs to.
    pub fn view(&self) -> View {
        match self {
            Message::Proposal { view, .. }
            | Message::Vote { view, .. }
            | Message::Suggest { view, .. }
            | Message::Proof { view, .. }
            | Message::ViewChange { view } => *view,
        }
    }

    /// Short human-readable kind, used by traces and figures.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Proposal { .. } => "proposal",
            Message::Vote { phase, .. } => match phase.as_u8() {
                1 => "vote-1",
                2 => "vote-2",
                3 => "vote-3",
                _ => "vote-4",
            },
            Message::Suggest { .. } => "suggest",
            Message::Proof { .. } => "proof",
            Message::ViewChange { .. } => "view-change",
        }
    }
}

const TAG_PROPOSAL: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_SUGGEST: u8 = 3;
const TAG_PROOF: u8 = 4;
const TAG_VIEW_CHANGE: u8 = 5;

impl SuggestData {
    /// Encodes the payload delta-compressed against `base` — the view of
    /// the enclosing message, which the decoder reads first and therefore
    /// shares. See [`Message::Suggest`].
    pub fn encode_with_base(&self, base: View, w: &mut Writer) {
        encode_vote_triple(base, [&self.vote2, &self.prev_vote2, &self.vote3], w);
    }

    /// Decodes a payload encoded by [`SuggestData::encode_with_base`].
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidTag`] on a presence bitmap with unknown bits, or
    /// any varint/value decode failure.
    pub fn decode_with_base(base: View, r: &mut Reader<'_>) -> Result<Self, WireError> {
        let [vote2, prev_vote2, vote3] = decode_vote_triple(base, "SuggestData bitmap", r)?;
        Ok(SuggestData { vote2, prev_vote2, vote3 })
    }
}

impl ProofData {
    /// Encodes the payload delta-compressed against `base`; see
    /// [`SuggestData::encode_with_base`].
    pub fn encode_with_base(&self, base: View, w: &mut Writer) {
        encode_vote_triple(base, [&self.vote1, &self.prev_vote1, &self.vote4], w);
    }

    /// Decodes a payload encoded by [`ProofData::encode_with_base`].
    ///
    /// # Errors
    ///
    /// As [`SuggestData::decode_with_base`].
    pub fn decode_with_base(base: View, r: &mut Reader<'_>) -> Result<Self, WireError> {
        let [vote1, prev_vote1, vote4] = decode_vote_triple(base, "ProofData bitmap", r)?;
        Ok(ProofData { vote1, prev_vote1, vote4 })
    }
}

impl Wire for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::Proposal { view, value } => {
                w.put_u8(TAG_PROPOSAL);
                view.encode(w);
                value.encode(w);
            }
            Message::Vote { phase, view, value } => {
                w.put_u8(TAG_VOTE);
                phase.encode(w);
                view.encode(w);
                value.encode(w);
            }
            Message::Suggest { view, data } => {
                w.put_u8(TAG_SUGGEST);
                view.encode(w);
                data.encode_with_base(*view, w);
            }
            Message::Proof { view, data } => {
                w.put_u8(TAG_PROOF);
                view.encode(w);
                data.encode_with_base(*view, w);
            }
            Message::ViewChange { view } => {
                w.put_u8(TAG_VIEW_CHANGE);
                view.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_PROPOSAL => {
                Ok(Message::Proposal { view: View::decode(r)?, value: Value::decode(r)? })
            }
            TAG_VOTE => Ok(Message::Vote {
                phase: Phase::decode(r)?,
                view: View::decode(r)?,
                value: Value::decode(r)?,
            }),
            TAG_SUGGEST => {
                let view = View::decode(r)?;
                Ok(Message::Suggest { view, data: SuggestData::decode_with_base(view, r)? })
            }
            TAG_PROOF => {
                let view = View::decode(r)?;
                Ok(Message::Proof { view, data: ProofData::decode_with_base(view, r)? })
            }
            TAG_VIEW_CHANGE => Ok(Message::ViewChange { view: View::decode(r)? }),
            tag => Err(WireError::InvalidTag { what: "Message", tag }),
        }
    }
}

impl WireSize for Message {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
    fn wire_kind(&self) -> &'static str {
        self.kind()
    }
    /// Proposals and votes claim a write-once `(view, phase)` register — the
    /// accountability audit flags a sender that claims one twice with
    /// different values. Suggest/proof/view-change carry history, not
    /// claims, and are not audited.
    fn audit_claim(&self) -> Option<AuditClaim> {
        match self {
            Message::Proposal { view, value } => {
                Some(AuditClaim { slot: None, view: *view, phase: None, value: *value })
            }
            Message::Vote { phase, view, value } => {
                Some(AuditClaim { slot: None, view: *view, phase: Some(*phase), value: *value })
            }
            _ => None,
        }
    }
}

/// Wire format **v1** — the retired fixed-width layout, kept as an encoder
/// only so the `wire_bytes` bench (and anyone auditing the v2 claim) can
/// measure both formats on identical traffic.
///
/// Layout: 1-byte tag; `View` as big-endian `u64`; `Phase` as one byte;
/// `Value` as 8 raw bytes; each `Option<VoteInfo>` as a 0/1 tag byte
/// followed, when present, by an absolute 8-byte view and the value.
pub mod v1 {
    use super::{Message, ProofData, SuggestData, VoteInfo};
    use tetrabft_wire::Writer;

    fn put_opt_vote(vote: &Option<VoteInfo>, w: &mut Writer) {
        match vote {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                w.put_u64(v.view.0);
                w.put_slice(v.value.as_bytes());
            }
        }
    }

    /// v1 layout of [`SuggestData`] (no delta compression, no bitmap).
    pub fn encode_suggest_data(data: &SuggestData, w: &mut Writer) {
        put_opt_vote(&data.vote2, w);
        put_opt_vote(&data.prev_vote2, w);
        put_opt_vote(&data.vote3, w);
    }

    /// v1 layout of [`ProofData`].
    pub fn encode_proof_data(data: &ProofData, w: &mut Writer) {
        put_opt_vote(&data.vote1, w);
        put_opt_vote(&data.prev_vote1, w);
        put_opt_vote(&data.vote4, w);
    }

    /// Appends the v1 encoding of `msg` to `w`.
    pub fn encode(msg: &Message, w: &mut Writer) {
        match msg {
            Message::Proposal { view, value } => {
                w.put_u8(super::TAG_PROPOSAL);
                w.put_u64(view.0);
                w.put_slice(value.as_bytes());
            }
            Message::Vote { phase, view, value } => {
                w.put_u8(super::TAG_VOTE);
                w.put_u8(phase.as_u8());
                w.put_u64(view.0);
                w.put_slice(value.as_bytes());
            }
            Message::Suggest { view, data } => {
                w.put_u8(super::TAG_SUGGEST);
                w.put_u64(view.0);
                encode_suggest_data(data, w);
            }
            Message::Proof { view, data } => {
                w.put_u8(super::TAG_PROOF);
                w.put_u64(view.0);
                encode_proof_data(data, w);
            }
            Message::ViewChange { view } => {
                w.put_u8(super::TAG_VIEW_CHANGE);
                w.put_u64(view.0);
            }
        }
    }

    /// Number of bytes `msg` occupied under wire format v1.
    pub fn wire_len(msg: &Message) -> usize {
        let mut w = Writer::new();
        encode(msg, &mut w);
        w.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_types::View;

    fn vi(view: u64, value: u64) -> VoteInfo {
        VoteInfo::new(View(view), Value::from_u64(value))
    }

    fn roundtrip(msg: Message) {
        let bytes = msg.to_bytes();
        assert_eq!(Message::from_bytes(&bytes).unwrap(), msg);
        assert_eq!(msg.wire_size(), bytes.len());
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Proposal { view: View(3), value: Value::from_u64(9) });
        for phase in Phase::ALL {
            roundtrip(Message::Vote { phase, view: View(1), value: Value::from_u64(2) });
        }
        roundtrip(Message::Suggest {
            view: View(4),
            data: SuggestData { vote2: Some(vi(3, 1)), prev_vote2: Some(vi(1, 2)), vote3: None },
        });
        roundtrip(Message::Proof {
            view: View(4),
            data: ProofData { vote1: None, prev_vote1: None, vote4: Some(vi(2, 5)) },
        });
        roundtrip(Message::ViewChange { view: View(77) });
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Message::from_bytes(&[99]),
            Err(WireError::InvalidTag { what: "Message", tag: 99 })
        ));
    }

    #[test]
    fn view_accessor_and_kind() {
        let m = Message::Vote { phase: Phase::VOTE3, view: View(6), value: Value::from_u64(0) };
        assert_eq!(m.view(), View(6));
        assert_eq!(m.kind(), "vote-3");
        assert_eq!(Message::ViewChange { view: View(1) }.kind(), "view-change");
    }

    #[test]
    fn messages_are_constant_size() {
        // Every TetraBFT message is O(1) bytes — the communication row of
        // Table 1 relies on it.
        let worst = Message::Suggest {
            view: View(u64::MAX),
            data: SuggestData {
                vote2: Some(vi(u64::MAX, u64::MAX)),
                prev_vote2: Some(vi(u64::MAX, u64::MAX)),
                vote3: Some(vi(u64::MAX, u64::MAX)),
            },
        };
        assert!(worst.wire_size() < 128, "messages must be constant-size");
    }

    #[test]
    fn v2_sizes_for_realistic_messages() {
        // tag + varint view + bitmap: an empty suggest is three bytes.
        let empty = Message::Suggest { view: View(1), data: SuggestData::default() };
        assert_eq!(empty.wire_len(), 3);
        // Present votes cost 1 (delta) + 8 (value) each at realistic views.
        let full = Message::Suggest {
            view: View(5),
            data: SuggestData { vote2: Some(vi(4, 1)), prev_vote2: Some(vi(2, 2)), vote3: None },
        };
        assert_eq!(full.wire_len(), 3 + 2 * 9);
        assert_eq!(Message::ViewChange { view: View(1) }.wire_len(), 2);
        let vote = Message::Vote { phase: Phase::VOTE1, view: View(1), value: Value::from_u64(7) };
        assert_eq!(vote.wire_len(), 11);
    }

    #[test]
    fn suggest_deltas_roundtrip_even_for_hostile_views() {
        // A Byzantine sender may claim votes from views above the message's
        // own; wrapping deltas keep the codec lossless regardless.
        for (msg_view, vote_view) in [(0u64, u64::MAX), (5, 9), (u64::MAX, 0), (7, 7)] {
            roundtrip(Message::Suggest {
                view: View(msg_view),
                data: SuggestData { vote2: Some(vi(vote_view, 3)), ..Default::default() },
            });
        }
    }

    #[test]
    fn unknown_bitmap_bits_rejected() {
        let mut w = Writer::new();
        w.put_u8(TAG_SUGGEST);
        View(1).encode(&mut w);
        w.put_u8(0b1000); // only bits 0..=2 are defined
        assert_eq!(
            Message::from_bytes(w.as_bytes()),
            Err(WireError::InvalidTag { what: "SuggestData bitmap", tag: 0b1000 })
        );
    }

    #[test]
    fn v1_layout_is_the_historical_fixed_width_one() {
        // The retained v1 encoder must keep producing the exact pre-varint
        // sizes the v2 savings are measured against.
        assert_eq!(v1::wire_len(&Message::ViewChange { view: View(1) }), 9);
        assert_eq!(
            v1::wire_len(&Message::Proposal { view: View(1), value: Value::from_u64(2) }),
            17
        );
        assert_eq!(
            v1::wire_len(&Message::Vote {
                phase: Phase::VOTE1,
                view: View(1),
                value: Value::from_u64(2)
            }),
            18
        );
        assert_eq!(
            v1::wire_len(&Message::Suggest { view: View(1), data: SuggestData::default() }),
            12
        );
        let full = Message::Suggest {
            view: View(5),
            data: SuggestData {
                vote2: Some(vi(4, 1)),
                prev_vote2: Some(vi(2, 2)),
                vote3: Some(vi(4, 1)),
            },
        };
        assert_eq!(v1::wire_len(&full), 60);
        // v2 beats v1 on every realistic message above.
        assert!(full.wire_len() < v1::wire_len(&full));
    }
}
