//! Timing parameters.

/// Timing parameters of the protocol.
///
/// The only parameter TetraBFT needs is Δ, the post-GST delivery bound. The
/// view timeout is fixed at `9Δ` per Section 3.2: up to `2Δ` of view-entry
/// skew across well-behaved nodes, `6Δ` for suggest/proof, proposal, and the
/// four vote phases, plus one Δ of safety margin.
///
/// # Examples
///
/// ```
/// use tetrabft::Params;
/// let p = Params::new(10);
/// assert_eq!(p.delta(), 10);
/// assert_eq!(p.view_timeout(), 90);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    delta: u64,
    timeout_factor: u64,
}

impl Params {
    /// Multiplier fixed by the paper's timeout analysis (Section 3.2).
    pub const TIMEOUT_FACTOR: u64 = 9;

    /// Creates parameters for a known post-GST delivery bound `delta` (Δ),
    /// expressed in simulator ticks (or milliseconds under `tetrabft-net`),
    /// with the paper's `9Δ` view timeout.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`; a zero bound makes timeouts meaningless.
    pub fn new(delta: u64) -> Self {
        assert!(delta > 0, "Δ must be positive");
        Params { delta, timeout_factor: Self::TIMEOUT_FACTOR }
    }

    /// Creates parameters with a non-standard timeout multiplier — **for
    /// the timeout-margin ablation only** (experiment E8): the paper
    /// justifies 9Δ as 2Δ view-entry skew + 6Δ of protocol phases + 1Δ
    /// margin; smaller factors risk spurious view changes.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` or `factor == 0`.
    pub fn with_timeout_factor(delta: u64, factor: u64) -> Self {
        assert!(delta > 0, "Δ must be positive");
        assert!(factor > 0, "timeout factor must be positive");
        Params { delta, timeout_factor: factor }
    }

    /// The delivery bound Δ.
    #[inline]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The per-view timeout (`9Δ` unless overridden for the ablation).
    #[inline]
    pub fn view_timeout(&self) -> u64 {
        self.timeout_factor * self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_is_nine_delta() {
        assert_eq!(Params::new(1).view_timeout(), 9);
        assert_eq!(Params::new(100).view_timeout(), 900);
    }

    #[test]
    #[should_panic(expected = "Δ must be positive")]
    fn zero_delta_rejected() {
        let _ = Params::new(0);
    }
}
