//! Timing and batching parameters.

use tetrabft_types::FsyncPolicy;

/// Timing and batching parameters of the protocol.
///
/// The only *timing* parameter TetraBFT needs is Δ, the post-GST delivery
/// bound. The view timeout is fixed at `9Δ` per Section 3.2: up to `2Δ` of
/// view-entry skew across well-behaved nodes, `6Δ` for suggest/proof,
/// proposal, and the four vote phases, plus one Δ of safety margin.
///
/// The multi-shot extension adds three *batching* knobs consumed by the
/// leader's mempool: how many transactions a block may carry, how many the
/// pool admits before pushing back, and how large one transaction may be.
/// Their defaults match the historical hard-coded behavior.
///
/// # Examples
///
/// ```
/// use tetrabft::Params;
/// let p = Params::new(10);
/// assert_eq!(p.delta(), 10);
/// assert_eq!(p.view_timeout(), 90);
/// assert_eq!(p.max_block_txs(), 64);
///
/// let tuned = Params::new(10).with_max_block_txs(256).with_mempool_capacity(50_000);
/// assert_eq!(tuned.max_block_txs(), 256);
/// assert_eq!(tuned.mempool_capacity(), 50_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    delta: u64,
    timeout_factor: u64,
    max_block_txs: usize,
    mempool_capacity: usize,
    max_tx_bytes: usize,
    fsync: FsyncPolicy,
    hotpath_baseline: bool,
    idle_pacing: u64,
}

impl Params {
    /// Multiplier fixed by the paper's timeout analysis (Section 3.2).
    pub const TIMEOUT_FACTOR: u64 = 9;

    /// Default cap on transactions per block.
    pub const DEFAULT_MAX_BLOCK_TXS: usize = 64;

    /// Default mempool admission bound (submissions beyond it are refused
    /// with a typed backpressure error).
    pub const DEFAULT_MEMPOOL_CAPACITY: usize = 8_192;

    /// Default per-transaction size cap in bytes.
    pub const DEFAULT_MAX_TX_BYTES: usize = 4 * 1024;

    /// Creates parameters for a known post-GST delivery bound `delta` (Δ),
    /// expressed in simulator ticks (or milliseconds under `tetrabft-net`),
    /// with the paper's `9Δ` view timeout and default batching knobs.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`; a zero bound makes timeouts meaningless.
    pub fn new(delta: u64) -> Self {
        assert!(delta > 0, "Δ must be positive");
        Params {
            delta,
            timeout_factor: Self::TIMEOUT_FACTOR,
            max_block_txs: Self::DEFAULT_MAX_BLOCK_TXS,
            mempool_capacity: Self::DEFAULT_MEMPOOL_CAPACITY,
            max_tx_bytes: Self::DEFAULT_MAX_TX_BYTES,
            fsync: FsyncPolicy::default(),
            hotpath_baseline: false,
            idle_pacing: 0,
        }
    }

    /// Creates parameters with a non-standard timeout multiplier — **for
    /// the timeout-margin ablation only** (experiment E8): the paper
    /// justifies 9Δ as 2Δ view-entry skew + 6Δ of protocol phases + 1Δ
    /// margin; smaller factors risk spurious view changes.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` or `factor == 0`.
    pub fn with_timeout_factor(delta: u64, factor: u64) -> Self {
        assert!(factor > 0, "timeout factor must be positive");
        Params { timeout_factor: factor, ..Params::new(delta) }
    }

    /// Sets the maximum number of transactions a leader packs into one
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`; a chain that can never carry a transaction
    /// has no liveness story.
    #[must_use]
    pub fn with_max_block_txs(mut self, max: usize) -> Self {
        assert!(max > 0, "blocks must be able to carry at least one tx");
        self.max_block_txs = max;
        self
    }

    /// Sets the mempool admission bound (the backpressure threshold).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_mempool_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "mempool must admit at least one tx");
        self.mempool_capacity = capacity;
        self
    }

    /// Sets the per-transaction size cap in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    #[must_use]
    pub fn with_max_tx_bytes(mut self, max: usize) -> Self {
        assert!(max > 0, "tx size cap must be positive");
        self.max_tx_bytes = max;
        self
    }

    /// Sets the durable store's fsync cadence: `Always` pays a sync per
    /// record for minimal power-loss rollback, `Batch(n)` amortizes it,
    /// `Never` rides the OS page cache (still crash-safe for process
    /// deaths, not power loss). Ignored by nodes without a durable store.
    #[must_use]
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Routes quorum checks through the allocating pre-tally-table code
    /// paths (`vote_tallies` scans, per-step `Vec` collects) instead of the
    /// precomputed tables — **for the `pipeline_hotpath` bench only**, which
    /// measures the zero-alloc hot path against this retained baseline the
    /// same way `wire_bytes` retains the v1 codec. Decisions are identical
    /// either way; only cost differs.
    #[must_use]
    pub fn with_hotpath_baseline(mut self, baseline: bool) -> Self {
        self.hotpath_baseline = baseline;
        self
    }

    /// Paces an *idle* multi-shot chain: a leader whose mempool is empty
    /// holds an otherwise-ready view-0 proposal back for `pause` time
    /// units instead of free-running empty blocks at CPU speed. `0`
    /// (the default) disables pacing. A submission arriving during the
    /// pause is proposed without waiting it out, so pacing trades idle
    /// burn for at most `pause` of extra commit latency on the first
    /// transaction after a lull.
    #[must_use]
    pub fn with_idle_pacing(mut self, pause: u64) -> Self {
        self.idle_pacing = pause;
        self
    }

    /// Idle proposal pause (`0` = free-run, the default).
    #[inline]
    pub fn idle_pacing(&self) -> u64 {
        self.idle_pacing
    }

    /// `true` if quorum checks should use the retained allocating baseline.
    #[inline]
    pub fn hotpath_baseline(&self) -> bool {
        self.hotpath_baseline
    }

    /// The durable store's fsync cadence.
    #[inline]
    pub fn fsync(&self) -> FsyncPolicy {
        self.fsync
    }

    /// The delivery bound Δ.
    #[inline]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The per-view timeout (`9Δ` unless overridden for the ablation).
    #[inline]
    pub fn view_timeout(&self) -> u64 {
        self.timeout_factor * self.delta
    }

    /// Maximum transactions a leader packs into one block.
    #[inline]
    pub fn max_block_txs(&self) -> usize {
        self.max_block_txs
    }

    /// Mempool admission bound; submissions beyond it are refused.
    #[inline]
    pub fn mempool_capacity(&self) -> usize {
        self.mempool_capacity
    }

    /// Per-transaction size cap in bytes.
    #[inline]
    pub fn max_tx_bytes(&self) -> usize {
        self.max_tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_is_nine_delta() {
        assert_eq!(Params::new(1).view_timeout(), 9);
        assert_eq!(Params::new(100).view_timeout(), 900);
    }

    #[test]
    #[should_panic(expected = "Δ must be positive")]
    fn zero_delta_rejected() {
        let _ = Params::new(0);
    }

    #[test]
    fn fsync_policy_defaults_batched_and_overrides() {
        let p = Params::new(5);
        assert_eq!(p.fsync(), FsyncPolicy::default());
        let q = p.with_fsync(FsyncPolicy::Always);
        assert_eq!(q.fsync(), FsyncPolicy::Always);
        assert_eq!(q.delta(), 5, "timing knobs are untouched");
        assert_eq!(Params::new(5).with_fsync(FsyncPolicy::Batch(4)).fsync(), FsyncPolicy::Batch(4));
    }

    #[test]
    fn batching_knobs_default_and_override() {
        let p = Params::new(5);
        assert_eq!(p.max_block_txs(), Params::DEFAULT_MAX_BLOCK_TXS);
        assert_eq!(p.mempool_capacity(), Params::DEFAULT_MEMPOOL_CAPACITY);
        assert_eq!(p.max_tx_bytes(), Params::DEFAULT_MAX_TX_BYTES);
        let q = p.with_max_block_txs(7).with_mempool_capacity(11).with_max_tx_bytes(13);
        assert_eq!((q.max_block_txs(), q.mempool_capacity(), q.max_tx_bytes()), (7, 11, 13));
        assert_eq!(q.delta(), 5, "timing knobs are untouched");
    }

    #[test]
    #[should_panic(expected = "at least one tx")]
    fn zero_block_txs_rejected() {
        let _ = Params::new(1).with_max_block_txs(0);
    }
}
