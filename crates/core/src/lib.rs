//! **Basic TetraBFT** — the single-shot, unauthenticated, optimistically
//! responsive BFT consensus protocol of
//! *"TetraBFT: Reducing Latency of Unauthenticated, Responsive BFT
//! Consensus"* (Yu, Losa, Wang — PODC 2024).
//!
//! TetraBFT solves consensus in partial synchrony with:
//!
//! * **optimal resilience** — any `n > 3f`;
//! * **no message authentication** — only authenticated channels; no public
//!   key cryptography anywhere, so the protocol tolerates computationally
//!   unbounded adversaries;
//! * **optimistic responsiveness** — after GST it advances at actual network
//!   speed (decisions within `7δ` of a view led by a correct leader);
//! * **constant persistent storage** — six vote registers
//!   ([`tetrabft_types::VoteBook`]);
//! * **O(n²) communication** per view (linear per node);
//! * **good-case latency of 5 message delays** — one better than IT-HS, the
//!   only previously known protocol with the other four properties.
//!
//! A view runs through phases `suggest`/`proof` → `proposal` → `vote-1` →
//! `vote-2` → `vote-3` → `vote-4`; a node decides on a quorum of `vote-4`.
//! At view 0 the suggest/proof phase is skipped (every value is safe), which
//! is where the 5-delay good case comes from: proposal + four vote phases.
//!
//! The implementation is sans-I/O: [`TetraNode`] is a deterministic state
//! machine implementing [`tetrabft_sim::Node`], equally at home under the
//! discrete-event simulator, the TCP transport of `tetrabft-net`, or a
//! model checker.
//!
//! # Examples
//!
//! Four nodes, one of them silent (crashed), still decide — and under a
//! unit-delay network the first decision lands at 5 message delays:
//!
//! ```
//! use tetrabft::{Params, TetraNode};
//! use tetrabft_sim::{LinkPolicy, SimBuilder};
//! use tetrabft_types::{Config, Value};
//!
//! let cfg = Config::new(4)?;
//! let params = Params::new(100); // Δ = 100 ticks
//! let mut sim = SimBuilder::new(4)
//!     .policy(LinkPolicy::synchronous(1))
//!     .build(|id| TetraNode::new(cfg, params, id, Value::from_u64(7)));
//! assert!(sim.run_until_outputs(4, 100_000));
//! assert_eq!(sim.outputs()[0].time.0, 5); // the headline number
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod msg;
mod node;
mod params;
mod records;
pub mod rules;
pub mod strategies;

pub use msg::v1 as wire_v1;
pub use msg::{Message, ProofData, SuggestData};
pub use node::{TetraNode, VIEW_TIMER};
pub use params::Params;
pub use records::{PeerRecord, Registers};
