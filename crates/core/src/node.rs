//! The Basic TetraBFT node state machine (Section 3.2).

use tetrabft_sim::{Context, Input, Node, TimerId};
use tetrabft_types::{Config, NodeId, Phase, Value, View, VoteBook};

use crate::msg::Message;
use crate::params::Params;
use crate::records::Registers;
use crate::rules::{leader_determine_safe, node_determine_safe};

/// The single protocol timer: the per-view timeout of `9Δ`.
pub const VIEW_TIMER: TimerId = TimerId(0);

/// A well-behaved Basic TetraBFT node.
///
/// The node is a deterministic state machine ([`tetrabft_sim::Node`]); its
/// complete persistent state is the [`VoteBook`] (six registers — the
/// constant-storage claim of Table 1), and its volatile state is the
/// per-peer [`Registers`] snapshot (O(1) per peer).
///
/// A node emits its decided [`Value`] exactly once as its output, then keeps
/// participating so that slower nodes can still decide (its vote book makes
/// every future vote safe, so it simply keeps confirming the decided value
/// in later views).
///
/// # Examples
///
/// See the crate-level example for the 5-message-delay good case.
#[derive(Debug, Clone)]
pub struct TetraNode {
    cfg: Config,
    params: Params,
    me: NodeId,
    input: Value,
    view: View,
    book: VoteBook,
    regs: Registers,
    /// Leader flag: already proposed in the current view.
    proposed: bool,
    /// Highest view-change this node has broadcast.
    vc_sent: Option<View>,
    decided: Option<Value>,
    /// Reusable scratch for view-change suggest collection: filled by
    /// `Registers::suggests_into` each re-evaluation, so the per-step
    /// allocation the old `suggests_at` collect paid happens at most once
    /// (capacity is retained across steps).
    scratch_suggests: Vec<crate::msg::SuggestData>,
    /// Reusable scratch for proof collection, same pattern.
    scratch_proofs: Vec<crate::msg::ProofData>,
}

impl TetraNode {
    /// Creates a node with the given identity and input (initial) value.
    pub fn new(cfg: Config, params: Params, me: NodeId, input: Value) -> Self {
        TetraNode {
            cfg,
            params,
            me,
            input,
            view: View::ZERO,
            book: VoteBook::new(),
            regs: Registers::new(&cfg),
            proposed: false,
            vc_sent: None,
            decided: None,
            scratch_suggests: Vec::new(),
            scratch_proofs: Vec::new(),
        }
    }

    /// The node's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The decided value, if this node has decided.
    pub fn decided(&self) -> Option<Value> {
        self.decided
    }

    /// The node's input value.
    pub fn input(&self) -> Value {
        self.input
    }

    /// The persistent vote book (for storage measurements and tests).
    pub fn book(&self) -> &VoteBook {
        &self.book
    }

    /// Equivocation evidence this node harvested from received traffic —
    /// peers that claimed one `(view, phase)` register twice with different
    /// values (see `Registers::evidence`).
    pub fn evidence(&self) -> &[tetrabft_types::Evidence] {
        self.regs.evidence()
    }

    /// Bytes of persistent storage — constant, per the Table 1 claim.
    pub fn persistent_bytes(&self) -> usize {
        // Vote book + current view + highest view-change sent + decided.
        self.book.persistent_bytes() + 8 + 9 + 9
    }

    fn leader(&self, view: View) -> NodeId {
        self.cfg.leader_of(view)
    }

    fn enter_view(&mut self, view: View, ctx: &mut Context<'_, Message, Value>) {
        debug_assert!(view > self.view || (view.is_zero() && self.view.is_zero()));
        self.view = view;
        self.proposed = false;
        ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
        if !view.is_zero() {
            // Step 1 of a view: broadcast a proof, send a suggest to the
            // leader (which may be this node; loopback handles that).
            let (vote1, prev_vote1, vote4) = self.book.proof_fields();
            ctx.broadcast(Message::Proof {
                view,
                data: crate::msg::ProofData { vote1, prev_vote1, vote4 },
            });
            let (vote2, prev_vote2, vote3) = self.book.suggest_fields();
            ctx.send(
                self.leader(view),
                Message::Suggest {
                    view,
                    data: crate::msg::SuggestData { vote2, prev_vote2, vote3 },
                },
            );
        }
    }

    /// Runs every enabled protocol step to fixpoint. Each step is guarded by
    /// a monotone flag (voted / proposed / view number / decided), so the
    /// loop terminates.
    fn drive(&mut self, ctx: &mut Context<'_, Message, Value>) {
        loop {
            let mut dirty = false;
            dirty |= self.step_view_change(ctx);
            dirty |= self.step_lead(ctx);
            dirty |= self.step_vote1(ctx);
            dirty |= self.step_vote_chain(ctx);
            dirty |= self.step_decide(ctx);
            if !dirty {
                break;
            }
        }
    }

    /// View-change engine: enter on `n − f` support, echo on `f + 1`.
    fn step_view_change(&mut self, ctx: &mut Context<'_, Message, Value>) -> bool {
        let candidates = self.regs.view_change_candidates(self.view);
        // Entering: take the highest view with quorum support.
        for &v in &candidates {
            if self.cfg.is_quorum(self.regs.view_change_support(v)) {
                self.enter_view(v, ctx);
                return true;
            }
        }
        // Echoing: the highest view with blocking-set support not yet
        // acknowledged by our own view-change broadcast.
        for &v in &candidates {
            if self.cfg.is_blocking(self.regs.view_change_support(v))
                && self.vc_sent.is_none_or(|sent| v > sent)
            {
                self.vc_sent = Some(v);
                ctx.broadcast(Message::ViewChange { view: v });
                return true;
            }
        }
        false
    }

    /// Step 2: the leader proposes once a safe value is certified (Rule 1).
    fn step_lead(&mut self, ctx: &mut Context<'_, Message, Value>) -> bool {
        if self.proposed || self.leader(self.view) != self.me {
            return false;
        }
        // View 0 needs no suggests — pass an empty slice instead of
        // materializing a `Vec`; later views fill the retained scratch
        // buffer in place.
        let value = if self.view.is_zero() {
            leader_determine_safe(&self.cfg, &[], self.view, self.input)
        } else {
            self.regs.suggests_into(self.view, &mut self.scratch_suggests);
            leader_determine_safe(&self.cfg, &self.scratch_suggests, self.view, self.input)
        };
        let Some(value) = value else {
            return false;
        };
        self.proposed = true;
        ctx.broadcast(Message::Proposal { view: self.view, value });
        true
    }

    /// Step 3: vote-1 for a proposal certified safe by Rule 3.
    fn step_vote1(&mut self, ctx: &mut Context<'_, Message, Value>) -> bool {
        if self.book.has_voted_at_or_after(Phase::VOTE1, self.view) {
            return false;
        }
        let Some(value) = self.regs.proposal_of(self.leader(self.view), self.view) else {
            return false;
        };
        let safe = if self.view.is_zero() {
            true
        } else {
            self.regs.proofs_into(self.view, &mut self.scratch_proofs);
            node_determine_safe(&self.cfg, &self.scratch_proofs, self.view, value)
        };
        if !safe {
            return false;
        }
        self.cast(Phase::VOTE1, value, ctx);
        true
    }

    /// Steps 4–6: each vote phase follows a quorum of the previous phase.
    fn step_vote_chain(&mut self, ctx: &mut Context<'_, Message, Value>) -> bool {
        let mut dirty = false;
        for phase in [Phase::VOTE2, Phase::VOTE3, Phase::VOTE4] {
            if self.book.has_voted_at_or_after(phase, self.view) {
                continue;
            }
            let prev = phase.prev().expect("vote-2..4 always have a predecessor");
            let Some(value) = self.quorum_at_current_view(prev) else {
                continue;
            };
            self.cast(phase, value, ctx);
            dirty = true;
        }
        dirty
    }

    /// Step 7: decide on a quorum of vote-4.
    fn step_decide(&mut self, ctx: &mut Context<'_, Message, Value>) -> bool {
        if self.decided.is_some() {
            return false;
        }
        let Some(value) = self.quorum_at_current_view(Phase::VOTE4) else {
            return false;
        };
        self.decided = Some(value);
        ctx.output(value);
        true
    }

    /// The value holding a quorum of latest `phase` votes at the current
    /// view, if any. The default path is an allocation-free lookup in the
    /// registers' incremental tally tables; [`Params::with_hotpath_baseline`]
    /// reroutes it through the allocating `vote_tallies` scan so
    /// `pipeline_hotpath` can measure old-vs-new on the same traffic.
    fn quorum_at_current_view(&self, phase: Phase) -> Option<Value> {
        if self.params.hotpath_baseline() {
            self.regs
                .vote_tallies(phase, self.view)
                .into_iter()
                .find(|(_, count)| self.cfg.is_quorum(*count))
                .map(|(value, _)| value)
        } else {
            self.regs.quorum_value(phase, self.view, self.cfg.quorum())
        }
    }

    fn cast(&mut self, phase: Phase, value: Value, ctx: &mut Context<'_, Message, Value>) {
        self.book.record(phase, self.view, value);
        ctx.broadcast(Message::Vote { phase, view: self.view, value });
    }

    fn on_timeout(&mut self, ctx: &mut Context<'_, Message, Value>) {
        // Ask for the next view (or re-broadcast the highest ask so far —
        // pre-GST losses make retransmission necessary for liveness).
        let target = self.view.next().max(self.vc_sent.unwrap_or(View::ZERO));
        self.vc_sent = Some(target);
        ctx.broadcast(Message::ViewChange { view: target });
        // Re-arm: the view is still stuck, keep escalating/retransmitting.
        ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
    }
}

impl Node for TetraNode {
    type Msg = Message;
    type Output = Value;

    fn handle(&mut self, input: Input<Message>, ctx: &mut Context<'_, Message, Value>) {
        match input {
            Input::Start => {
                ctx.set_timer(VIEW_TIMER, self.params.view_timeout());
                // View 0 needs no suggest/proof phase; the leader proposes
                // its input immediately (all values are safe at view 0).
                self.drive(ctx);
            }
            Input::Deliver { from, msg } => {
                self.regs.record(from, &msg);
                self.drive(ctx);
            }
            Input::Timer { id } if id == VIEW_TIMER => {
                self.on_timeout(ctx);
                self.drive(ctx);
            }
            Input::Timer { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_sim::{LinkPolicy, SimBuilder, Time};

    fn cfg(n: usize) -> Config {
        Config::new(n).unwrap()
    }

    fn honest_sim(n: usize, delta: u64) -> tetrabft_sim::Sim<Message, Value> {
        SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| {
            TetraNode::new(cfg(n), Params::new(delta), id, Value::from_u64(id.0 as u64 + 1))
        })
    }

    #[test]
    fn good_case_decides_in_five_message_delays() {
        // The headline result: proposal + 4 vote phases = 5 delays at view 0.
        for n in [4, 7, 10] {
            let mut sim = honest_sim(n, 100);
            assert!(sim.run_until_outputs(n, 1_000_000), "n={n} must decide");
            for o in sim.outputs() {
                assert_eq!(o.time, Time(5), "n={n}");
                assert_eq!(o.output, Value::from_u64(1), "leader 0's input wins");
            }
        }
    }

    #[test]
    fn agreement_all_nodes_same_value() {
        let mut sim = honest_sim(7, 50);
        assert!(sim.run_until_outputs(7, 1_000_000));
        let first = sim.outputs()[0].output;
        assert!(sim.outputs().iter().all(|o| o.output == first));
    }

    #[test]
    fn validity_unanimous_input_is_decided() {
        let n = 4;
        let mut sim = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(move |id| TetraNode::new(cfg(n), Params::new(100), id, Value::from_u64(42)));
        assert!(sim.run_until_outputs(n, 1_000_000));
        assert!(sim.outputs().iter().all(|o| o.output == Value::from_u64(42)));
    }

    #[test]
    fn single_node_decides_alone() {
        let mut sim = honest_sim(1, 10);
        assert!(sim.run_until_outputs(1, 10_000));
        assert_eq!(sim.outputs()[0].output, Value::from_u64(1));
    }

    #[test]
    fn crashed_leader_forces_view_change_then_decision() {
        let n = 4;
        let mut sim =
            SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id == NodeId(0) {
                    // Leader of view 0 is down.
                    Box::new(tetrabft_sim::SilentNode::new())
                } else {
                    Box::new(TetraNode::new(
                        cfg(n),
                        Params::new(10),
                        id,
                        Value::from_u64(id.0 as u64 + 1),
                    ))
                }
            });
        assert!(sim.run_until_outputs(3, 1_000_000), "must decide in view 1");
        // Decision happens after the 9Δ timeout.
        assert!(sim.outputs()[0].time > Time(90));
        let first = sim.outputs()[0].output;
        assert!(sim.outputs().iter().all(|o| o.output == first));
        // View 1's leader is node 1, so its input (2) is the natural winner.
        assert_eq!(first, Value::from_u64(2));
    }

    #[test]
    fn crashed_follower_does_not_delay_good_case() {
        let n = 4;
        let mut sim =
            SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build_boxed(move |id| {
                if id == NodeId(3) {
                    Box::new(tetrabft_sim::SilentNode::new())
                } else {
                    Box::new(TetraNode::new(cfg(n), Params::new(100), id, Value::from_u64(7)))
                }
            });
        assert!(sim.run_until_outputs(3, 1_000_000));
        assert!(sim.outputs().iter().all(|o| o.time == Time(5)));
    }

    #[test]
    fn pre_gst_loss_is_survived() {
        // Messages are lost until GST=500; with Δ=10 and δ=1 the system
        // recovers via view changes and decides shortly after GST.
        let n = 4;
        let mut sim =
            SimBuilder::new(n).policy(LinkPolicy::partial_synchrony(Time(500), 10, 1)).build(
                move |id| TetraNode::new(cfg(n), Params::new(10), id, Value::from_u64(id.0 as u64)),
            );
        assert!(sim.run_until_outputs(n, 5_000_000), "must decide after GST");
        let first = sim.outputs()[0].output;
        assert!(sim.outputs().iter().all(|o| o.output == first));
        assert!(sim.outputs()[0].time > Time(500));
    }

    #[test]
    fn jittered_network_preserves_agreement() {
        for seed in 0..10 {
            let n = 4;
            let mut sim =
                SimBuilder::new(n).seed(seed).policy(LinkPolicy::jittered(1, 9)).build(move |id| {
                    TetraNode::new(cfg(n), Params::new(20), id, Value::from_u64(id.0 as u64))
                });
            assert!(sim.run_until_outputs(n, 5_000_000), "seed {seed}");
            let first = sim.outputs()[0].output;
            assert!(
                sim.outputs().iter().all(|o| o.output == first),
                "agreement violated at seed {seed}"
            );
        }
    }

    #[test]
    fn persistent_storage_is_constant() {
        let node = TetraNode::new(cfg(4), Params::new(10), NodeId(0), Value::from_u64(0));
        let before = node.persistent_bytes();
        let mut sim =
            SimBuilder::new(4).policy(LinkPolicy::partial_synchrony(Time(300), 10, 1)).build(
                move |id| TetraNode::new(cfg(4), Params::new(10), id, Value::from_u64(id.0 as u64)),
            );
        sim.run_until_outputs(4, 5_000_000);
        // Storage never grew despite many views having executed.
        // (Checked structurally: persistent_bytes is view-independent.)
        let after = TetraNode::new(cfg(4), Params::new(10), NodeId(0), Value::from_u64(0))
            .persistent_bytes();
        assert_eq!(before, after);
    }

    #[test]
    fn communication_is_linear_per_node_in_good_case() {
        // Per node and per view, TetraBFT sends O(n) constant-size messages.
        let bytes_for = |n: usize| {
            let mut sim = honest_sim(n, 100);
            sim.run_until_outputs(n, 10_000_000);
            sim.metrics().max_node_bytes_sent() as f64
        };
        let b10 = bytes_for(10);
        let b40 = bytes_for(40);
        let ratio = b40 / b10;
        assert!(ratio < 8.0, "4x nodes must cost ~4x bytes per node (linear), got ratio {ratio}");
    }
}
