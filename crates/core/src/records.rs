//! Per-peer receive registers — the constant-storage realization of
//! "nodes keep checking … messages" (DESIGN.md §2).
//!
//! For each peer the node stores only the *latest* message of each kind
//! (one slot per vote phase, one for the proposal, one each for
//! suggest/proof, and the highest view-change view). Well-behaved peers send
//! at most one message per kind per view with non-decreasing views, so no
//! information a future view needs is ever lost, while total memory stays
//! O(n) — constant per peer — as the Table 1 storage column requires.

use tetrabft_types::{Config, NodeId, Phase, Value, View, VoteInfo};

use crate::msg::{Message, ProofData, SuggestData};

/// Registers for a single peer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerRecord {
    votes: [Option<VoteInfo>; 4],
    proposal: Option<VoteInfo>,
    suggest: Option<(View, SuggestData)>,
    proof: Option<(View, ProofData)>,
    view_change: Option<View>,
}

impl PeerRecord {
    /// The latest vote received from this peer in `phase`, if any.
    pub fn vote(&self, phase: Phase) -> Option<VoteInfo> {
        self.votes[phase.index()]
    }

    /// The latest proposal received from this peer, if any.
    pub fn proposal(&self) -> Option<VoteInfo> {
        self.proposal
    }

    /// The latest suggest received from this peer, if any.
    pub fn suggest(&self) -> Option<(View, SuggestData)> {
        self.suggest
    }

    /// The latest proof received from this peer, if any.
    pub fn proof(&self) -> Option<(View, ProofData)> {
        self.proof
    }

    /// The highest view-change view received from this peer, if any.
    pub fn view_change(&self) -> Option<View> {
        self.view_change
    }
}

/// Replace `slot` with `(view, payload)` if it is newer.
///
/// Equal-view messages keep the original: an equivocating peer cannot flip a
/// register it already committed for that view, so every later re-evaluation
/// sees a stable snapshot.
fn upsert<T>(slot: &mut Option<(View, T)>, view: View, payload: T) {
    match slot {
        Some((held, _)) if view <= *held => {}
        _ => *slot = Some((view, payload)),
    }
}

/// The register file: one [`PeerRecord`] per peer.
///
/// # Examples
///
/// ```
/// use tetrabft::{Message, Registers};
/// use tetrabft_types::{Config, NodeId, Phase, Value, View};
///
/// let cfg = Config::new(4)?;
/// let mut regs = Registers::new(&cfg);
/// regs.record(NodeId(2), &Message::Vote {
///     phase: Phase::VOTE1,
///     view: View(0),
///     value: Value::from_u64(5),
/// });
/// assert_eq!(regs.count_votes(Phase::VOTE1, View(0), Value::from_u64(5)), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registers {
    peers: Vec<PeerRecord>,
}

impl Registers {
    /// Creates an empty register file for `cfg.n()` peers.
    pub fn new(cfg: &Config) -> Self {
        Registers { peers: vec![PeerRecord::default(); cfg.n()] }
    }

    /// The record of one peer.
    pub fn peer(&self, id: NodeId) -> &PeerRecord {
        &self.peers[id.index()]
    }

    /// Folds `msg` from `from` into the registers.
    ///
    /// Stale messages (older view than the slot already holds) are dropped;
    /// equal-view duplicates keep the first-received copy.
    pub fn record(&mut self, from: NodeId, msg: &Message) {
        let peer = &mut self.peers[from.index()];
        match msg {
            Message::Proposal { view, value } => {
                if peer.proposal.is_none_or(|held| *view > held.view) {
                    peer.proposal = Some(VoteInfo::new(*view, *value));
                }
            }
            Message::Vote { phase, view, value } => {
                let slot = &mut peer.votes[phase.index()];
                if slot.is_none_or(|held| *view > held.view) {
                    *slot = Some(VoteInfo::new(*view, *value));
                }
            }
            Message::Suggest { view, data } => upsert(&mut peer.suggest, *view, *data),
            Message::Proof { view, data } => upsert(&mut peer.proof, *view, *data),
            Message::ViewChange { view } => {
                if peer.view_change.is_none_or(|held| *view > held) {
                    peer.view_change = Some(*view);
                }
            }
        }
    }

    /// Number of peers whose latest `phase` vote is for exactly
    /// `(view, value)`.
    pub fn count_votes(&self, phase: Phase, view: View, value: Value) -> usize {
        self.peers.iter().filter(|p| p.vote(phase) == Some(VoteInfo::new(view, value))).count()
    }

    /// Number of peers whose latest `phase` vote is for `value`, in *any*
    /// view. Multi-shot TetraBFT counts notarization/finality quorums this
    /// way: a vote for a descendant block endorses its ancestors regardless
    /// of the views the ancestors were proposed in (cf. Fig. 3, where votes
    /// at slot 4 / view 0 finalize the block at slot 1 / view 1).
    pub fn count_votes_value(&self, phase: Phase, value: Value) -> usize {
        self.peers.iter().filter(|p| p.vote(phase).is_some_and(|v| v.value == value)).count()
    }

    /// Distinct values voted for in `phase` in *any* view, with counts
    /// (the view-agnostic companion of [`Registers::vote_tallies`]; see
    /// [`Registers::count_votes_value`] for why multi-shot needs this).
    pub fn vote_value_tallies(&self, phase: Phase) -> Vec<(Value, usize)> {
        let mut tallies: Vec<(Value, usize)> = Vec::new();
        for p in &self.peers {
            if let Some(v) = p.vote(phase) {
                match tallies.iter_mut().find(|(val, _)| *val == v.value) {
                    Some((_, c)) => *c += 1,
                    None => tallies.push((v.value, 1)),
                }
            }
        }
        tallies
    }

    /// Distinct values voted for in `phase` at `view`, with counts.
    pub fn vote_tallies(&self, phase: Phase, view: View) -> Vec<(Value, usize)> {
        let mut tallies: Vec<(Value, usize)> = Vec::new();
        for p in &self.peers {
            if let Some(v) = p.vote(phase) {
                if v.view == view {
                    match tallies.iter_mut().find(|(val, _)| *val == v.value) {
                        Some((_, c)) => *c += 1,
                        None => tallies.push((v.value, 1)),
                    }
                }
            }
        }
        tallies
    }

    /// The proposal the leader of `view` made in `view`, if received.
    pub fn proposal_of(&self, leader: NodeId, view: View) -> Option<Value> {
        self.peers[leader.index()].proposal.filter(|p| p.view == view).map(|p| p.value)
    }

    /// All suggest payloads sent for exactly `view`.
    pub fn suggests_at(&self, view: View) -> Vec<SuggestData> {
        self.peers
            .iter()
            .filter_map(|p| p.suggest)
            .filter(|(v, _)| *v == view)
            .map(|(_, d)| d)
            .collect()
    }

    /// All proof payloads sent for exactly `view`.
    pub fn proofs_at(&self, view: View) -> Vec<ProofData> {
        self.peers
            .iter()
            .filter_map(|p| p.proof)
            .filter(|(v, _)| *v == view)
            .map(|(_, d)| d)
            .collect()
    }

    /// Number of peers whose highest view-change is `≥ view` (see DESIGN.md
    /// §2 for why `≥` is the right constant-storage counting rule).
    pub fn view_change_support(&self, view: View) -> usize {
        self.peers.iter().filter(|p| p.view_change.is_some_and(|v| v >= view)).count()
    }

    /// Distinct view-change views strictly greater than `above`, descending.
    pub fn view_change_candidates(&self, above: View) -> Vec<View> {
        let mut views: Vec<View> =
            self.peers.iter().filter_map(|p| p.view_change).filter(|v| *v > above).collect();
        views.sort_unstable();
        views.dedup();
        views.reverse();
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_types::Phase;

    fn cfg() -> Config {
        Config::new(4).unwrap()
    }

    fn vote(phase: Phase, view: u64, value: u64) -> Message {
        Message::Vote { phase, view: View(view), value: Value::from_u64(value) }
    }

    #[test]
    fn newer_votes_replace_older() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(1), &vote(Phase::VOTE1, 0, 5));
        regs.record(NodeId(1), &vote(Phase::VOTE1, 2, 6));
        assert_eq!(
            regs.peer(NodeId(1)).vote(Phase::VOTE1),
            Some(VoteInfo::new(View(2), Value::from_u64(6)))
        );
    }

    #[test]
    fn stale_votes_ignored() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(1), &vote(Phase::VOTE2, 5, 1));
        regs.record(NodeId(1), &vote(Phase::VOTE2, 3, 9));
        assert_eq!(
            regs.peer(NodeId(1)).vote(Phase::VOTE2),
            Some(VoteInfo::new(View(5), Value::from_u64(1)))
        );
    }

    #[test]
    fn equivocation_within_a_view_does_not_flip_the_register() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(3), &vote(Phase::VOTE1, 1, 7));
        regs.record(NodeId(3), &vote(Phase::VOTE1, 1, 8)); // equivocation
        assert_eq!(
            regs.peer(NodeId(3)).vote(Phase::VOTE1),
            Some(VoteInfo::new(View(1), Value::from_u64(7)))
        );
    }

    #[test]
    fn phases_use_independent_slots() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(0), &vote(Phase::VOTE1, 1, 1));
        regs.record(NodeId(0), &vote(Phase::VOTE4, 1, 1));
        assert!(regs.peer(NodeId(0)).vote(Phase::VOTE2).is_none());
        assert!(regs.peer(NodeId(0)).vote(Phase::VOTE1).is_some());
        assert!(regs.peer(NodeId(0)).vote(Phase::VOTE4).is_some());
    }

    #[test]
    fn counting_and_tallies() {
        let mut regs = Registers::new(&cfg());
        for i in 0..3 {
            regs.record(NodeId(i), &vote(Phase::VOTE1, 0, 5));
        }
        regs.record(NodeId(3), &vote(Phase::VOTE1, 0, 6));
        assert_eq!(regs.count_votes(Phase::VOTE1, View(0), Value::from_u64(5)), 3);
        assert_eq!(regs.count_votes(Phase::VOTE1, View(0), Value::from_u64(6)), 1);
        let mut tallies = regs.vote_tallies(Phase::VOTE1, View(0));
        tallies.sort_by_key(|(_, c)| *c);
        assert_eq!(tallies.len(), 2);
        assert_eq!(tallies[1], (Value::from_u64(5), 3));
    }

    #[test]
    fn proposal_filtering_by_view() {
        let mut regs = Registers::new(&cfg());
        let leader = NodeId(1);
        regs.record(leader, &Message::Proposal { view: View(1), value: Value::from_u64(9) });
        assert_eq!(regs.proposal_of(leader, View(1)), Some(Value::from_u64(9)));
        assert_eq!(regs.proposal_of(leader, View(2)), None);
        // A newer proposal replaces the register; the old view query now
        // misses, mirroring "only the current view matters".
        regs.record(leader, &Message::Proposal { view: View(2), value: Value::from_u64(10) });
        assert_eq!(regs.proposal_of(leader, View(2)), Some(Value::from_u64(10)));
        assert_eq!(regs.proposal_of(leader, View(1)), None);
    }

    #[test]
    fn suggest_and_proof_snapshots() {
        let mut regs = Registers::new(&cfg());
        let data = SuggestData::default();
        regs.record(NodeId(0), &Message::Suggest { view: View(2), data });
        regs.record(NodeId(1), &Message::Suggest { view: View(2), data });
        regs.record(NodeId(2), &Message::Suggest { view: View(3), data });
        assert_eq!(regs.suggests_at(View(2)).len(), 2);
        assert_eq!(regs.suggests_at(View(3)).len(), 1);
        assert_eq!(regs.proofs_at(View(2)).len(), 0);
    }

    #[test]
    fn view_change_support_counts_at_or_above() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(0), &Message::ViewChange { view: View(1) });
        regs.record(NodeId(1), &Message::ViewChange { view: View(2) });
        regs.record(NodeId(2), &Message::ViewChange { view: View(5) });
        assert_eq!(regs.view_change_support(View(1)), 3);
        assert_eq!(regs.view_change_support(View(2)), 2);
        assert_eq!(regs.view_change_support(View(5)), 1);
        assert_eq!(regs.view_change_support(View(6)), 0);
        assert_eq!(regs.view_change_candidates(View(1)), vec![View(5), View(2)]);
    }

    #[test]
    fn view_change_register_is_monotone() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(0), &Message::ViewChange { view: View(4) });
        regs.record(NodeId(0), &Message::ViewChange { view: View(2) });
        assert_eq!(regs.peer(NodeId(0)).view_change(), Some(View(4)));
    }
}
