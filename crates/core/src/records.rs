//! Per-peer receive registers — the constant-storage realization of
//! "nodes keep checking … messages" (DESIGN.md §2).
//!
//! For each peer the node stores only the *latest* message of each kind
//! (one slot per vote phase, one for the proposal, one each for
//! suggest/proof, and the highest view-change view). Well-behaved peers send
//! at most one message per kind per view with non-decreasing views, so no
//! information a future view needs is ever lost, while total memory stays
//! O(n) — constant per peer — as the Table 1 storage column requires.

use tetrabft_types::{Config, Evidence, InlineVec, NodeId, Phase, Value, View, VoteInfo};

use crate::msg::{Message, ProofData, SuggestData};

/// Most evidence records a register file retains. One record is enough to
/// convict a node, so the cap only bounds memory against evidence spam;
/// dedup is per `(node, view, phase)` register.
const EVIDENCE_CAP: usize = 64;

fn push_evidence(evidence: &mut Vec<Evidence>, ev: Evidence) {
    let dup =
        evidence.iter().any(|e| e.node == ev.node && e.view == ev.view && e.phase == ev.phase);
    if !dup && evidence.len() < EVIDENCE_CAP {
        evidence.push(ev);
    }
}

/// One tally table: distinct `(view, value)` pairs among the peers' *latest*
/// votes in one phase, with their counts. Latest-vote-per-peer bounds the
/// table at `n` entries; in the good case (one view, one value) it holds a
/// single entry, so the `InlineVec` never spills.
type TallyTable = InlineVec<(View, Value, u32), 4>;

/// Increments the tally for `(view, value)`, inserting it at count 1 if
/// absent.
fn tally_add(table: &mut TallyTable, view: View, value: Value) {
    for i in 0..table.len() {
        let entry = table.get_mut(i).expect("index below len");
        if entry.0 == view && entry.1 == value {
            entry.2 += 1;
            return;
        }
    }
    table.push((view, value, 1));
}

/// Decrements the tally for `(view, value)`, removing the entry at zero so
/// the table tracks only live votes.
fn tally_sub(table: &mut TallyTable, view: View, value: Value) {
    for i in 0..table.len() {
        let entry = table.get_mut(i).expect("index below len");
        if entry.0 == view && entry.1 == value {
            entry.2 -= 1;
            if entry.2 == 0 {
                table.swap_remove(i);
            }
            return;
        }
    }
    debug_assert!(false, "decremented a tally that was never incremented");
}

/// Registers for a single peer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerRecord {
    votes: [Option<VoteInfo>; 4],
    proposal: Option<VoteInfo>,
    suggest: Option<(View, SuggestData)>,
    proof: Option<(View, ProofData)>,
    view_change: Option<View>,
}

impl PeerRecord {
    /// The latest vote received from this peer in `phase`, if any.
    pub fn vote(&self, phase: Phase) -> Option<VoteInfo> {
        self.votes[phase.index()]
    }

    /// The latest proposal received from this peer, if any.
    pub fn proposal(&self) -> Option<VoteInfo> {
        self.proposal
    }

    /// The latest suggest received from this peer, if any.
    pub fn suggest(&self) -> Option<(View, SuggestData)> {
        self.suggest
    }

    /// The latest proof received from this peer, if any.
    pub fn proof(&self) -> Option<(View, ProofData)> {
        self.proof
    }

    /// The highest view-change view received from this peer, if any.
    pub fn view_change(&self) -> Option<View> {
        self.view_change
    }
}

/// Replace `slot` with `(view, payload)` if it is newer.
///
/// Equal-view messages keep the original: an equivocating peer cannot flip a
/// register it already committed for that view, so every later re-evaluation
/// sees a stable snapshot.
fn upsert<T>(slot: &mut Option<(View, T)>, view: View, payload: T) {
    match slot {
        Some((held, _)) if view <= *held => {}
        _ => *slot = Some((view, payload)),
    }
}

/// The register file: one [`PeerRecord`] per peer.
///
/// # Examples
///
/// ```
/// use tetrabft::{Message, Registers};
/// use tetrabft_types::{Config, NodeId, Phase, Value, View};
///
/// let cfg = Config::new(4)?;
/// let mut regs = Registers::new(&cfg);
/// regs.record(NodeId(2), &Message::Vote {
///     phase: Phase::VOTE1,
///     view: View(0),
///     value: Value::from_u64(5),
/// });
/// assert_eq!(regs.count_votes(Phase::VOTE1, View(0), Value::from_u64(5)), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Registers {
    peers: Vec<PeerRecord>,
    /// Per-phase incremental tallies over the peers' latest votes,
    /// maintained by [`Registers::record`] — the precomputed
    /// quorum-threshold tables the model checker's `mc/model.rs` proved out
    /// (its packed-count pass turned minutes into seconds). They make
    /// [`Registers::quorum_value`] / [`Registers::quorum_value_any`] O(distinct
    /// values) lookups with zero allocation, replacing the O(n) re-scan per
    /// engine step of [`Registers::vote_tallies`].
    tallies: [TallyTable; 4],
    /// Equivocation evidence harvested by [`Registers::record`]: a peer that
    /// re-claims a same-view register with a *different* value convicts
    /// itself (channels are authenticated), and the conflicting pair is
    /// retained as an auditable record. Best-effort by design — the
    /// registers keep only the latest view per slot, so conflicts against
    /// already-overwritten views go undetected here (the simulator's
    /// omniscient recorder catches those).
    evidence: Vec<Evidence>,
}

/// Equality is over the peer registers only: the tally tables are a pure
/// function of them (entry *order* varies with arrival history, which must
/// not affect equality), and the evidence log is an audit side-channel, not
/// protocol state.
impl PartialEq for Registers {
    fn eq(&self, other: &Self) -> bool {
        self.peers == other.peers
    }
}

impl Eq for Registers {}

impl Registers {
    /// Creates an empty register file for `cfg.n()` peers.
    pub fn new(cfg: &Config) -> Self {
        Registers {
            peers: vec![PeerRecord::default(); cfg.n()],
            tallies: std::array::from_fn(|_| TallyTable::new()),
            evidence: Vec::new(),
        }
    }

    /// Equivocation evidence harvested while recording, in detection order.
    pub fn evidence(&self) -> &[Evidence] {
        &self.evidence
    }

    /// The record of one peer.
    pub fn peer(&self, id: NodeId) -> &PeerRecord {
        &self.peers[id.index()]
    }

    /// Folds `msg` from `from` into the registers.
    ///
    /// Stale messages (older view than the slot already holds) are dropped;
    /// equal-view duplicates keep the first-received copy.
    pub fn record(&mut self, from: NodeId, msg: &Message) {
        let peer = &mut self.peers[from.index()];
        match msg {
            Message::Proposal { view, value } => {
                if let Some(held) = peer.proposal {
                    if held.view == *view && held.value != *value {
                        push_evidence(
                            &mut self.evidence,
                            Evidence {
                                node: from,
                                slot: None,
                                view: *view,
                                phase: None,
                                first: held.value,
                                second: *value,
                            },
                        );
                    }
                }
                if peer.proposal.is_none_or(|held| *view > held.view) {
                    peer.proposal = Some(VoteInfo::new(*view, *value));
                }
            }
            Message::Vote { phase, view, value } => {
                let slot = &mut peer.votes[phase.index()];
                if let Some(held) = slot {
                    if held.view == *view && held.value != *value {
                        push_evidence(
                            &mut self.evidence,
                            Evidence {
                                node: from,
                                slot: None,
                                view: *view,
                                phase: Some(*phase),
                                first: held.value,
                                second: *value,
                            },
                        );
                    }
                }
                if slot.is_none_or(|held| *view > held.view) {
                    let outgoing = slot.replace(VoteInfo::new(*view, *value));
                    let table = &mut self.tallies[phase.index()];
                    if let Some(old) = outgoing {
                        tally_sub(table, old.view, old.value);
                    }
                    tally_add(table, *view, *value);
                }
            }
            Message::Suggest { view, data } => upsert(&mut peer.suggest, *view, *data),
            Message::Proof { view, data } => upsert(&mut peer.proof, *view, *data),
            Message::ViewChange { view } => {
                if peer.view_change.is_none_or(|held| *view > held) {
                    peer.view_change = Some(*view);
                }
            }
        }
    }

    /// Number of peers whose latest `phase` vote is for exactly
    /// `(view, value)`.
    pub fn count_votes(&self, phase: Phase, view: View, value: Value) -> usize {
        self.peers.iter().filter(|p| p.vote(phase) == Some(VoteInfo::new(view, value))).count()
    }

    /// Number of peers whose latest `phase` vote is for `value`, in *any*
    /// view. Multi-shot TetraBFT counts notarization/finality quorums this
    /// way: a vote for a descendant block endorses its ancestors regardless
    /// of the views the ancestors were proposed in (cf. Fig. 3, where votes
    /// at slot 4 / view 0 finalize the block at slot 1 / view 1).
    pub fn count_votes_value(&self, phase: Phase, value: Value) -> usize {
        self.peers.iter().filter(|p| p.vote(phase).is_some_and(|v| v.value == value)).count()
    }

    /// The value whose latest-vote count in `phase` at exactly `view`
    /// reaches `threshold`, if any — an allocation-free lookup in the
    /// incremental tally table.
    ///
    /// For any blocking-or-larger threshold (`≥ f + 1 > n/3` votes… in fact
    /// any `threshold > n/2`, and quorum is `n − f > 2n/3`) at most one value
    /// can reach it: each peer contributes exactly one latest vote, so two
    /// distinct winners would need `2·threshold ≤ n`. Scan order is
    /// therefore immaterial and the first hit is *the* answer.
    pub fn quorum_value(&self, phase: Phase, view: View, threshold: usize) -> Option<Value> {
        self.tallies[phase.index()]
            .iter()
            .find(|(v, _, c)| *v == view && *c as usize >= threshold)
            .map(|(_, value, _)| *value)
    }

    /// The value whose latest-vote count in `phase` across *all* views
    /// reaches `threshold`, if any (the table-backed, allocation-free
    /// equivalent of scanning [`Registers::vote_value_tallies`]; see
    /// [`Registers::count_votes_value`] for why multi-shot counts quorums
    /// view-agnostically). Uniqueness for majority thresholds holds by the
    /// same argument as [`Registers::quorum_value`].
    pub fn quorum_value_any(&self, phase: Phase, threshold: usize) -> Option<Value> {
        let table = &self.tallies[phase.index()];
        // Per-(view, value) counts fold into per-value counts on the fly:
        // the table holds one entry per distinct pair, ≤ n entries total,
        // and in the good case exactly one.
        for i in 0..table.len() {
            let (_, value, count) = *table.get(i).expect("index below len");
            let mut total = count as usize;
            for j in 0..table.len() {
                let (_, other_value, other_count) = *table.get(j).expect("index below len");
                if j != i && other_value == value {
                    total += other_count as usize;
                }
            }
            if total >= threshold {
                return Some(value);
            }
        }
        None
    }

    /// Distinct values voted for in `phase` in *any* view, with counts
    /// (the view-agnostic companion of [`Registers::vote_tallies`]; see
    /// [`Registers::count_votes_value`] for why multi-shot needs this).
    ///
    /// Allocates its result; the hot path uses
    /// [`Registers::quorum_value_any`] instead. Retained as the
    /// pre-tally-table baseline that `pipeline_hotpath` measures against.
    pub fn vote_value_tallies(&self, phase: Phase) -> Vec<(Value, usize)> {
        let mut tallies: Vec<(Value, usize)> = Vec::new();
        for p in &self.peers {
            if let Some(v) = p.vote(phase) {
                match tallies.iter_mut().find(|(val, _)| *val == v.value) {
                    Some((_, c)) => *c += 1,
                    None => tallies.push((v.value, 1)),
                }
            }
        }
        tallies
    }

    /// Distinct values voted for in `phase` at `view`, with counts.
    ///
    /// Allocates its result and re-scans all peers; the hot path uses
    /// [`Registers::quorum_value`] instead. Retained as the pre-tally-table
    /// baseline that `pipeline_hotpath` measures against.
    pub fn vote_tallies(&self, phase: Phase, view: View) -> Vec<(Value, usize)> {
        let mut tallies: Vec<(Value, usize)> = Vec::new();
        for p in &self.peers {
            if let Some(v) = p.vote(phase) {
                if v.view == view {
                    match tallies.iter_mut().find(|(val, _)| *val == v.value) {
                        Some((_, c)) => *c += 1,
                        None => tallies.push((v.value, 1)),
                    }
                }
            }
        }
        tallies
    }

    /// The proposal the leader of `view` made in `view`, if received.
    pub fn proposal_of(&self, leader: NodeId, view: View) -> Option<Value> {
        self.peers[leader.index()].proposal.filter(|p| p.view == view).map(|p| p.value)
    }

    /// All suggest payloads sent for exactly `view`.
    pub fn suggests_at(&self, view: View) -> Vec<SuggestData> {
        self.peers
            .iter()
            .filter_map(|p| p.suggest)
            .filter(|(v, _)| *v == view)
            .map(|(_, d)| d)
            .collect()
    }

    /// All proof payloads sent for exactly `view`.
    pub fn proofs_at(&self, view: View) -> Vec<ProofData> {
        self.peers
            .iter()
            .filter_map(|p| p.proof)
            .filter(|(v, _)| *v == view)
            .map(|(_, d)| d)
            .collect()
    }

    /// Writes the suggest payloads for exactly `view` into the caller's
    /// scratch buffer (cleared first) — the allocation-free form of
    /// [`Registers::suggests_at`] for callers that re-evaluate every step.
    pub fn suggests_into(&self, view: View, out: &mut Vec<SuggestData>) {
        out.clear();
        out.extend(
            self.peers.iter().filter_map(|p| p.suggest).filter(|(v, _)| *v == view).map(|(_, d)| d),
        );
    }

    /// Writes the proof payloads for exactly `view` into the caller's
    /// scratch buffer (cleared first) — the allocation-free form of
    /// [`Registers::proofs_at`].
    pub fn proofs_into(&self, view: View, out: &mut Vec<ProofData>) {
        out.clear();
        out.extend(
            self.peers.iter().filter_map(|p| p.proof).filter(|(v, _)| *v == view).map(|(_, d)| d),
        );
    }

    /// Number of peers whose highest view-change is `≥ view` (see DESIGN.md
    /// §2 for why `≥` is the right constant-storage counting rule).
    pub fn view_change_support(&self, view: View) -> usize {
        self.peers.iter().filter(|p| p.view_change.is_some_and(|v| v >= view)).count()
    }

    /// Distinct view-change views strictly greater than `above`, descending.
    pub fn view_change_candidates(&self, above: View) -> Vec<View> {
        let mut views: Vec<View> =
            self.peers.iter().filter_map(|p| p.view_change).filter(|v| *v > above).collect();
        views.sort_unstable();
        views.dedup();
        views.reverse();
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_types::Phase;

    fn cfg() -> Config {
        Config::new(4).unwrap()
    }

    fn vote(phase: Phase, view: u64, value: u64) -> Message {
        Message::Vote { phase, view: View(view), value: Value::from_u64(value) }
    }

    #[test]
    fn newer_votes_replace_older() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(1), &vote(Phase::VOTE1, 0, 5));
        regs.record(NodeId(1), &vote(Phase::VOTE1, 2, 6));
        assert_eq!(
            regs.peer(NodeId(1)).vote(Phase::VOTE1),
            Some(VoteInfo::new(View(2), Value::from_u64(6)))
        );
    }

    #[test]
    fn stale_votes_ignored() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(1), &vote(Phase::VOTE2, 5, 1));
        regs.record(NodeId(1), &vote(Phase::VOTE2, 3, 9));
        assert_eq!(
            regs.peer(NodeId(1)).vote(Phase::VOTE2),
            Some(VoteInfo::new(View(5), Value::from_u64(1)))
        );
    }

    #[test]
    fn equivocation_within_a_view_does_not_flip_the_register() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(3), &vote(Phase::VOTE1, 1, 7));
        regs.record(NodeId(3), &vote(Phase::VOTE1, 1, 8)); // equivocation
        assert_eq!(
            regs.peer(NodeId(3)).vote(Phase::VOTE1),
            Some(VoteInfo::new(View(1), Value::from_u64(7)))
        );
    }

    #[test]
    fn phases_use_independent_slots() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(0), &vote(Phase::VOTE1, 1, 1));
        regs.record(NodeId(0), &vote(Phase::VOTE4, 1, 1));
        assert!(regs.peer(NodeId(0)).vote(Phase::VOTE2).is_none());
        assert!(regs.peer(NodeId(0)).vote(Phase::VOTE1).is_some());
        assert!(regs.peer(NodeId(0)).vote(Phase::VOTE4).is_some());
    }

    #[test]
    fn counting_and_tallies() {
        let mut regs = Registers::new(&cfg());
        for i in 0..3 {
            regs.record(NodeId(i), &vote(Phase::VOTE1, 0, 5));
        }
        regs.record(NodeId(3), &vote(Phase::VOTE1, 0, 6));
        assert_eq!(regs.count_votes(Phase::VOTE1, View(0), Value::from_u64(5)), 3);
        assert_eq!(regs.count_votes(Phase::VOTE1, View(0), Value::from_u64(6)), 1);
        let mut tallies = regs.vote_tallies(Phase::VOTE1, View(0));
        tallies.sort_by_key(|(_, c)| *c);
        assert_eq!(tallies.len(), 2);
        assert_eq!(tallies[1], (Value::from_u64(5), 3));
    }

    #[test]
    fn proposal_filtering_by_view() {
        let mut regs = Registers::new(&cfg());
        let leader = NodeId(1);
        regs.record(leader, &Message::Proposal { view: View(1), value: Value::from_u64(9) });
        assert_eq!(regs.proposal_of(leader, View(1)), Some(Value::from_u64(9)));
        assert_eq!(regs.proposal_of(leader, View(2)), None);
        // A newer proposal replaces the register; the old view query now
        // misses, mirroring "only the current view matters".
        regs.record(leader, &Message::Proposal { view: View(2), value: Value::from_u64(10) });
        assert_eq!(regs.proposal_of(leader, View(2)), Some(Value::from_u64(10)));
        assert_eq!(regs.proposal_of(leader, View(1)), None);
    }

    #[test]
    fn suggest_and_proof_snapshots() {
        let mut regs = Registers::new(&cfg());
        let data = SuggestData::default();
        regs.record(NodeId(0), &Message::Suggest { view: View(2), data });
        regs.record(NodeId(1), &Message::Suggest { view: View(2), data });
        regs.record(NodeId(2), &Message::Suggest { view: View(3), data });
        assert_eq!(regs.suggests_at(View(2)).len(), 2);
        assert_eq!(regs.suggests_at(View(3)).len(), 1);
        assert_eq!(regs.proofs_at(View(2)).len(), 0);
    }

    #[test]
    fn view_change_support_counts_at_or_above() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(0), &Message::ViewChange { view: View(1) });
        regs.record(NodeId(1), &Message::ViewChange { view: View(2) });
        regs.record(NodeId(2), &Message::ViewChange { view: View(5) });
        assert_eq!(regs.view_change_support(View(1)), 3);
        assert_eq!(regs.view_change_support(View(2)), 2);
        assert_eq!(regs.view_change_support(View(5)), 1);
        assert_eq!(regs.view_change_support(View(6)), 0);
        assert_eq!(regs.view_change_candidates(View(1)), vec![View(5), View(2)]);
    }

    /// The incremental tally table must agree with a fresh peer scan after
    /// any history of replacements, equivocations, and stale votes.
    #[test]
    fn tally_table_matches_scan_after_replacements() {
        let cfg = Config::new(7).unwrap();
        let mut regs = Registers::new(&cfg);
        // A messy but deterministic vote history: every peer revotes across
        // views and phases, switching values, with stale and duplicate
        // messages sprinkled in.
        for round in 0..5u64 {
            for i in 0..7u64 {
                let phase = Phase::ALL[(round as usize + i as usize) % 4];
                regs.record(NodeId(i as u16), &vote(phase, round + i % 3, (round + i) % 4));
                // Stale re-delivery: must not perturb the tables.
                regs.record(NodeId(i as u16), &vote(phase, round / 2, 99));
            }
        }
        let q = cfg.quorum();
        for phase in Phase::ALL {
            // View-agnostic: table lookup agrees with the scan-based tally.
            let by_scan = regs
                .vote_value_tallies(phase)
                .into_iter()
                .find(|(_, c)| *c >= q)
                .map(|(value, _)| value);
            assert_eq!(regs.quorum_value_any(phase, q), by_scan, "{phase:?} any-view");
            // Per-view, over every view that appeared.
            for view in 0..8u64 {
                let by_scan = regs
                    .vote_tallies(phase, View(view))
                    .into_iter()
                    .find(|(_, c)| *c >= q)
                    .map(|(value, _)| value);
                assert_eq!(regs.quorum_value(phase, View(view), q), by_scan, "{phase:?} v{view}");
            }
        }
    }

    #[test]
    fn quorum_value_finds_the_unique_winner() {
        let mut regs = Registers::new(&cfg());
        for i in 0..3 {
            regs.record(NodeId(i), &vote(Phase::VOTE1, 2, 5));
        }
        regs.record(NodeId(3), &vote(Phase::VOTE1, 2, 6));
        assert_eq!(regs.quorum_value(Phase::VOTE1, View(2), 3), Some(Value::from_u64(5)));
        assert_eq!(regs.quorum_value(Phase::VOTE1, View(1), 3), None, "wrong view");
        assert_eq!(regs.quorum_value(Phase::VOTE2, View(2), 3), None, "wrong phase");
        assert_eq!(regs.quorum_value(Phase::VOTE1, View(2), 4), None, "threshold unmet");
    }

    #[test]
    fn quorum_value_any_sums_across_views() {
        let mut regs = Registers::new(&cfg());
        // Three peers back value 7, but in different views — the multi-shot
        // counting rule (count_votes_value) must still see a quorum.
        regs.record(NodeId(0), &vote(Phase::VOTE4, 1, 7));
        regs.record(NodeId(1), &vote(Phase::VOTE4, 2, 7));
        regs.record(NodeId(2), &vote(Phase::VOTE4, 3, 7));
        assert_eq!(regs.quorum_value_any(Phase::VOTE4, 3), Some(Value::from_u64(7)));
        assert_eq!(regs.quorum_value(Phase::VOTE4, View(1), 3), None, "no single view has 3");
    }

    #[test]
    fn scratch_filling_suggest_and_proof_queries_match_allocating_ones() {
        let mut regs = Registers::new(&cfg());
        let data = SuggestData::default();
        regs.record(NodeId(0), &Message::Suggest { view: View(2), data });
        regs.record(NodeId(1), &Message::Suggest { view: View(2), data });
        regs.record(NodeId(2), &Message::Proof { view: View(2), data: ProofData::default() });
        let mut scratch_s = vec![SuggestData::default(); 7]; // stale junk: must be cleared
        regs.suggests_into(View(2), &mut scratch_s);
        assert_eq!(scratch_s, regs.suggests_at(View(2)));
        let mut scratch_p = Vec::new();
        regs.proofs_into(View(2), &mut scratch_p);
        assert_eq!(scratch_p, regs.proofs_at(View(2)));
        regs.proofs_into(View(9), &mut scratch_p);
        assert!(scratch_p.is_empty());
    }

    #[test]
    fn equality_ignores_tally_entry_order() {
        // Same final registers via different arrival orders: the tally
        // tables' internal entry order differs, equality must not.
        let mut a = Registers::new(&cfg());
        let mut b = Registers::new(&cfg());
        a.record(NodeId(0), &vote(Phase::VOTE1, 1, 5));
        a.record(NodeId(1), &vote(Phase::VOTE1, 1, 6));
        b.record(NodeId(1), &vote(Phase::VOTE1, 1, 6));
        b.record(NodeId(0), &vote(Phase::VOTE1, 1, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn equivocation_yields_named_evidence() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(3), &vote(Phase::VOTE1, 7, 1));
        regs.record(NodeId(3), &vote(Phase::VOTE1, 7, 2));
        regs.record(NodeId(3), &vote(Phase::VOTE1, 7, 3)); // same register: deduped
        let ev = regs.evidence();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].node, NodeId(3));
        assert_eq!(ev[0].view, View(7));
        assert_eq!(ev[0].phase, Some(Phase::VOTE1));
        assert_eq!((ev[0].first, ev[0].second), (Value::from_u64(1), Value::from_u64(2)));
        assert!(ev[0].to_string().contains("node 3 voted both"), "{}", ev[0]);
        // A proposer equivocating in one view is evidence too (phase None).
        regs.record(NodeId(1), &Message::Proposal { view: View(2), value: Value::from_u64(8) });
        regs.record(NodeId(1), &Message::Proposal { view: View(2), value: Value::from_u64(9) });
        assert_eq!(regs.evidence().len(), 2);
        assert!(regs.evidence()[1].phase.is_none());
        // Honest re-votes across views never convict.
        regs.record(NodeId(0), &vote(Phase::VOTE2, 1, 5));
        regs.record(NodeId(0), &vote(Phase::VOTE2, 2, 6));
        assert_eq!(regs.evidence().len(), 2);
    }

    #[test]
    fn view_change_register_is_monotone() {
        let mut regs = Registers::new(&cfg());
        regs.record(NodeId(0), &Message::ViewChange { view: View(4) });
        regs.record(NodeId(0), &Message::ViewChange { view: View(2) });
        assert_eq!(regs.peer(NodeId(0)).view_change(), Some(View(4)));
    }
}
