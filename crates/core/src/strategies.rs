//! Byzantine strategies for Basic TetraBFT, used by the safety test suite,
//! the Byzantine-lab example and the benchmarks.
//!
//! Each strategy is a [`tetrabft_sim::Node`] speaking the TetraBFT
//! [`Message`] type but deviating from the protocol. Safety tests assert
//! that **agreement holds regardless** of what these actors do, as long as
//! at most `f` of them are placed in the system.

use tetrabft_sim::{Context, Input, Node};
use tetrabft_types::{Config, Phase, Value, View, VoteInfo};

use crate::msg::{Message, ProofData, SuggestData};

/// A leader that equivocates at view 0: proposes value `a` to the first half
/// of the nodes and value `b` to the rest, then (optionally) keeps voting
/// for both sides.
///
/// This is the classic split-vote attack; TetraBFT's quorum intersection
/// must prevent both halves from deciding differently.
#[derive(Debug, Clone)]
pub struct EquivocatingLeader {
    cfg: Config,
    a: Value,
    b: Value,
    /// Also send conflicting vote-1..4 to the two halves.
    pub vote_both_ways: bool,
}

impl EquivocatingLeader {
    /// Creates the attacker with the two values it will push.
    pub fn new(cfg: Config, a: Value, b: Value) -> Self {
        EquivocatingLeader { cfg, a, b, vote_both_ways: true }
    }

    fn split_send(&self, ctx: &mut Context<'_, Message, Value>, make: impl Fn(Value) -> Message) {
        let half = self.cfg.n() / 2;
        for node in self.cfg.nodes() {
            let value = if node.index() < half { self.a } else { self.b };
            ctx.send(node, make(value));
        }
    }
}

impl Node for EquivocatingLeader {
    type Msg = Message;
    type Output = Value;

    fn handle(&mut self, input: Input<Message>, ctx: &mut Context<'_, Message, Value>) {
        // Plant the split at startup; stay silent afterwards.
        if let Input::Start = input {
            self.split_send(ctx, |value| Message::Proposal { view: View::ZERO, value });
            if self.vote_both_ways {
                for phase in Phase::ALL {
                    self.split_send(ctx, |value| Message::Vote { phase, view: View::ZERO, value });
                }
            }
        }
    }
}

/// A node that echoes every vote phase for *every* value it has seen, in
/// every view it hears about — maximal vote amplification.
#[derive(Debug, Clone)]
pub struct VoteAmplifier {
    seen: Vec<(View, Value)>,
}

impl VoteAmplifier {
    /// Creates the amplifier.
    pub fn new() -> Self {
        VoteAmplifier { seen: Vec::new() }
    }
}

impl Default for VoteAmplifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for VoteAmplifier {
    type Msg = Message;
    type Output = Value;

    fn handle(&mut self, input: Input<Message>, ctx: &mut Context<'_, Message, Value>) {
        let Input::Deliver { from, msg } = input else { return };
        if from == ctx.me() {
            return; // never react to our own loopback — avoids self-storms
        }
        let (view, value) = match msg {
            Message::Proposal { view, value } | Message::Vote { view, value, .. } => (view, value),
            _ => return,
        };
        if self.seen.contains(&(view, value)) {
            return;
        }
        // Bound the attacker's own memory so long adversarial runs don't
        // degenerate; 64 distinct (view, value) pairs is plenty of chaos.
        if self.seen.len() >= 64 {
            self.seen.remove(0);
        }
        self.seen.push((view, value));
        for phase in Phase::ALL {
            ctx.broadcast(Message::Vote { phase, view, value });
        }
    }
}

/// A node that answers every view entry with maximally misleading
/// suggest/proof payloads: it fabricates high-view votes for `poison`,
/// trying to trick leaders and voters into certifying it.
#[derive(Debug, Clone)]
pub struct LyingHistorian {
    cfg: Config,
    poison: Value,
    answered_up_to: Option<View>,
}

impl LyingHistorian {
    /// Creates the liar pushing `poison`.
    pub fn new(cfg: Config, poison: Value) -> Self {
        LyingHistorian { cfg, poison, answered_up_to: None }
    }
}

impl Node for LyingHistorian {
    type Msg = Message;
    type Output = Value;

    fn handle(&mut self, input: Input<Message>, ctx: &mut Context<'_, Message, Value>) {
        let Input::Deliver { from, msg } = input else { return };
        if from == ctx.me() {
            return; // never react to our own loopback — avoids self-storms
        }
        // Whenever anyone view-changes, flood fabricated history for the
        // target view (once per view).
        if let Message::ViewChange { view } = msg {
            if self.answered_up_to.is_some_and(|v| view <= v) {
                return;
            }
            self.answered_up_to = Some(view);
            let fake = Some(VoteInfo::new(View(view.0.saturating_sub(1)), self.poison));
            ctx.broadcast(Message::Proof {
                view,
                data: ProofData { vote1: fake, prev_vote1: None, vote4: fake },
            });
            ctx.send(
                self.cfg.leader_of(view),
                Message::Suggest {
                    view,
                    data: SuggestData { vote2: fake, prev_vote2: None, vote3: fake },
                },
            );
            ctx.broadcast(Message::ViewChange { view });
        }
    }
}

/// A node that joins the protocol honestly for `views`, then goes silent —
/// models a crash mid-protocol (the vote book it leaves behind still
/// constrains future views through other nodes' records of its votes).
#[derive(Debug)]
pub struct LateCrash {
    inner: crate::TetraNode,
    crash_after: View,
}

impl LateCrash {
    /// Wraps an honest node that stops participating after `crash_after`.
    pub fn new(inner: crate::TetraNode, crash_after: View) -> Self {
        LateCrash { inner, crash_after }
    }
}

impl Node for LateCrash {
    type Msg = Message;
    type Output = Value;

    fn handle(&mut self, input: Input<Message>, ctx: &mut Context<'_, Message, Value>) {
        if self.inner.view() > self.crash_after {
            return;
        }
        self.inner.handle(input, ctx);
    }
}

/// A node that replays every message it receives back into the network a
/// view late, stressing the stale-message handling of the registers.
#[derive(Debug, Clone, Default)]
pub struct StaleReplayer;

impl Node for StaleReplayer {
    type Msg = Message;
    type Output = Value;

    fn handle(&mut self, input: Input<Message>, ctx: &mut Context<'_, Message, Value>) {
        let Input::Deliver { from, msg } = input else { return };
        if from == ctx.me() {
            return; // never react to our own loopback — avoids self-storms
        }
        // Replay votes shifted one view down (stale) and one view up
        // (premature), both of which honest registers must tolerate.
        if let Message::Vote { phase, view, value } = msg {
            if let Some(prev) = view.prev() {
                ctx.broadcast(Message::Vote { phase, view: prev, value });
            }
            ctx.broadcast(Message::Vote { phase, view: view.next(), value });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, TetraNode};
    use tetrabft_sim::{LinkPolicy, SimBuilder};
    use tetrabft_types::NodeId;

    fn cfg(n: usize) -> Config {
        Config::new(n).unwrap()
    }

    /// Runs n=4 with one Byzantine node at position 0 (leader of view 0)
    /// and asserts agreement among the three honest nodes.
    fn assert_agreement_with(byz: impl Fn(Config) -> Box<dyn Node<Msg = Message, Output = Value>>) {
        for seed in 0..5 {
            let n = 4;
            let mut sim = SimBuilder::new(n)
                .seed(seed)
                .policy(LinkPolicy::jittered(1, 4))
                .build_boxed(|id| {
                    if id == NodeId(0) {
                        byz(cfg(4))
                    } else {
                        Box::new(TetraNode::new(
                            cfg(4),
                            Params::new(20),
                            id,
                            Value::from_u64(100 + id.0 as u64),
                        ))
                    }
                });
            assert!(sim.run_until_outputs(3, 10_000_000), "honest nodes must decide (seed {seed})");
            let first = sim.outputs()[0].output;
            assert!(
                sim.outputs().iter().all(|o| o.output == first),
                "agreement violated (seed {seed})"
            );
        }
    }

    #[test]
    fn equivocating_leader_cannot_split_agreement() {
        assert_agreement_with(|cfg| {
            Box::new(EquivocatingLeader::new(cfg, Value::from_u64(1), Value::from_u64(2)))
        });
    }

    #[test]
    fn vote_amplifier_cannot_break_agreement() {
        assert_agreement_with(|_| Box::new(VoteAmplifier::new()));
    }

    #[test]
    fn lying_historian_cannot_break_agreement() {
        assert_agreement_with(|cfg| Box::new(LyingHistorian::new(cfg, Value::from_u64(666))));
    }

    #[test]
    fn stale_replayer_cannot_break_agreement() {
        assert_agreement_with(|_| Box::new(StaleReplayer));
    }

    #[test]
    fn late_crash_cannot_break_agreement() {
        assert_agreement_with(|cfg| {
            Box::new(LateCrash::new(
                TetraNode::new(cfg, Params::new(20), NodeId(0), Value::from_u64(5)),
                View(0),
            ))
        });
    }
}
