//! Safe-value determination: Rules 1–4 of the paper, implemented as the
//! efficient helper algorithms of Section 3.3 / Appendix A.
//!
//! * [`claims_safe`] — Algorithm 1 (`node_claim_safe`), the shared predicate
//!   behind Rule 2 (suggest messages) and Rule 4 (proof messages);
//! * [`leader_determine_safe`] — Algorithm 4: a leader selects a value that
//!   is safe to propose in view `v` from a quorum of suggest messages
//!   (Rule 1);
//! * [`node_determine_safe`] — Algorithm 5: a follower validates the
//!   leader's proposal from a quorum of proof messages (Rule 3).
//!
//! All three functions are pure; they see only message payloads, never node
//! state, which makes them unit-testable, property-testable and directly
//! benchmarkable (the `rules_scaling` bench confirms the paper's
//! `O(v · m · n)` complexity claim).
//!
//! One deliberate deviation from the pseudocode, recorded in DESIGN.md §6:
//! Algorithm 4's skip heuristic (line 19) counts a suggest toward view `v'`
//! when `vote2.view ≥ v'` **or** `prev_vote2.view ≥ v'`. The paper's
//! pseudocode buckets a suggest carrying both fields only under
//! `prev_vote2.view`, which undercounts (a suggest with `vote2.view ≥ v' >
//! prev_vote2.view` can still claim its `vote2` value safe at `v'` via
//! Rule 2 item 2) and could delay a proposal the rule itself allows. The
//! corrected skip is a pure optimization: it never changes the decision,
//! only avoids scanning views where no blocking set can exist.

use tetrabft_types::{Config, Value, View, VoteInfo};

use crate::msg::{ProofData, SuggestData};

/// Algorithm 1 (`node_claim_safe`): does a suggest/proof payload claim that
/// `value` is safe at view `at`?
///
/// `vote` is the sender's highest `vote-2` (suggest) or `vote-1` (proof);
/// `prev` the corresponding second-highest different-valued vote. The claim
/// holds when (Rule 2 / Rule 4):
///
/// 1. `at` is view 0, or
/// 2. `vote.view ≥ at` and `vote.value == value`, or
/// 3. `prev.view ≥ at`.
///
/// # Examples
///
/// ```
/// use tetrabft::rules::claims_safe;
/// use tetrabft_types::{Value, View, VoteInfo};
///
/// let vote = Some(VoteInfo::new(View(5), Value::from_u64(1)));
/// assert!(claims_safe(vote, None, View(3), Value::from_u64(1)));
/// assert!(!claims_safe(vote, None, View(3), Value::from_u64(2)));
/// assert!(claims_safe(None, None, View(0), Value::from_u64(2)));
/// ```
pub fn claims_safe(vote: Option<VoteInfo>, prev: Option<VoteInfo>, at: View, value: Value) -> bool {
    if at.is_zero() {
        return true;
    }
    if vote.is_some_and(|v| v.view >= at && v.value == value) {
        return true;
    }
    prev.is_some_and(|p| p.view >= at)
}

/// Algorithm 4: from the suggest payloads received in view `view`, determine
/// a value that is safe to propose (Rule 1).
///
/// Returns `Some(value)` as soon as a safe value is certified; `None` means
/// "wait for more suggests" (Lemma 2 guarantees success once a quorum
/// containing every well-behaved node has reported). At view 0 every value
/// is safe, so the leader's own `default` (its input value) is returned.
///
/// `default` is also proposed when Rule 1 item 2a applies (no quorum member
/// ever sent a `vote-3`) or when a back-tracked view `v'` constrains nothing
/// (no `vote-3` at `v'` at all and a blocking set claims safety via Rule 2
/// item 3) — the paper's "should the leader determine that arbitrary values
/// are safe … it will propose its initial value by default".
pub fn leader_determine_safe(
    cfg: &Config,
    suggests: &[SuggestData],
    view: View,
    default: Value,
) -> Option<Value> {
    if view.is_zero() {
        return Some(default);
    }
    if suggests.len() < cfg.quorum() {
        return None;
    }

    // Rule 1 item 2a: a quorum never sent any vote-3.
    let no_vote3 = suggests.iter().filter(|s| s.vote3.is_none()).count();
    if cfg.is_quorum(no_vote3) {
        return Some(default);
    }

    // Rule 1 item 2b: back-track from view-1 to 0 looking for the pivot v'.
    for vp in (0..view.0).rev().map(View) {
        // Skip heuristic (Algorithm 4 line 19, corrected — see module docs):
        // a blocking set claiming anything at vp > 0 needs f+1 suggests whose
        // highest vote-2 (or its different-valued predecessor) reaches vp.
        if !vp.is_zero() {
            let claimable = suggests
                .iter()
                .filter(|s| {
                    s.vote2.is_some_and(|v| v.view >= vp)
                        || s.prev_vote2.is_some_and(|p| p.view >= vp)
                })
                .count();
            if !cfg.is_blocking(claimable) {
                continue;
            }
        }

        for value in candidate_values(suggests, vp, default) {
            let mut quorum_num = 0usize;
            let mut blocking_num = 0usize;
            for s in suggests {
                // Rule 1 items 2(b)i + 2(b)ii, evaluated per suggest: the
                // sender's last vote-3 is below vp, or at vp with `value`.
                let in_quorum = match s.vote3 {
                    None => true,
                    Some(v3) => v3.view < vp || (v3.view == vp && v3.value == value),
                };
                if in_quorum {
                    quorum_num += 1;
                }
                // Rule 1 item 2(b)iii via Rule 2.
                if claims_safe(s.vote2, s.prev_vote2, vp, value) {
                    blocking_num += 1;
                }
            }
            if cfg.is_quorum(quorum_num) && cfg.is_blocking(blocking_num) {
                return Some(value);
            }
        }
    }
    None
}

/// Candidate values worth testing at pivot view `vp`: every reported
/// `vote-3` value, every `vote-2` value still claimable at `vp`, and the
/// leader's default (covering the unconstrained case). `m = O(n)` values,
/// preserving the paper's `O(v·m·n)` complexity.
fn candidate_values(suggests: &[SuggestData], vp: View, default: Value) -> Vec<Value> {
    let mut out = Vec::with_capacity(suggests.len() + 1);
    let mut push = |v: Value| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    for s in suggests {
        if let Some(v3) = s.vote3 {
            push(v3.value);
        }
        if let Some(v2) = s.vote2 {
            if v2.view >= vp {
                push(v2.value);
            }
        }
    }
    push(default);
    out
}

/// Algorithm 5: from the proof payloads received in view `view`, decide
/// whether the leader's proposal `value` is safe to vote for (Rule 3).
///
/// Returns `false` to mean "not yet certifiable from these proofs" — more
/// proofs may arrive and flip the answer (Lemma 4 guarantees it flips once
/// every well-behaved proof is in, when the leader is well-behaved).
pub fn node_determine_safe(cfg: &Config, proofs: &[ProofData], view: View, value: Value) -> bool {
    if view.is_zero() {
        return true;
    }
    if proofs.len() < cfg.quorum() {
        return false;
    }

    // Rule 3 item 2a: a quorum never sent any vote-4.
    let no_vote4 = proofs.iter().filter(|p| p.vote4.is_none()).count();
    if cfg.is_quorum(no_vote4) {
        return true;
    }

    // Rule 3 item 2(b)iiiA: back-track for a pivot v' where a blocking set
    // directly claims `value` safe.
    for vp in (0..view.0).rev().map(View) {
        let mut quorum_num = 0usize;
        let mut blocking_num = 0usize;
        for p in proofs {
            if vote4_quorum_ok(p, vp, value) {
                quorum_num += 1;
            }
            if claims_safe(p.vote1, p.prev_vote1, vp, value) {
                blocking_num += 1;
            }
        }
        if cfg.is_quorum(quorum_num) && cfg.is_blocking(blocking_num) {
            return true;
        }
    }

    // Rule 3 item 2(b)iiiB: two blocking sets claim two *different* values
    // safe at views ṽ < ṽ' < view; with v' = ṽ the vote-4 quorum condition
    // must hold, and both blocking sets must lie inside that quorum.
    let claims = blocking_claims(cfg, proofs, view, value);
    for (i, (v_lo, val_lo, set_lo)) in claims.iter().enumerate() {
        for (v_hi, val_hi, set_hi) in claims.iter().skip(i + 1).chain(claims.iter().take(i)) {
            if !(v_lo < v_hi && val_lo != val_hi) {
                continue;
            }
            // Quorum at v' = v_lo for the proposal value.
            let quorum: Vec<bool> =
                proofs.iter().map(|p| vote4_quorum_ok(p, *v_lo, value)).collect();
            let quorum_num = quorum.iter().filter(|b| **b).count();
            if !cfg.is_quorum(quorum_num) {
                continue;
            }
            let lo_inside = overlap(set_lo, &quorum);
            let hi_inside = overlap(set_hi, &quorum);
            if cfg.is_blocking(lo_inside) && cfg.is_blocking(hi_inside) {
                return true;
            }
        }
    }
    false
}

/// Rule 3 items 2(b)i + 2(b)ii for one proof at pivot `vp`: the sender's
/// last vote-4 is below `vp`, or at `vp` with the proposal `value`.
fn vote4_quorum_ok(p: &ProofData, vp: View, value: Value) -> bool {
    match p.vote4 {
        None => true,
        Some(v4) => v4.view < vp || (v4.view == vp && v4.value == value),
    }
}

/// All `(view, value, claimer-mask)` triples below `view` where at least a
/// blocking set of proofs claims `value` safe at `view` (Rule 4). Candidate
/// values come from the proofs' vote-1 records plus the proposal value.
fn blocking_claims(
    cfg: &Config,
    proofs: &[ProofData],
    view: View,
    proposal: Value,
) -> Vec<(View, Value, Vec<bool>)> {
    let mut values: Vec<Value> = Vec::new();
    let mut push = |v: Value| {
        if !values.contains(&v) {
            values.push(v);
        }
    };
    for p in proofs {
        if let Some(v1) = p.vote1 {
            push(v1.value);
        }
        if let Some(pv) = p.prev_vote1 {
            push(pv.value);
        }
    }
    push(proposal);

    let mut out = Vec::new();
    for vp in (0..view.0).map(View) {
        for &value in &values {
            let mask: Vec<bool> =
                proofs.iter().map(|p| claims_safe(p.vote1, p.prev_vote1, vp, value)).collect();
            let count = mask.iter().filter(|b| **b).count();
            if cfg.is_blocking(count) {
                out.push((vp, value, mask));
            }
        }
    }
    out
}

fn overlap(a: &[bool], b: &[bool]) -> usize {
    a.iter().zip(b).filter(|(x, y)| **x && **y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> Config {
        Config::new(4).unwrap()
    }

    fn vi(view: u64, value: u64) -> Option<VoteInfo> {
        Some(VoteInfo::new(View(view), Value::from_u64(value)))
    }

    fn val(v: u64) -> Value {
        Value::from_u64(v)
    }

    // ---- Algorithm 1 ----------------------------------------------------

    #[test]
    fn claim_view_zero_is_universal() {
        assert!(claims_safe(None, None, View(0), val(1)));
        assert!(claims_safe(vi(3, 2), vi(1, 9), View(0), val(77)));
    }

    #[test]
    fn claim_via_matching_highest_vote() {
        assert!(claims_safe(vi(5, 1), None, View(5), val(1)));
        assert!(claims_safe(vi(5, 1), None, View(2), val(1)));
        assert!(!claims_safe(vi(5, 1), None, View(6), val(1)), "vote too old");
        assert!(!claims_safe(vi(5, 1), None, View(5), val(2)), "value mismatch");
    }

    #[test]
    fn claim_via_prev_vote_ignores_value() {
        assert!(claims_safe(vi(5, 1), vi(3, 2), View(3), val(42)));
        assert!(!claims_safe(vi(5, 1), vi(3, 2), View(4), val(42)));
        assert!(!claims_safe(None, None, View(1), val(1)));
    }

    // ---- Algorithm 4 (Rule 1) -------------------------------------------

    #[test]
    fn leader_view_zero_proposes_default() {
        assert_eq!(leader_determine_safe(&cfg4(), &[], View(0), val(9)), Some(val(9)));
    }

    #[test]
    fn leader_needs_a_quorum_of_suggests() {
        let s = SuggestData::default();
        assert_eq!(leader_determine_safe(&cfg4(), &[s, s], View(1), val(9)), None);
    }

    #[test]
    fn leader_rule_2a_fresh_system() {
        // Quorum reports no vote-3 ever: any value (the default) is safe.
        let s = SuggestData::default();
        assert_eq!(leader_determine_safe(&cfg4(), &[s, s, s], View(1), val(9)), Some(val(9)));
    }

    #[test]
    fn leader_adopts_possibly_decided_value() {
        // One quorum member voted vote-3 for A in view 0 (so A may have been
        // decided); a blocking set's vote-2 records claim A safe at view 0.
        let voted = SuggestData { vote2: vi(0, 0xA), prev_vote2: None, vote3: vi(0, 0xA) };
        let witness = SuggestData { vote2: vi(0, 0xA), prev_vote2: None, vote3: None };
        let fresh = SuggestData::default();
        assert_eq!(
            leader_determine_safe(&cfg4(), &[voted, witness, fresh], View(1), val(9)),
            Some(val(0xA))
        );
    }

    #[test]
    fn leader_prefers_latest_vote3_pivot() {
        // vote-3 for A at view 1 and for B at view 3; the pivot must be the
        // later view 3 (Rule 1 2(b)i) so B is the only proposable value.
        let a = SuggestData { vote2: vi(1, 0xA), prev_vote2: None, vote3: vi(1, 0xA) };
        let b = SuggestData { vote2: vi(3, 0xB), prev_vote2: None, vote3: vi(3, 0xB) };
        let w = SuggestData { vote2: vi(3, 0xB), prev_vote2: None, vote3: None };
        let got = leader_determine_safe(&cfg4(), &[a, b, w], View(4), val(9));
        assert_eq!(got, Some(val(0xB)));
    }

    #[test]
    fn leader_blocked_without_blocking_set() {
        // A vote-3 for A exists but only one suggest (not f+1 = 2) claims A
        // safe — the leader must keep waiting.
        let voted = SuggestData { vote2: vi(2, 0xA), prev_vote2: None, vote3: vi(2, 0xA) };
        let blind1 = SuggestData { vote2: vi(1, 0xB), prev_vote2: None, vote3: None };
        let blind2 = SuggestData { vote2: vi(1, 0xB), prev_vote2: None, vote3: None };
        // At pivot 2: quorum ok (others' vote3 None), but claimers of A = 1.
        // At pivot 1: quorum fails for B (A's vote3 at 2 ≥ 1... actually
        // vote3.view=2 > 1 violates 2(b)i), so nothing is certified.
        assert_eq!(leader_determine_safe(&cfg4(), &[voted, blind1, blind2], View(3), val(9)), None);
    }

    #[test]
    fn leader_pivots_above_the_last_vote3() {
        // The last vote-3 sits at view 2 (value A), but two nodes later sent
        // vote-2 for B at view 3 — evidence that B gathered a vote-1 quorum
        // at view 3, where safety was re-certified. Rule 1 therefore admits
        // pivot v'=3 (no vote-3 above or at it) and certifies B before any
        // lower pivot is examined.
        let voted = SuggestData { vote2: vi(2, 0xA), prev_vote2: None, vote3: vi(2, 0xA) };
        let switcher1 = SuggestData { vote2: vi(3, 0xB), prev_vote2: vi(2, 0xC), vote3: None };
        let switcher2 = SuggestData { vote2: vi(3, 0xB), prev_vote2: vi(2, 0xC), vote3: None };
        let got = leader_determine_safe(&cfg4(), &[voted, switcher1, switcher2], View(4), val(9));
        assert_eq!(got, Some(val(0xB)));
    }

    #[test]
    fn leader_unconstrained_pivot_allows_default() {
        // vote-3 only at view 1; at pivot 2 nobody sent vote-3 ≥ 2... (the
        // vote-3 at 1 violates nothing: 1 < 2), and a blocking set claims
        // any value safe at 2 via prev_vote2 ≥ 2 → default is proposable.
        let old = SuggestData { vote2: vi(1, 0xA), prev_vote2: None, vote3: vi(1, 0xA) };
        let s1 = SuggestData { vote2: vi(3, 0xB), prev_vote2: vi(2, 0xA), vote3: None };
        let s2 = SuggestData { vote2: vi(3, 0xB), prev_vote2: vi(2, 0xA), vote3: None };
        let got = leader_determine_safe(&cfg4(), &[old, s1, s2], View(4), val(9));
        // Candidates at pivot 3 first: vote2 values at ≥3 include B; quorum
        // for B at pivot 3: old's vote3(1) < 3 ok, s1/s2 none → quorum; does
        // a blocking set claim B at 3? s1,s2 vote2=(3,B) → yes. So B wins at
        // the higher pivot before default is ever considered.
        assert_eq!(got, Some(val(0xB)));
    }

    // ---- Algorithm 5 (Rule 3) -------------------------------------------

    #[test]
    fn node_view_zero_accepts_everything() {
        assert!(node_determine_safe(&cfg4(), &[], View(0), val(1)));
    }

    #[test]
    fn node_needs_quorum_of_proofs() {
        let p = ProofData::default();
        assert!(!node_determine_safe(&cfg4(), &[p, p], View(1), val(1)));
    }

    #[test]
    fn node_rule_2a_fresh_system() {
        let p = ProofData::default();
        assert!(node_determine_safe(&cfg4(), &[p, p, p], View(1), val(1)));
    }

    #[test]
    fn node_accepts_value_backed_by_vote4_and_blocking_claims() {
        let voted = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: vi(2, 0xA) };
        let w1 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: None };
        let w2 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: None };
        assert!(node_determine_safe(&cfg4(), &[voted, w1, w2], View(3), val(0xA)));
    }

    #[test]
    fn node_rejects_value_conflicting_with_vote4() {
        // A quorum's proofs show a vote-4 for A at view 2; proposal B cannot
        // satisfy Rule 3: any pivot ≥ 2 lacks claims for B, and pivots < 2
        // fail the quorum condition (the vote-4 at 2 is "higher than v'").
        let voted = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: vi(2, 0xA) };
        let w1 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: None };
        let w2 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: None };
        assert!(!node_determine_safe(&cfg4(), &[voted, w1, w2], View(3), val(0xB)));
    }

    #[test]
    fn node_two_blocking_sets_special_case() {
        // Rule 3 item 2(b)iiiB: no blocking set claims the proposal value
        // 0x9 directly, but two blocking sets claim two *different* values
        // (A at ṽ=1, B at ṽ'=2), all inside a vote-4 quorum at v'=1 whose
        // view-1 vote-4s carry exactly the proposal value — 0x9 is safe.
        let pa = ProofData { vote1: vi(1, 0xA), prev_vote1: None, vote4: vi(1, 0x9) };
        let pb = ProofData { vote1: vi(2, 0xB), prev_vote1: None, vote4: None };
        let pab = ProofData { vote1: vi(2, 0xB), prev_vote1: vi(1, 0xA), vote4: None };
        let pv = ProofData { vote1: vi(1, 0xA), prev_vote1: None, vote4: vi(1, 0x9) };
        let proofs = [pa, pb, pab, pv];
        // Claimers of A at 1: pa, pab (prev ≥ 1), pv → blocking set.
        // Claimers of B at 2: pb, pab → blocking set. Two vote-4s defeat
        // Rule 3 item 2a (only 2 < quorum proofs lack a vote-4).
        assert!(node_determine_safe(&cfg4(), &proofs, View(3), val(0x9)));
        // Rule 3 item 2(b)ii bites: for proposal 0xC the same pivot's
        // vote-4s carry 0x9 ≠ 0xC, breaking the quorum condition → unsafe.
        assert!(!node_determine_safe(&cfg4(), &proofs, View(3), val(0xC)));
    }

    #[test]
    fn node_iiib_requires_distinct_values_and_ordered_views() {
        // Same value at two views must NOT trigger the special case.
        let p1 = ProofData { vote1: vi(1, 0xA), prev_vote1: None, vote4: vi(1, 0xF) };
        let p2 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: vi(1, 0xF) };
        let p3 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: None };
        let p4 = ProofData { vote1: vi(2, 0xA), prev_vote1: None, vote4: None };
        let proofs = [p1, p2, p3, p4];
        // Direct path for 0xA succeeds (claims at pivot 2), so test 0xB: it
        // has no claims; iiiB needs two different claimed values but only
        // 0xA is ever claimed above view 0 → reject.
        assert!(!node_determine_safe(&cfg4(), &proofs, View(3), val(0xB)));
    }

    #[test]
    fn single_node_system_trivially_certifies() {
        let cfg = Config::new(1).unwrap();
        let s = SuggestData { vote2: vi(1, 5), prev_vote2: None, vote3: vi(1, 5) };
        assert_eq!(leader_determine_safe(&cfg, &[s], View(2), val(9)), Some(val(5)));
        let p = ProofData { vote1: vi(1, 5), prev_vote1: None, vote4: vi(1, 5) };
        assert!(node_determine_safe(&cfg, &[p], View(2), val(5)));
    }
}
