//! Windowed block storage with ancestor resolution.

use std::collections::HashMap;

use tetrabft_types::Slot;

use crate::block::{Block, BlockHash, GENESIS_HASH};

/// Stores the blocks a node currently needs: everything in the active
/// pipeline window plus a short finalized tail (parents of in-flight votes).
///
/// Pruning keeps the store O(window) — multi-shot TetraBFT's protocol state
/// stays bounded; only the *application* (the output chain) grows.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::{Block, BlockStore, GENESIS_HASH};
/// use tetrabft_types::Slot;
///
/// let mut store = BlockStore::new();
/// let b1 = Block::new(Slot(1), GENESIS_HASH, vec![]);
/// let h1 = store.insert(b1);
/// let b2 = Block::new(Slot(2), h1, vec![]);
/// let h2 = store.insert(b2);
/// assert_eq!(store.ancestor(h2, 1), Some(h1));
/// assert_eq!(store.ancestor(h2, 2), Some(GENESIS_HASH));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: HashMap<BlockHash, Block>,
}

impl BlockStore {
    /// Creates a store containing only the implicit genesis block.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Inserts `block`, returning its hash. Idempotent.
    pub fn insert(&mut self, block: Block) -> BlockHash {
        let hash = block.hash();
        self.blocks.entry(hash).or_insert(block);
        hash
    }

    /// Looks up a block. The genesis hash is always known (slot 0).
    pub fn get(&self, hash: BlockHash) -> Option<&Block> {
        self.blocks.get(&hash)
    }

    /// `true` if the hash names the genesis block or a stored block.
    pub fn contains(&self, hash: BlockHash) -> bool {
        hash == GENESIS_HASH || self.blocks.contains_key(&hash)
    }

    /// The slot of `hash` (genesis is slot 0), if known.
    pub fn slot_of(&self, hash: BlockHash) -> Option<Slot> {
        if hash == GENESIS_HASH {
            Some(Slot::GENESIS)
        } else {
            self.blocks.get(&hash).map(|b| b.slot)
        }
    }

    /// Walks `k` parent links up from `hash`.
    ///
    /// Returns `None` when the walk leaves the store or would pass the
    /// genesis block.
    pub fn ancestor(&self, hash: BlockHash, k: usize) -> Option<BlockHash> {
        let mut current = hash;
        for _ in 0..k {
            if current == GENESIS_HASH {
                return None; // nothing above genesis
            }
            current = self.blocks.get(&current)?.parent;
        }
        Some(current)
    }

    /// Drops every block with a slot strictly below `floor` (genesis is
    /// implicit and never dropped).
    pub fn prune_below(&mut self, floor: Slot) {
        self.blocks.retain(|_, b| b.slot >= floor);
    }

    /// Number of stored blocks (excluding the implicit genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no block beyond genesis is stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(len: u64) -> (BlockStore, Vec<BlockHash>) {
        let mut store = BlockStore::new();
        let mut hashes = vec![GENESIS_HASH];
        for s in 1..=len {
            let block = Block::new(Slot(s), *hashes.last().unwrap(), vec![]);
            hashes.push(store.insert(block));
        }
        (store, hashes)
    }

    #[test]
    fn ancestor_walks() {
        let (store, h) = chain(4);
        assert_eq!(store.ancestor(h[4], 0), Some(h[4]));
        assert_eq!(store.ancestor(h[4], 1), Some(h[3]));
        assert_eq!(store.ancestor(h[4], 4), Some(h[0]));
        assert_eq!(store.ancestor(h[4], 5), None, "cannot pass genesis");
    }

    #[test]
    fn unknown_hash_is_none() {
        let (store, _) = chain(2);
        assert_eq!(store.ancestor(BlockHash(0xBAD), 1), None);
        assert!(!store.contains(BlockHash(0xBAD)));
        assert!(store.contains(GENESIS_HASH));
    }

    #[test]
    fn slot_of_genesis_and_blocks() {
        let (store, h) = chain(2);
        assert_eq!(store.slot_of(GENESIS_HASH), Some(Slot::GENESIS));
        assert_eq!(store.slot_of(h[2]), Some(Slot(2)));
        assert_eq!(store.slot_of(BlockHash(0xBAD)), None);
    }

    #[test]
    fn pruning_bounds_the_store() {
        let (mut store, h) = chain(10);
        assert_eq!(store.len(), 10);
        store.prune_below(Slot(8));
        assert_eq!(store.len(), 3);
        assert!(store.contains(h[9]));
        assert!(!store.contains(h[7]));
        assert!(store.contains(GENESIS_HASH), "genesis survives pruning");
    }

    #[test]
    fn insert_is_idempotent() {
        let mut store = BlockStore::new();
        let b = Block::new(Slot(1), GENESIS_HASH, vec![b"t".to_vec()]);
        let h1 = store.insert(b.clone());
        let h2 = store.insert(b);
        assert_eq!(h1, h2);
        assert_eq!(store.len(), 1);
    }
}
