//! Per-slot protocol state.

use tetrabft::Registers;
use tetrabft_types::{Config, Slot, View, VoteBook};

use crate::block::BlockHash;

/// The consensus state of one slot: a windowed Basic-TetraBFT instance.
///
/// Each active slot carries its own [`VoteBook`] (this node's four vote
/// roles for the slot, fed by the multiplexed votes it casts at this slot
/// and the three following ones) and its own per-peer [`Registers`]. The
/// node keeps at most [`crate::SLOT_WINDOW`] instances alive, so protocol
/// state stays O(window · n).
#[derive(Debug, Clone)]
pub struct SlotInstance {
    /// The slot this instance decides.
    pub slot: Slot,
    /// Current view of the slot (views are per-slot in multi-shot TetraBFT;
    /// fresh slots start at view 0 — Algorithm 3 line 10).
    pub view: View,
    /// This node's vote roles for the slot.
    pub book: VoteBook,
    /// Per-peer receive registers for the slot.
    pub regs: Registers,
    /// Set once this node (as leader) proposed in the current view.
    pub proposed: bool,
    /// The block hash this node has seen reach a quorum of votes.
    pub notarized: Option<BlockHash>,
    /// Whether any valid proposal for this slot was ever received — the
    /// "aborted" criterion of the view-change protocol (slots that never
    /// saw a proposal restart at view 0 instead — Fig. 3's slot 4).
    pub saw_proposal: bool,
    /// Whether this slot's own `9Δ` timer has expired at least once in the
    /// current view — evidence that the slot's current leader is not
    /// delivering, which (unlike `saw_proposal`) licenses bumping even a
    /// never-proposed slot out of view 0.
    pub timer_expired: bool,
    /// Per-peer view-change support for this slot: the highest view each
    /// peer has requested for a slot range covering this slot.
    pub vc_support: Vec<Option<View>>,
}

impl SlotInstance {
    /// Creates the instance for `slot` at view 0.
    pub fn new(cfg: &Config, slot: Slot) -> Self {
        SlotInstance {
            slot,
            view: View::ZERO,
            book: VoteBook::new(),
            regs: Registers::new(cfg),
            proposed: false,
            notarized: None,
            saw_proposal: false,
            timer_expired: false,
            vc_support: vec![None; cfg.n()],
        }
    }

    /// Records that `peer` supports moving this slot to at least `view`.
    pub fn support(&mut self, peer: usize, view: View) {
        let slot = &mut self.vc_support[peer];
        if slot.is_none_or(|held| view > held) {
            *slot = Some(view);
        }
    }

    /// The highest view with support from at least `quorum` peers, if any.
    pub fn quorum_view(&self, quorum: usize) -> Option<View> {
        // Count before collecting: the good case (no view changes, every
        // register `None`) runs every step and must not allocate.
        if self.vc_support.iter().flatten().count() < quorum {
            return None;
        }
        let mut views: Vec<View> = self.vc_support.iter().flatten().copied().collect();
        views.sort_unstable();
        views.reverse();
        Some(views[quorum - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> SlotInstance {
        SlotInstance::new(&Config::new(4).unwrap(), Slot(3))
    }

    #[test]
    fn fresh_instance_defaults() {
        let i = inst();
        assert_eq!(i.view, View::ZERO);
        assert!(!i.proposed && !i.saw_proposal && !i.timer_expired);
        assert_eq!(i.notarized, None);
        assert_eq!(i.quorum_view(3), None);
    }

    #[test]
    fn support_is_monotone_per_peer() {
        let mut i = inst();
        i.support(0, View(3));
        i.support(0, View(1)); // lower request cannot regress the register
        assert_eq!(i.vc_support[0], Some(View(3)));
        i.support(0, View(5));
        assert_eq!(i.vc_support[0], Some(View(5)));
    }

    #[test]
    fn quorum_view_takes_the_kth_highest() {
        let mut i = inst();
        i.support(0, View(5));
        i.support(1, View(2));
        assert_eq!(i.quorum_view(3), None, "two supporters < quorum");
        i.support(2, View(2));
        // Views sorted desc: [5, 2, 2] → the 3rd highest is 2: a quorum
        // supports view ≥ 2 (the view-5 request also covers view 2).
        assert_eq!(i.quorum_view(3), Some(View(2)));
        i.support(3, View(7));
        assert_eq!(i.quorum_view(3), Some(View(2)));
        i.support(1, View(6));
        // Now [7, 6, 5, 2] → quorum of 3 agrees on ≥ 5.
        assert_eq!(i.quorum_view(3), Some(View(5)));
    }

    #[test]
    fn quorum_view_of_one_is_the_max() {
        let mut i = inst();
        i.support(2, View(9));
        assert_eq!(i.quorum_view(1), Some(View(9)));
    }
}
