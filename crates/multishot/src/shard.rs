//! Sharded multi-instance mode: `k` independent consensus instance groups
//! splitting one logical chain.
//!
//! Slots of the global chain are partitioned round-robin over `k` shards:
//! shard `j` finalizes global slots `j+1, j+1+k, j+1+2k, …` as its local
//! slots `1, 2, 3, …`. Shards share nothing — each runs its own full
//! Multi-shot TetraBFT group on its own engine instances (parallel threads
//! in `tetrabft-net`, deterministically interleaved virtual time in the
//! simulator) — so aggregate throughput scales with `k` while every shard
//! keeps the paper's one-block-per-delay pipeline. [`FinalizedMerge`]
//! reassembles the single global finalized stream in slot order.

use std::collections::BTreeMap;

use tetrabft_sim::{LinkPolicy, Sim, SimBuilder, Time};
use tetrabft_types::{NodeId, Slot};

use crate::msg::MsMessage;
use crate::node::{Finalized, MultiShotNode};

/// The slot partition: `k` shards in round-robin over global slots.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::ShardSpec;
/// use tetrabft_types::Slot;
///
/// let spec = ShardSpec::new(4);
/// assert_eq!(spec.global_slot(0, Slot(1)), 1);
/// assert_eq!(spec.global_slot(3, Slot(1)), 4);
/// assert_eq!(spec.global_slot(0, Slot(2)), 5);
/// assert_eq!(spec.shard_of_slot(5), 0);
/// assert_eq!(spec.local_slot(5), Slot(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    k: usize,
}

impl ShardSpec {
    /// A partition over `k` shards.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "at least one shard");
        ShardSpec { k }
    }

    /// Number of shards.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The global chain slot that shard `shard`'s local slot `local` backs.
    #[inline]
    pub fn global_slot(&self, shard: usize, local: Slot) -> u64 {
        debug_assert!(shard < self.k && local.0 >= 1);
        (local.0 - 1) * self.k as u64 + shard as u64 + 1
    }

    /// Which shard owns global slot `global` (1-based).
    #[inline]
    pub fn shard_of_slot(&self, global: u64) -> usize {
        debug_assert!(global >= 1);
        ((global - 1) % self.k as u64) as usize
    }

    /// The owning shard's local slot for global slot `global`.
    #[inline]
    pub fn local_slot(&self, global: u64) -> Slot {
        debug_assert!(global >= 1);
        Slot((global - 1) / self.k as u64 + 1)
    }

    /// Routes a transaction to a shard by its payload (FNV-1a mod `k`), so
    /// independent clients agree on the owning shard without coordination.
    pub fn route_tx(&self, tx: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tx {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.k as u64) as usize
    }
}

/// One entry of the merged global finalized stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalFinalized {
    /// Position in the single logical chain (1-based, contiguous).
    pub global_slot: u64,
    /// Which shard finalized it.
    pub shard: usize,
    /// The shard-local finalization (its `slot` is the shard-local slot).
    pub fin: Finalized,
}

/// The merge iterator: turns `k` per-shard finalized streams into the
/// single global stream, in strict global slot order.
///
/// Push shard outputs in any order with [`FinalizedMerge::push`]; iterate
/// to drain every entry whose global predecessor has already been emitted.
/// The iterator is fused per drain — it yields `None` exactly while the
/// next global slot is still missing, and resumes once it is pushed.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::{Block, FinalizedMerge, Finalized, ShardSpec, GENESIS_HASH};
/// use tetrabft_types::Slot;
///
/// let fin = |slot: u64| {
///     let block = Block::new(Slot(slot), GENESIS_HASH, vec![]);
///     Finalized { slot: Slot(slot), hash: block.hash(), block }
/// };
/// let mut merge = FinalizedMerge::new(ShardSpec::new(2));
/// merge.push(1, fin(1)); // global slot 2
/// assert!(merge.next().is_none(), "global slot 1 still missing");
/// merge.push(0, fin(1)); // global slot 1
/// let order: Vec<u64> = merge.by_ref().map(|g| g.global_slot).collect();
/// assert_eq!(order, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct FinalizedMerge {
    spec: ShardSpec,
    /// Per shard: finalizations not yet emitted, keyed by local slot.
    pending: Vec<BTreeMap<u64, Finalized>>,
    next_global: u64,
}

impl FinalizedMerge {
    /// An empty merge over `spec`'s shards, starting at global slot 1.
    pub fn new(spec: ShardSpec) -> Self {
        FinalizedMerge { spec, pending: vec![BTreeMap::new(); spec.k()], next_global: 1 }
    }

    /// Feeds one shard-local finalization into the merge.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn push(&mut self, shard: usize, fin: Finalized) {
        self.pending[shard].insert(fin.slot.0, fin);
    }

    /// The next global slot the merge is waiting for.
    pub fn next_global_slot(&self) -> u64 {
        self.next_global
    }
}

impl Iterator for FinalizedMerge {
    type Item = GlobalFinalized;

    fn next(&mut self) -> Option<GlobalFinalized> {
        let shard = self.spec.shard_of_slot(self.next_global);
        let local = self.spec.local_slot(self.next_global);
        let fin = self.pending[shard].remove(&local.0)?;
        let global_slot = self.next_global;
        self.next_global += 1;
        Some(GlobalFinalized { global_slot, shard, fin })
    }
}

/// `k` independent Multi-shot simulations interleaved deterministically in
/// one virtual timeline.
///
/// Each shard is a full [`Sim`] of `n` [`MultiShotNode`]s; the sharded
/// runner always steps the shard with the earliest pending event (ties
/// break to the lowest shard index), so a run remains a pure function of
/// `(protocol, policy, seed)` exactly like a single simulation. This is
/// the simulator counterpart of the thread-per-shard
/// `ShardedCluster` in `tetrabft-net`.
///
/// # Examples
///
/// ```
/// use tetrabft::Params;
/// use tetrabft_multishot::ShardedSim;
/// use tetrabft_sim::{LinkPolicy, Time};
/// use tetrabft_types::{Config, NodeId};
///
/// let cfg = Config::new(4).unwrap();
/// let mut sharded = ShardedSim::new(2, 4, 0, |_, _| LinkPolicy::synchronous(1), |_, id| {
///     tetrabft_multishot::MultiShotNode::new(cfg, Params::new(100), id)
/// });
/// sharded.run_until(Time(20));
/// let chain = sharded.merged_chain(NodeId(0));
/// assert!(chain.len() > 10);
/// assert_eq!(chain[0].global_slot, 1);
/// ```
pub struct ShardedSim {
    spec: ShardSpec,
    shards: Vec<Sim<MsMessage, Finalized>>,
}

impl ShardedSim {
    /// Builds `k` shards of `n` nodes each from a base `seed`. Shard `j`
    /// runs on seed `seed + j` — distinct per shard (identical shards
    /// would otherwise march in lockstep under jittered policies) yet a
    /// pure function of the base, so the whole sharded run remains a pure
    /// function of `(protocol, policy, seed)`. `policy` and `make`
    /// receive the shard index (`policy` also the shard's derived seed,
    /// `make` the node id) so shards can be populated independently.
    pub fn new(
        k: usize,
        n: usize,
        seed: u64,
        mut policy: impl FnMut(usize, u64) -> LinkPolicy,
        mut make: impl FnMut(usize, NodeId) -> MultiShotNode,
    ) -> Self {
        let spec = ShardSpec::new(k);
        let shards = (0..k)
            .map(|j| {
                let shard_seed = seed.wrapping_add(j as u64);
                // Shards step batched: same event order and outputs (see
                // `SimBuilder::batched`), one persist/flush seal per
                // coalesced (time, node) batch instead of per event.
                SimBuilder::new(n)
                    .seed(shard_seed)
                    .policy(policy(j, shard_seed))
                    .batched(true)
                    .build(|id| make(j, id))
            })
            .collect();
        ShardedSim { spec, shards }
    }

    /// The slot partition.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard simulations.
    pub fn shards(&self) -> &[Sim<MsMessage, Finalized>] {
        &self.shards
    }

    /// Mutable access to one shard (submitting txs mid-run, inspection).
    pub fn shard_mut(&mut self, shard: usize) -> &mut Sim<MsMessage, Finalized> {
        &mut self.shards[shard]
    }

    /// Advances the interleaved timeline until every shard's next event
    /// lies beyond `horizon`: repeatedly steps the shard with the earliest
    /// pending event, ties to the lowest index — fully deterministic.
    pub fn run_until(&mut self, horizon: Time) {
        loop {
            let mut earliest: Option<(Time, usize)> = None;
            for (j, shard) in self.shards.iter().enumerate() {
                if let Some(t) = shard.next_event_time() {
                    if t <= horizon && earliest.is_none_or(|(best, _)| t < best) {
                        earliest = Some((t, j));
                    }
                }
            }
            let Some((_, j)) = earliest else { return };
            self.shards[j].step();
        }
    }

    /// The merged global finalized stream as observed by `node`: every
    /// shard's chain for that node, reassembled in global slot order.
    pub fn merged_chain(&self, node: NodeId) -> Vec<GlobalFinalized> {
        let mut merge = FinalizedMerge::new(self.spec);
        for (j, shard) in self.shards.iter().enumerate() {
            for record in shard.outputs().iter().filter(|o| o.node == node) {
                merge.push(j, record.output.clone());
            }
        }
        merge.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft::Params;
    use tetrabft_types::Config;

    fn sharded(k: usize) -> ShardedSim {
        let cfg = Config::new(4).unwrap();
        ShardedSim::new(
            k,
            4,
            0,
            |_, _| LinkPolicy::synchronous(1),
            move |_, id| MultiShotNode::new(cfg, Params::new(1_000), id),
        )
    }

    #[test]
    fn global_slots_are_contiguous_and_shard_tagged() {
        let mut sim = sharded(3);
        sim.run_until(Time(30));
        let chain = sim.merged_chain(NodeId(0));
        assert!(chain.len() > 60, "3 shards × ~25 blocks, got {}", chain.len());
        for (i, g) in chain.iter().enumerate() {
            assert_eq!(g.global_slot, i as u64 + 1, "global slots are gapless");
            assert_eq!(g.shard, sim.spec().shard_of_slot(g.global_slot));
            assert_eq!(g.fin.slot, sim.spec().local_slot(g.global_slot));
        }
    }

    #[test]
    fn interleaving_is_deterministic() {
        let run = |k| {
            let mut sim = sharded(k);
            sim.run_until(Time(25));
            sim.merged_chain(NodeId(1))
                .into_iter()
                .map(|g| (g.global_slot, g.shard, g.fin.hash))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4), "same build ⇒ bit-identical merged chain");
    }

    #[test]
    fn throughput_scales_with_k() {
        let blocks = |k| {
            let mut sim = sharded(k);
            sim.run_until(Time(40));
            sim.merged_chain(NodeId(0)).len()
        };
        let one = blocks(1);
        let four = blocks(4);
        assert!(
            four >= 3 * one,
            "4 shards must finalize ≳4× the blocks of 1 (got {one} vs {four})"
        );
    }

    #[test]
    fn route_tx_is_stable_and_in_range() {
        let spec = ShardSpec::new(4);
        for k in 0..64u32 {
            let tx = k.to_be_bytes();
            let shard = spec.route_tx(&tx);
            assert!(shard < 4);
            assert_eq!(shard, spec.route_tx(&tx));
        }
    }
}
