//! Message types of Multi-shot TetraBFT (Section 6).

use tetrabft::{ProofData, SuggestData};
use tetrabft_sim::WireSize;
use tetrabft_types::{AuditClaim, Phase, Slot, Value, View};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

use crate::block::{Block, BlockHash};

/// A Multi-shot TetraBFT message.
///
/// The good case uses only [`MsMessage::Proposal`] and [`MsMessage::Vote`];
/// suggest/proof/view-change traffic appears only during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsMessage {
    /// A leader's block proposal for `(block.slot, view)`.
    Proposal {
        /// View the proposal is made in (the block itself is view-free so
        /// that re-proposals keep their identity).
        view: View,
        /// The proposed block.
        block: Block,
    },
    /// `⟨vote, slot, view, value⟩` — the multiplexed vote of Section 6.3:
    /// `vote-1` for `slot`, and `vote-2/3/4` for the three ancestors of
    /// `hash`.
    Vote {
        /// Slot being voted on.
        slot: Slot,
        /// View of `slot` at the time of voting.
        view: View,
        /// Hash of the block voted for.
        hash: BlockHash,
    },
    /// Per-slot suggest, sent to the slot's leader during view change.
    Suggest {
        /// Aborted slot.
        slot: Slot,
        /// New view for the slot.
        view: View,
        /// Historical vote-2/vote-3 roles recorded for this slot.
        data: SuggestData,
    },
    /// Per-slot proof, broadcast during view change.
    Proof {
        /// Aborted slot.
        slot: Slot,
        /// New view for the slot.
        view: View,
        /// Historical vote-1/vote-4 roles recorded for this slot.
        data: ProofData,
    },
    /// `⟨view-change, slot, view⟩` — requests view `view` for every slot
    /// `≥ slot` (Algorithm 2).
    ViewChange {
        /// Lowest aborted slot.
        slot: Slot,
        /// Requested view.
        view: View,
    },
    /// A restarted (or lagging) node asking peers for the finalized blocks
    /// it is missing, starting at `from_slot`. Durable peers answer with a
    /// [`MsMessage::Blocks`] range served from their on-disk chain log.
    CatchUp {
        /// First slot the requester does not have.
        from_slot: Slot,
    },
    /// A contiguous range of finalized blocks answering a
    /// [`MsMessage::CatchUp`]. Hashes are *not* carried: receivers recompute
    /// them (the channel is authenticated but the sender may still lie, and
    /// a recomputed hash plus f+1 agreeing peers is what makes a catch-up
    /// block trustworthy).
    Blocks {
        /// The blocks, in ascending slot order.
        blocks: Vec<Block>,
    },
}

/// Most blocks one [`MsMessage::Blocks`] decode will accept; responders
/// send at most half this (`CATCHUP_BATCH` in `node.rs`), so the headroom
/// only rejects hostile encodings, never honest ones.
pub const MAX_CATCHUP_BLOCKS: usize = 64;

impl MsMessage {
    /// Short human-readable kind, used by traces and the figure benches.
    pub fn kind(&self) -> &'static str {
        match self {
            MsMessage::Proposal { .. } => "proposal",
            MsMessage::Vote { .. } => "vote",
            MsMessage::Suggest { .. } => "suggest",
            MsMessage::Proof { .. } => "proof",
            MsMessage::ViewChange { .. } => "view-change",
            MsMessage::CatchUp { .. } => "catch-up",
            MsMessage::Blocks { .. } => "blocks",
        }
    }
}

const TAG_PROPOSAL: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_SUGGEST: u8 = 3;
const TAG_PROOF: u8 = 4;
const TAG_VIEW_CHANGE: u8 = 5;
const TAG_CATCH_UP: u8 = 6;
const TAG_BLOCKS: u8 = 7;

impl Wire for MsMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            MsMessage::Proposal { view, block } => {
                w.put_u8(TAG_PROPOSAL);
                view.encode(w);
                block.encode(w);
            }
            MsMessage::Vote { slot, view, hash } => {
                w.put_u8(TAG_VOTE);
                slot.encode(w);
                view.encode(w);
                hash.encode(w);
            }
            MsMessage::Suggest { slot, view, data } => {
                w.put_u8(TAG_SUGGEST);
                slot.encode(w);
                view.encode(w);
                data.encode_with_base(*view, w);
            }
            MsMessage::Proof { slot, view, data } => {
                w.put_u8(TAG_PROOF);
                slot.encode(w);
                view.encode(w);
                data.encode_with_base(*view, w);
            }
            MsMessage::ViewChange { slot, view } => {
                w.put_u8(TAG_VIEW_CHANGE);
                slot.encode(w);
                view.encode(w);
            }
            MsMessage::CatchUp { from_slot } => {
                w.put_u8(TAG_CATCH_UP);
                from_slot.encode(w);
            }
            MsMessage::Blocks { blocks } => {
                w.put_u8(TAG_BLOCKS);
                w.put_varint(blocks.len() as u64);
                for b in blocks {
                    b.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            TAG_PROPOSAL => {
                Ok(MsMessage::Proposal { view: View::decode(r)?, block: Block::decode(r)? })
            }
            TAG_VOTE => Ok(MsMessage::Vote {
                slot: Slot::decode(r)?,
                view: View::decode(r)?,
                hash: BlockHash::decode(r)?,
            }),
            TAG_SUGGEST => {
                let slot = Slot::decode(r)?;
                let view = View::decode(r)?;
                Ok(MsMessage::Suggest { slot, view, data: SuggestData::decode_with_base(view, r)? })
            }
            TAG_PROOF => {
                let slot = Slot::decode(r)?;
                let view = View::decode(r)?;
                Ok(MsMessage::Proof { slot, view, data: ProofData::decode_with_base(view, r)? })
            }
            TAG_VIEW_CHANGE => {
                Ok(MsMessage::ViewChange { slot: Slot::decode(r)?, view: View::decode(r)? })
            }
            TAG_CATCH_UP => Ok(MsMessage::CatchUp { from_slot: Slot::decode(r)? }),
            TAG_BLOCKS => {
                let count = r.get_varint_u64()?;
                if count > MAX_CATCHUP_BLOCKS as u64 {
                    return Err(WireError::LengthOverflow {
                        declared: usize::try_from(count).unwrap_or(usize::MAX),
                        limit: MAX_CATCHUP_BLOCKS,
                    });
                }
                let mut blocks = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    blocks.push(Block::decode(r)?);
                }
                Ok(MsMessage::Blocks { blocks })
            }
            tag => Err(WireError::InvalidTag { what: "MsMessage", tag }),
        }
    }
}

impl WireSize for MsMessage {
    fn wire_size(&self) -> usize {
        self.wire_len()
    }
    fn wire_kind(&self) -> &'static str {
        self.kind()
    }
    /// Proposals and votes claim the write-once `(slot, view)` register, with
    /// the block hash standing in as the claimed value (hashes are the
    /// identity the chain agrees on). Recovery and catch-up traffic carries
    /// history, not claims.
    fn audit_claim(&self) -> Option<AuditClaim> {
        match self {
            MsMessage::Proposal { view, block } => Some(AuditClaim {
                slot: Some(block.slot),
                view: *view,
                phase: None,
                value: Value::from_u64(block.hash().0),
            }),
            MsMessage::Vote { slot, view, hash } => Some(AuditClaim {
                slot: Some(*slot),
                view: *view,
                phase: Some(Phase::VOTE1),
                value: Value::from_u64(hash.0),
            }),
            _ => None,
        }
    }
}

/// Wire format **v1** for multi-shot messages — encoder only, retained so
/// the `wire_bytes` bench can price both formats on identical traffic.
/// Fixed-width layout: `Slot`/`View`/`BlockHash` as big-endian `u64`s,
/// block transaction counts and lengths as `u32`s, suggest/proof payloads
/// via [`tetrabft::wire_v1`].
pub mod v1 {
    use super::{Block, MsMessage};
    use tetrabft::wire_v1;
    use tetrabft_wire::Writer;

    fn encode_block(block: &Block, w: &mut Writer) {
        w.put_u64(block.slot.0);
        w.put_u64(block.parent.0);
        w.put_u32(block.txs.len() as u32);
        for tx in block.txs.iter() {
            w.put_u32(tx.len() as u32);
            w.put_slice(tx);
        }
    }

    /// Appends the v1 encoding of `msg` to `w`.
    pub fn encode(msg: &MsMessage, w: &mut Writer) {
        match msg {
            MsMessage::Proposal { view, block } => {
                w.put_u8(super::TAG_PROPOSAL);
                w.put_u64(view.0);
                encode_block(block, w);
            }
            MsMessage::Vote { slot, view, hash } => {
                w.put_u8(super::TAG_VOTE);
                w.put_u64(slot.0);
                w.put_u64(view.0);
                w.put_u64(hash.0);
            }
            MsMessage::Suggest { slot, view, data } => {
                w.put_u8(super::TAG_SUGGEST);
                w.put_u64(slot.0);
                w.put_u64(view.0);
                wire_v1::encode_suggest_data(data, w);
            }
            MsMessage::Proof { slot, view, data } => {
                w.put_u8(super::TAG_PROOF);
                w.put_u64(slot.0);
                w.put_u64(view.0);
                wire_v1::encode_proof_data(data, w);
            }
            MsMessage::ViewChange { slot, view } => {
                w.put_u8(super::TAG_VIEW_CHANGE);
                w.put_u64(slot.0);
                w.put_u64(view.0);
            }
            MsMessage::CatchUp { from_slot } => {
                w.put_u8(super::TAG_CATCH_UP);
                w.put_u64(from_slot.0);
            }
            MsMessage::Blocks { blocks } => {
                w.put_u8(super::TAG_BLOCKS);
                w.put_u32(blocks.len() as u32);
                for b in blocks {
                    encode_block(b, w);
                }
            }
        }
    }

    /// Number of bytes `msg` occupied under wire format v1.
    pub fn wire_len(msg: &MsMessage) -> usize {
        let mut w = Writer::new();
        encode(msg, &mut w);
        w.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::GENESIS_HASH;

    fn roundtrip(msg: MsMessage) {
        let bytes = msg.to_bytes();
        assert_eq!(MsMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(MsMessage::Proposal {
            view: View(1),
            block: Block::new(Slot(3), GENESIS_HASH, vec![b"tx".to_vec()]),
        });
        roundtrip(MsMessage::Vote { slot: Slot(3), view: View(0), hash: BlockHash(77) });
        roundtrip(MsMessage::Suggest {
            slot: Slot(1),
            view: View(1),
            data: SuggestData::default(),
        });
        roundtrip(MsMessage::Proof { slot: Slot(1), view: View(1), data: ProofData::default() });
        roundtrip(MsMessage::ViewChange { slot: Slot(1), view: View(1) });
        roundtrip(MsMessage::CatchUp { from_slot: Slot(42) });
        roundtrip(MsMessage::Blocks { blocks: vec![] });
        roundtrip(MsMessage::Blocks {
            blocks: vec![
                Block::new(Slot(1), GENESIS_HASH, vec![b"a".to_vec()]),
                Block::new(Slot(2), BlockHash(77), vec![b"b".to_vec(), b"c".to_vec()]),
            ],
        });
    }

    #[test]
    fn hostile_blocks_count_rejected() {
        // A Blocks frame claiming more than MAX_CATCHUP_BLOCKS entries must
        // be refused before any allocation, even with no bodies attached.
        let mut w = Writer::new();
        w.put_u8(7); // TAG_BLOCKS
        w.put_varint(MAX_CATCHUP_BLOCKS as u64 + 1);
        assert!(matches!(
            MsMessage::from_bytes(w.as_bytes()),
            Err(WireError::LengthOverflow { .. })
        ));
        // Exactly the limit is fine as a *count*; it then fails on the
        // missing bodies, not the bound.
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_varint(MAX_CATCHUP_BLOCKS as u64);
        assert!(!matches!(
            MsMessage::from_bytes(w.as_bytes()),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            MsMessage::from_bytes(&[0]),
            Err(WireError::InvalidTag { what: "MsMessage", tag: 0 })
        ));
    }

    #[test]
    fn votes_are_tiny() {
        // Good-case traffic is votes; they must be O(1) and small. Under
        // v2 a realistic vote is tag + slot + view + 8-byte hash = 11 B.
        let v = MsMessage::Vote { slot: Slot(9), view: View(0), hash: BlockHash(1) };
        assert_eq!(v.wire_len(), 11);
        assert_eq!(v1::wire_len(&v), 25);
    }

    #[test]
    fn suggest_proof_roundtrip_with_votes() {
        use tetrabft_types::{Value, VoteInfo};
        let vote = |view: u64| Some(VoteInfo::new(View(view), Value::from_u64(9)));
        roundtrip(MsMessage::Suggest {
            slot: Slot(40),
            view: View(3),
            data: SuggestData { vote2: vote(2), prev_vote2: None, vote3: vote(u64::MAX) },
        });
        roundtrip(MsMessage::Proof {
            slot: Slot(7),
            view: View(1),
            data: ProofData { vote1: vote(0), prev_vote1: vote(1), vote4: None },
        });
    }

    #[test]
    fn v2_never_loses_to_v1_on_protocol_traffic() {
        use tetrabft_types::{Value, VoteInfo};
        let msgs = [
            MsMessage::Proposal {
                view: View(1),
                block: Block::new(Slot(3), GENESIS_HASH, vec![b"tx".to_vec(); 4]),
            },
            MsMessage::Vote { slot: Slot(100), view: View(2), hash: BlockHash(u64::MAX) },
            MsMessage::Suggest {
                slot: Slot(9),
                view: View(4),
                data: SuggestData {
                    vote2: Some(VoteInfo::new(View(3), Value::from_u64(5))),
                    prev_vote2: None,
                    vote3: None,
                },
            },
            MsMessage::ViewChange { slot: Slot(9), view: View(4) },
        ];
        for m in msgs {
            assert!(m.wire_len() < v1::wire_len(&m), "{}: v2 must shrink {m:?}", m.kind());
        }
    }
}
