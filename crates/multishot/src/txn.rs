//! The typed transaction surface: what clients submit instead of raw
//! byte blobs.
//!
//! A [`Transaction`] is anything with a *canonical* wire encoding and a
//! [`TxId`] derived from it. The chain itself still carries opaque bytes —
//! blocks and the wire format are unchanged — but admission now works on a
//! typed envelope ([`Tx`]) that knows its digest, so the mempool
//! deduplicates on identity instead of re-hashing and byte-comparing
//! payloads, and an application (e.g. `tetrabft-ledger`) can veto
//! structurally-invalid transactions at the door via an admission hook.
//! Legacy callers keep working through the [`RawBytes`] adapter (or the
//! `From<Vec<u8>>` conversion, which is the same thing).

use std::fmt;

use tetrabft_wire::Writer;

/// A transaction's identity: the 64-bit FNV-1a digest of its canonical
/// encoding.
///
/// Two transactions with the same canonical bytes have the same id by
/// construction, whether they were submitted typed or as raw bytes — so
/// dedup, requeue-after-lost-view-change, and durable-restore all agree on
/// what "the same transaction" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

impl TxId {
    /// Digests `bytes` (FNV-1a, 64-bit).
    pub fn of(bytes: &[u8]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TxId(h)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{:016x}", self.0)
    }
}

/// A client-submittable transaction: canonical encoding plus the digest
/// identity derived from it.
///
/// Implementors define [`Transaction::encode_canonical`]; the id is always
/// the digest of those bytes, so `tx_id` must not be overridden to disagree
/// with the encoding (everything downstream — dedup, requeue, restore —
/// assumes `tx_id == TxId::of(canonical_bytes)`).
pub trait Transaction {
    /// Writes the one true encoding of this transaction.
    fn encode_canonical(&self, w: &mut Writer);

    /// The canonical bytes (what a block will carry).
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_canonical(&mut w);
        w.as_bytes().to_vec()
    }

    /// The transaction's identity: digest of the canonical encoding.
    fn tx_id(&self) -> TxId {
        TxId::of(&self.canonical_bytes())
    }
}

/// The legacy adapter: an opaque byte payload *is* its own canonical
/// encoding. Callers that predate the typed surface wrap (or `.into()`)
/// their `Vec<u8>` and keep working; the mempool falls back to byte-exact
/// confirmation for these, since arbitrary bytes carry no structure to
/// trust a digest over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawBytes(pub Vec<u8>);

impl Transaction for RawBytes {
    fn encode_canonical(&self, w: &mut Writer) {
        w.put_slice(&self.0);
    }

    fn canonical_bytes(&self) -> Vec<u8> {
        self.0.clone()
    }
}

/// The admission envelope: canonical bytes plus the [`TxId`] computed once
/// at the submission boundary.
///
/// This is what [`crate::Mempool::submit`] takes, what
/// [`crate::MultiShotNode`] accepts as its [`Submitter`] request, and what
/// a `tetrabft-net` `SubmitHandle` carries to a running node. Blocks still
/// store the bytes alone — the envelope exists only between client and
/// mempool.
///
/// [`Submitter`]: tetrabft_sim::Submitter
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::{RawBytes, Transaction, Tx};
///
/// let typed = Tx::typed(&RawBytes(b"pay".to_vec()));
/// let raw = Tx::from(b"pay".to_vec());
/// assert_eq!(typed.id(), raw.id(), "same canonical bytes, same identity");
/// assert!(raw.is_raw() && !typed.is_raw());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tx {
    id: TxId,
    bytes: Vec<u8>,
    raw: bool,
}

impl Tx {
    /// Wraps a typed transaction: encodes canonically, digests once.
    pub fn typed<T: Transaction>(tx: &T) -> Self {
        let bytes = tx.canonical_bytes();
        let id = TxId::of(&bytes);
        Tx { id, bytes, raw: false }
    }

    /// Wraps an opaque legacy payload (the [`RawBytes`] path).
    pub fn raw(bytes: Vec<u8>) -> Self {
        let id = TxId::of(&bytes);
        Tx { id, bytes, raw: true }
    }

    /// The transaction's identity.
    #[inline]
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The canonical payload bytes (what the block will carry).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Unwraps the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Payload size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for an empty payload.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// `true` if this envelope came from the [`RawBytes`] adapter rather
    /// than a typed [`Transaction`] — dedup then confirms digest hits
    /// byte-exactly instead of trusting the id.
    #[inline]
    pub fn is_raw(&self) -> bool {
        self.raw
    }
}

impl From<Vec<u8>> for Tx {
    fn from(bytes: Vec<u8>) -> Self {
        Tx::raw(bytes)
    }
}

/// Over a framed client connection the frame payload *is* the (opaque)
/// transaction, so submitting clients and the chain agree on the identity
/// for free: both sides digest the same bytes into the same [`TxId`] —
/// which is exactly what lets a load generator match its submissions
/// against the finalized stream without any richer client protocol.
impl tetrabft_sim::FrameRequest for Tx {
    fn from_frame(bytes: &[u8]) -> Option<Self> {
        (!bytes.is_empty()).then(|| Tx::raw(bytes.to_vec()))
    }
}

impl<T: Transaction> From<&T> for Tx {
    fn from(tx: &T) -> Self {
        Tx::typed(tx)
    }
}

/// An admission hook: the application's veto at the mempool door.
///
/// Runs after the size/emptiness checks and before dedup/capacity; a
/// returned error refuses the submission with that typed reason. Stateless
/// by design (a plain `fn`, so [`crate::Mempool`] stays `Clone`): it covers
/// what is *statically* checkable — canonical decode, structural validity —
/// while stateful rules (nonces, balances) are enforced deterministically
/// at execution by the application replica.
pub type TxCheck = fn(&Tx) -> Result<(), crate::SubmitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_and_typed_agree_on_identity() {
        let bytes = b"transfer 7".to_vec();
        let typed = Tx::typed(&RawBytes(bytes.clone()));
        let raw = Tx::raw(bytes.clone());
        assert_eq!(typed.id(), raw.id());
        assert_eq!(typed.bytes(), raw.bytes());
        assert_eq!(typed.id(), TxId::of(&bytes));
    }

    #[test]
    fn id_is_content_sensitive() {
        assert_ne!(TxId::of(b"a"), TxId::of(b"b"));
        assert_ne!(Tx::raw(b"a".to_vec()).id(), Tx::raw(b"ab".to_vec()).id());
    }

    #[test]
    fn conversions_cover_legacy_and_typed_callers() {
        let from_vec: Tx = b"legacy".to_vec().into();
        assert!(from_vec.is_raw());
        let adapter = RawBytes(b"legacy".to_vec());
        let from_typed: Tx = (&adapter).into();
        assert!(!from_typed.is_raw());
        assert_eq!(from_vec.id(), from_typed.id());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(TxId(0xAB).to_string(), "tx:00000000000000ab");
    }
}
