//! The Multi-shot TetraBFT node (Algorithms 2 and 3).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use tetrabft::rules::{leader_determine_safe, node_determine_safe};
use tetrabft::{Message as CoreMessage, Params, ProofData, SuggestData};
use tetrabft_sim::{Context, Input, Node, Submitter, TimerId};
use tetrabft_store::{NodeStore, StoreError};
use tetrabft_types::{Config, InlineVec, NodeId, Phase, Slot, Value, View};
use tetrabft_wire::Wire;

use crate::block::{Block, BlockHash, GENESIS_HASH};
use crate::instance::SlotInstance;
use crate::mempool::{Mempool, SubmitError};
use crate::msg::MsMessage;
use crate::store::BlockStore;
use crate::txn::{Tx, TxCheck};

/// How many slots may be in flight beyond the last finalized block.
///
/// The finality lag is 4 slots and at most 5 blocks can abort (Section 6.2),
/// so 8 gives comfortable headroom while keeping protocol state O(window·n).
pub const SLOT_WINDOW: u64 = 8;

/// Timer id reserved for the periodic catch-up broadcast of durable nodes.
/// Slot timers use the slot number itself as their id, so the top of the id
/// space can never collide with a reachable slot.
const CATCHUP_TIMER: TimerId = TimerId(u64::MAX);

/// Timer id reserved for idle proposal pacing ([`Params::idle_pacing`]).
/// Slot timers use the slot number itself, so the two top ids are free.
const PACE_TIMER: TimerId = TimerId(u64::MAX - 1);

/// Most blocks a node serves per catch-up response — half the hostile-decode
/// bound ([`crate::msg::MAX_CATCHUP_BLOCKS`]), so honest responses always
/// decode. A lagging node re-requests as soon as a batch commits, so the cap
/// bounds message size, not recovery depth.
const CATCHUP_BATCH: usize = 32;

/// The "fresh block" sentinel passed to Rule 1 as the leader's default
/// value: block hashes are never 0 (see [`Block::hash`]), so when
/// Algorithm 4 certifies this value the leader is free to mint a new block.
const FRESH: Value = Value([0; 8]);

/// A finalization event: `block` is now immutable at `slot` on every
/// well-behaved node's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finalized {
    /// Height of the finalized block.
    pub slot: Slot,
    /// Digest of the finalized block.
    pub hash: BlockHash,
    /// The block itself.
    pub block: Block,
}

/// A well-behaved Multi-shot TetraBFT node.
///
/// Emits a [`Finalized`] output for every block, in strict slot order; the
/// consistency property (Definition 2) says these sequences are
/// prefix-comparable across well-behaved nodes.
///
/// # Examples
///
/// See the crate-level example for the pipelined good case.
#[derive(Debug)]
pub struct MultiShotNode {
    cfg: Config,
    params: Params,
    me: NodeId,
    store: BlockStore,
    instances: BTreeMap<Slot, SlotInstance>,
    /// Highest finalized slot (0 = genesis) and its block hash.
    finalized: Slot,
    finalized_hash: BlockHash,
    /// Per-peer latest vote whose block is not yet known.
    pending: Vec<Option<(Slot, View, BlockHash)>>,
    /// Per-peer latest raw view-change pair (for echoing).
    vc_raw: Vec<Option<(Slot, View)>>,
    /// Highest view-change this node broadcast.
    vc_sent: Option<(Slot, View)>,
    /// Transactions waiting to be packed into a block by this node when it
    /// leads a slot: bounded, validated, FIFO-with-dedup.
    mempool: Mempool,
    /// Hash of the block each drained batch went into, per slot, until the
    /// slot finalizes: if it finalizes with a *different* block (our
    /// proposal lost a view change), the batch is re-queued rather than
    /// silently lost. Bounded by the slot window.
    in_flight: BTreeMap<Slot, BlockHash>,
    /// Durable store, if this node persists its state ([`Self::durable`]).
    durable: Option<NodeStore>,
    /// Incarnation counter from the durable store (0 = not durable).
    incarnation: u64,
    /// Live slots whose own vote book or view changed since the last
    /// [`Node::persist`] call.
    dirty_slots: BTreeSet<Slot>,
    /// Whether the mempool changed since the last persisted snapshot.
    mempool_dirty: bool,
    /// Catch-up candidates: next-block proposals received via
    /// [`MsMessage::Blocks`], keyed by `(slot, recomputed hash)` with the
    /// set of peers vouching for each. A candidate commits once its parent
    /// is our finalized tip and a blocking set (f+1, at least one honest
    /// node) agrees on the hash.
    catchup: BTreeMap<(Slot, BlockHash), (Block, BTreeSet<u16>)>,
    /// Reusable scratch for view-change suggest collection (filled in
    /// place each re-evaluation; capacity is retained across steps, so the
    /// steady state allocates nothing).
    scratch_suggests: Vec<SuggestData>,
    /// Reusable scratch for proof collection, same pattern.
    scratch_proofs: Vec<ProofData>,
    /// Reusable scratch for the finalization chain walk (good case: one
    /// entry per finalize).
    scratch_chain: Vec<(Slot, BlockHash, Block)>,
    /// Idle pacing ([`Params::idle_pacing`]): the slot whose empty view-0
    /// proposal is currently held back behind [`PACE_TIMER`].
    pace_pending: Option<Slot>,
    /// Set when the pace timer fires; the next paced proposal consumes it
    /// and goes out (empty) instead of re-arming.
    pace_ready: bool,
}

impl MultiShotNode {
    /// Creates a node starting at the genesis block.
    pub fn new(cfg: Config, params: Params, me: NodeId) -> Self {
        MultiShotNode {
            cfg,
            params,
            me,
            store: BlockStore::new(),
            instances: BTreeMap::new(),
            finalized: Slot::GENESIS,
            finalized_hash: GENESIS_HASH,
            pending: vec![None; cfg.n()],
            vc_raw: vec![None; cfg.n()],
            vc_sent: None,
            mempool: Mempool::new(params.mempool_capacity(), params.max_tx_bytes()),
            in_flight: BTreeMap::new(),
            durable: None,
            incarnation: 0,
            dirty_slots: BTreeSet::new(),
            mempool_dirty: false,
            catchup: BTreeMap::new(),
            scratch_suggests: Vec::new(),
            scratch_proofs: Vec::new(),
            scratch_chain: Vec::new(),
            pace_pending: None,
            pace_ready: false,
        }
    }

    /// Creates a node whose state survives `kill -9`: votes, finalized
    /// chain, and admitted transactions live in a [`NodeStore`] under
    /// `dir`, replayed here on every restart. The first `Start` after a
    /// restart broadcasts a [`MsMessage::CatchUp`] so peers stream back
    /// whatever finalized while the node was down.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] when the directory is unusable or a log
    /// is corrupt beyond its recoverable (torn) tail.
    pub fn durable(
        cfg: Config,
        params: Params,
        me: NodeId,
        dir: impl AsRef<Path>,
    ) -> Result<Self, StoreError> {
        let mut store = NodeStore::open(dir, params.fsync())?;
        let mut node = MultiShotNode::new(cfg, params, me);
        node.incarnation = store.incarnation();
        if let Some((tip, hash)) = store.chain_tip() {
            node.finalized = tip;
            node.finalized_hash = BlockHash(hash);
            // Reload the recent chain tail into the in-memory block store:
            // votes in flight at the crash may reference these blocks as
            // ancestors (pruning keeps the same 4-slot margin).
            let lo = tip.0.saturating_sub(4).max(1);
            for s in lo..=tip.0 {
                if let Some((_, bytes)) = store.block_record(Slot(s))? {
                    node.store.insert(Block::from_bytes(&bytes)?);
                }
            }
        }
        // Live-slot state: each restored book resumes exactly where the
        // write-ahead record left it, so the node cannot contradict a vote
        // it already sent before the crash.
        for sv in store.restored_votes().values() {
            if sv.slot <= node.finalized || sv.slot.0 > node.finalized.0 + SLOT_WINDOW {
                continue;
            }
            let mut inst = SlotInstance::new(&node.cfg, sv.slot);
            inst.view = sv.view;
            inst.book = sv.book.clone();
            node.instances.insert(sv.slot, inst);
        }
        // Admitted-but-unfinalized transactions survive the crash; rejects
        // (duplicates of what finalized meanwhile) are harmless.
        for tx in store.restored_mempool() {
            let _ = node.mempool.submit(tx.clone());
        }
        node.durable = Some(store);
        Ok(node)
    }

    /// Durable-store size counters `(live_bytes, chain_bytes, chain_len)`,
    /// if this node is durable — how tests assert the paper's constant
    /// live-state claim while the chain log grows linearly.
    pub fn durable_stats(&self) -> Option<(u64, u64, u64)> {
        self.durable.as_ref().map(|s| (s.live_bytes(), s.chain_bytes(), s.chain_len()))
    }

    /// Installs the application's structural-admission hook: every
    /// subsequent submission (typed or raw) must pass `check` before it
    /// enters the mempool, refusing malformed payloads at the door with a
    /// typed [`SubmitError`]. Composes with [`MultiShotNode::durable`]:
    /// transactions restored from the write-ahead snapshot were admitted
    /// (and checked) before the crash.
    #[must_use]
    pub fn with_admission(mut self, check: TxCheck) -> Self {
        self.mempool.set_admission(check);
        self
    }

    /// Queues a transaction; it will be included the next time this node
    /// leads a slot (liveness: if every node queues it, it eventually lands
    /// in the finalized chain). Accepts anything convertible to the typed
    /// [`Tx`] envelope — a [`crate::Transaction`] by reference, or a legacy
    /// `Vec<u8>` through the [`crate::RawBytes`] path.
    ///
    /// # Errors
    ///
    /// Degenerate transactions (empty, oversized, already queued, or
    /// vetoed by the admission hook) are refused with the reason;
    /// [`SubmitError::Full`] is the backpressure signal once
    /// [`Params::mempool_capacity`] transactions are queued.
    pub fn submit_tx(&mut self, tx: impl Into<Tx>) -> Result<(), SubmitError> {
        self.mempool.submit(tx)?;
        self.mempool_dirty = true;
        Ok(())
    }

    /// Number of transactions waiting in this node's mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Highest finalized slot.
    pub fn finalized_slot(&self) -> Slot {
        self.finalized
    }

    /// Number of live slot instances (bounded by [`SLOT_WINDOW`]).
    pub fn active_slots(&self) -> usize {
        self.instances.len()
    }

    /// Equivocation evidence aggregated across live slot instances, each
    /// record pinned to the slot whose registers detected it. Retired
    /// instances drop their evidence with their registers; the simulator's
    /// omniscient recorder keeps the full-run view.
    pub fn evidence(&self) -> Vec<tetrabft_types::Evidence> {
        self.instances
            .iter()
            .flat_map(|(slot, inst)| {
                inst.regs
                    .evidence()
                    .iter()
                    .map(|ev| tetrabft_types::Evidence { slot: Some(*slot), ..*ev })
            })
            .collect()
    }

    /// Leader of `slot` at `view`: round-robin over `slot + view` so that
    /// consecutive slots pipeline under distinct leaders (Fig. 2) and a view
    /// change rotates a slot to a fresh leader.
    pub fn leader_of(cfg: &Config, slot: Slot, view: View) -> NodeId {
        cfg.leader_of(View(slot.0.wrapping_add(view.0)))
    }

    fn leader(&self, slot: Slot, view: View) -> NodeId {
        Self::leader_of(&self.cfg, slot, view)
    }

    fn timer_for(slot: Slot) -> TimerId {
        // TimerId is as wide as Slot, so slots never alias (a u32 id
        // wrapped at slot 2^32, resurrecting foreign slots' timers).
        TimerId(slot.0)
    }

    fn ensure_instance(&mut self, slot: Slot, ctx: &mut Ctx<'_>) {
        if slot <= self.finalized || slot.0 > self.finalized.0 + SLOT_WINDOW {
            return;
        }
        if self.instances.contains_key(&slot) {
            return;
        }
        // Fresh instances start with a clean view-change slate: a
        // view-change applies to the slots that were active (aborted) when
        // it circulated, not to slots that start later — those "default to
        // starting from view 0" (Fig. 3's slot 4). Seeding fresh slots from
        // old requests would hand them straight to a potentially-dead
        // rotated leader.
        let inst = SlotInstance::new(&self.cfg, slot);
        self.instances.insert(slot, inst);
        ctx.set_timer(Self::timer_for(slot), self.params.view_timeout());
    }

    // ---- message intake --------------------------------------------------

    fn on_message(&mut self, from: NodeId, msg: MsMessage, ctx: &mut Ctx<'_>) {
        match msg {
            MsMessage::Proposal { view, block } => self.on_proposal(from, view, block, ctx),
            MsMessage::Vote { slot, view, hash } => self.on_vote(from, slot, view, hash),
            MsMessage::Suggest { slot, view, data } => {
                if let Some(inst) = self.instances.get_mut(&slot) {
                    inst.regs.record(from, &CoreMessage::Suggest { view, data });
                }
            }
            MsMessage::Proof { slot, view, data } => {
                if let Some(inst) = self.instances.get_mut(&slot) {
                    inst.regs.record(from, &CoreMessage::Proof { view, data });
                }
            }
            MsMessage::ViewChange { slot, view } => self.on_view_change(from, slot, view),
            MsMessage::CatchUp { from_slot } => self.on_catchup(from, from_slot, ctx),
            MsMessage::Blocks { blocks } => self.on_blocks(from, blocks, ctx),
        }
    }

    /// Serves a peer's catch-up request from the durable chain log: up to
    /// [`CATCHUP_BATCH`] consecutive finalized blocks starting at
    /// `from_slot`. Nodes without a durable store (or with nothing the
    /// requester lacks) stay silent — catch-up quiesces by itself.
    fn on_catchup(&mut self, from: NodeId, from_slot: Slot, ctx: &mut Ctx<'_>) {
        if from == self.me {
            return;
        }
        let Some(store) = self.durable.as_mut() else { return };
        let Some((tip, _)) = store.chain_tip() else { return };
        let lo = from_slot.0.max(1);
        if lo > tip.0 {
            return;
        }
        let hi = tip.0.min(lo + CATCHUP_BATCH as u64 - 1);
        let mut blocks = Vec::with_capacity((hi - lo + 1) as usize);
        for s in lo..=hi {
            // A read error here means our own log is damaged; serve the
            // clean prefix rather than nothing (or a panic).
            let Ok(Some((_, bytes))) = store.block_record(Slot(s)) else { break };
            let Ok(block) = Block::from_bytes(&bytes) else { break };
            blocks.push(block);
        }
        if !blocks.is_empty() {
            ctx.send(from, MsMessage::Blocks { blocks });
        }
    }

    /// Buffers catch-up blocks by `(slot, recomputed hash)` and the peers
    /// vouching for each, then commits whatever chains onto our tip.
    fn on_blocks(&mut self, from: NodeId, blocks: Vec<Block>, ctx: &mut Ctx<'_>) {
        for block in blocks {
            let slot = block.slot;
            if slot <= self.finalized || slot.0 > self.finalized.0 + CATCHUP_BATCH as u64 {
                continue;
            }
            // Recompute the hash: the sender names no digest, and could not
            // be trusted if it did.
            let hash = block.hash();
            let entry =
                self.catchup.entry((slot, hash)).or_insert_with(|| (block, BTreeSet::new()));
            entry.1.insert(from.0);
        }
        self.try_catchup_commit(ctx);
    }

    /// Commits buffered catch-up blocks while the next one is present: its
    /// parent must equal our finalized tip and a blocking set (f+1 peers,
    /// hence at least one honest node) must vouch for the same hash — a
    /// lone Byzantine responder can never graft a forged block.
    fn try_catchup_commit(&mut self, ctx: &mut Ctx<'_>) {
        let mut progressed = false;
        loop {
            let next = self.finalized.next();
            let parent = self.finalized_hash;
            let found = self
                .catchup
                .iter()
                .find(|((s, _), (b, peers))| {
                    *s == next && b.parent == parent && self.cfg.is_blocking(peers.len())
                })
                .map(|(key, _)| *key);
            let Some(key) = found else { break };
            let (block, _) = self.catchup.remove(&key).expect("key was just found");
            self.store.insert(block.clone());
            self.commit_block(key.0, key.1, block, ctx);
            progressed = true;
        }
        // Drop candidates that can no longer matter (at or below the tip,
        // or beyond the next request window).
        let lo = self.finalized;
        let hi = Slot(self.finalized.0 + CATCHUP_BATCH as u64);
        self.catchup.retain(|(s, _), _| *s > lo && *s <= hi);
        if progressed {
            self.store.prune_below(Slot(self.finalized.0.saturating_sub(4)));
            // Re-open the live window above the new tip and immediately ask
            // for the next range — convergence in chain/BATCH round trips
            // instead of one periodic timer tick per batch.
            self.ensure_instance(self.finalized.next(), ctx);
            ctx.broadcast(MsMessage::CatchUp { from_slot: self.finalized.next() });
        }
    }

    fn on_proposal(&mut self, from: NodeId, view: View, block: Block, ctx: &mut Ctx<'_>) {
        let slot = block.slot;
        if slot <= self.finalized || slot.0 > self.finalized.0 + SLOT_WINDOW {
            return;
        }
        if from != self.leader(slot, view) {
            return; // not the leader of (slot, view): ignore the imposter
        }
        let hash = self.store.insert(block);
        self.ensure_instance(slot, ctx);
        // Receiving the proposal for slot s starts slot s+1 and its timer
        // (Algorithm 3 line 4).
        self.ensure_instance(slot.next(), ctx);
        if let Some(inst) = self.instances.get_mut(&slot) {
            inst.saw_proposal = true;
            inst.regs.record(from, &CoreMessage::Proposal { view, value: hash.as_value() });
        }
        self.retry_pending();
    }

    fn on_vote(&mut self, from: NodeId, slot: Slot, view: View, hash: BlockHash) {
        if slot <= self.finalized || slot.0 > self.finalized.0 + SLOT_WINDOW {
            return;
        }
        if self.store.slot_of(hash) == Some(slot) {
            self.apply_vote(from, slot, view, hash);
        } else {
            // Unknown block: stash the latest such vote per peer and replay
            // it once the block arrives (constant storage per peer).
            self.pending[from.index()] = Some((slot, view, hash));
        }
    }

    /// Fans one multiplexed vote out to its four roles: `vote-k` for slot
    /// `slot − k + 1` endorsing the `(k−1)`-th ancestor of `hash`.
    fn apply_vote(&mut self, from: NodeId, slot: Slot, view: View, hash: BlockHash) {
        for k in 0u64..4 {
            let Some(target) = slot.0.checked_sub(k).map(Slot) else { break };
            if target <= self.finalized {
                break;
            }
            let Some(ancestor) = self.store.ancestor(hash, k as usize) else { break };
            let phase = Phase::from_u8(k as u8 + 1).expect("k+1 in 1..=4");
            if let Some(inst) = self.instances.get_mut(&target) {
                inst.regs
                    .record(from, &CoreMessage::Vote { phase, view, value: ancestor.as_value() });
            }
        }
    }

    fn retry_pending(&mut self) {
        for peer in 0..self.cfg.n() {
            if let Some((slot, view, hash)) = self.pending[peer] {
                if self.store.slot_of(hash) == Some(slot) {
                    self.pending[peer] = None;
                    self.apply_vote(NodeId(peer as u16), slot, view, hash);
                }
            }
        }
    }

    fn on_view_change(&mut self, from: NodeId, slot: Slot, view: View) {
        // Raw register (for echo): prefer higher view, then lower slot
        // (a lower slot covers strictly more of the chain).
        let raw = &mut self.vc_raw[from.index()];
        let better = match raw {
            None => true,
            Some((s_h, v_h)) => view > *v_h || (view == *v_h && slot < *s_h),
        };
        if better {
            *raw = Some((slot, view));
        }
        // Per-slot support: the request covers every active slot ≥ slot.
        for (s, inst) in self.instances.iter_mut() {
            if *s >= slot {
                inst.support(from.index(), view);
            }
        }
    }

    // ---- timers ----------------------------------------------------------

    fn on_timeout(&mut self, slot: Slot, ctx: &mut Ctx<'_>) {
        let Some(inst) = self.instances.get_mut(&slot) else { return };
        inst.timer_expired = true;
        let target = inst.view.next();
        // One view-change per stalled slot (Algorithm 3 lines 6–8); the
        // re-armed timer doubles as post-GST retransmission.
        self.note_vc_sent(slot, target);
        ctx.broadcast(MsMessage::ViewChange { slot, view: target });
        ctx.set_timer(Self::timer_for(slot), self.params.view_timeout());
    }

    fn note_vc_sent(&mut self, slot: Slot, view: View) {
        let better = match self.vc_sent {
            None => true,
            Some((s_h, v_h)) => view > v_h || (view == v_h && slot < s_h),
        };
        if better {
            self.vc_sent = Some((slot, view));
        }
    }

    // ---- protocol steps --------------------------------------------------

    fn drive(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let mut dirty = false;
            dirty |= self.step_echo(ctx);
            // Snapshot the live slots before stepping them (steps insert
            // and retire instances). Live instances are bounded by
            // SLOT_WINDOW, so the inline capacity always suffices and the
            // snapshot never allocates; the baseline branch retains the
            // historical per-iteration `Vec` collect for `pipeline_hotpath`.
            if self.params.hotpath_baseline() {
                let slots: Vec<Slot> = self.instances.keys().copied().collect();
                for slot in slots {
                    dirty |= self.step_slot(slot, ctx);
                }
            } else {
                let slots: InlineVec<Slot, { SLOT_WINDOW as usize }> =
                    self.instances.keys().copied().collect();
                for slot in slots {
                    dirty |= self.step_slot(slot, ctx);
                }
            }
            dirty |= self.step_finalize(ctx);
            if !dirty {
                break;
            }
        }
    }

    /// One fixpoint pass over a single live slot.
    fn step_slot(&mut self, slot: Slot, ctx: &mut Ctx<'_>) -> bool {
        let mut dirty = false;
        dirty |= self.step_enter_view(slot, ctx);
        dirty |= self.step_notarize(slot);
        dirty |= self.step_propose(slot, ctx);
        dirty |= self.step_vote(slot, ctx);
        dirty
    }

    /// Echo a view-change supported by a blocking set (Algorithm 2 lines
    /// 3–6), so that correct nodes converge on the change within one delay.
    fn step_echo(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let mut pairs: Vec<(Slot, View)> = self.vc_raw.iter().flatten().copied().collect();
        pairs.sort_unstable_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
        pairs.dedup();
        for (slot, view) in pairs {
            if self.vc_sent.is_some_and(|(_, v)| v >= view) {
                continue;
            }
            let support = self
                .vc_raw
                .iter()
                .flatten()
                .filter(|(s_p, v_p)| *s_p <= slot && *v_p >= view)
                .count();
            if self.cfg.is_blocking(support) {
                self.note_vc_sent(slot, view);
                ctx.broadcast(MsMessage::ViewChange { slot, view });
                return true;
            }
        }
        false
    }

    /// Move a slot to a higher view once a quorum supports it (Algorithm 2
    /// lines 7–11): abort the slot, reset its timer, and send the per-slot
    /// suggest/proof that seed Rule 1 / Rule 3 in the new view.
    fn step_enter_view(&mut self, slot: Slot, ctx: &mut Ctx<'_>) -> bool {
        let params = self.params;
        let (target, leader) = {
            let inst = self.instances.get(&slot).expect("caller checked");
            let Some(target) = inst.quorum_view(self.cfg.quorum()) else { return false };
            if target <= inst.view {
                return false;
            }
            // Never-proposed slots stay in view 0 (Algorithm 3 line 10,
            // Fig. 3's slot 4) unless their own timer says the view-0
            // leader is dead.
            if !inst.saw_proposal && !inst.timer_expired {
                return false;
            }
            (target, self.leader(slot, target))
        };
        let inst = self.instances.get_mut(&slot).expect("caller checked");
        inst.view = target;
        inst.proposed = false;
        inst.timer_expired = false;
        self.dirty_slots.insert(slot);
        ctx.set_timer(Self::timer_for(slot), params.view_timeout());
        let (vote2, prev_vote2, vote3) = inst.book.suggest_fields();
        ctx.send(
            leader,
            MsMessage::Suggest {
                slot,
                view: target,
                data: SuggestData { vote2, prev_vote2, vote3 },
            },
        );
        let (vote1, prev_vote1, vote4) = inst.book.proof_fields();
        ctx.broadcast(MsMessage::Proof {
            slot,
            view: target,
            data: ProofData { vote1, prev_vote1, vote4 },
        });
        true
    }

    /// A block is notarized on a quorum of (phase-1) votes, across views —
    /// Fig. 3 counts view-0 votes at slot 4 toward view-1 blocks' finality.
    fn step_notarize(&mut self, slot: Slot) -> bool {
        let quorum = self.cfg.quorum();
        let baseline = self.params.hotpath_baseline();
        let inst = self.instances.get_mut(&slot).expect("caller checked");
        if inst.notarized.is_some() {
            return false;
        }
        // Table lookup on the hot path; the allocating tally scan is the
        // retained baseline `pipeline_hotpath` measures against.
        let value = if baseline {
            inst.regs
                .vote_value_tallies(Phase::VOTE1)
                .into_iter()
                .find(|(_, count)| *count >= quorum)
                .map(|(value, _)| value)
        } else {
            inst.regs.quorum_value_any(Phase::VOTE1, quorum)
        };
        let Some(value) = value else { return false };
        inst.notarized = Some(BlockHash::from_value(value));
        true
    }

    /// The leader proposes: in view 0, as soon as the parent chain allows
    /// (pipelining — Fig. 2); in later views, once Rule 1 certifies a safe
    /// value from the slot's suggest messages.
    fn step_propose(&mut self, slot: Slot, ctx: &mut Ctx<'_>) -> bool {
        let inst = self.instances.get(&slot).expect("caller checked");
        let view = inst.view;
        if inst.proposed || self.leader(slot, view) != self.me {
            return false;
        }
        let block = if view.is_zero() {
            let Some(parent) = self.parent_ready(slot) else { return false };
            if self.pace(slot, ctx) {
                return false;
            }
            self.build_block(slot, parent)
        } else {
            // Fill the retained scratch instead of collecting a fresh Vec.
            let mut suggests = std::mem::take(&mut self.scratch_suggests);
            inst.regs.suggests_into(view, &mut suggests);
            let decision = leader_determine_safe(&self.cfg, &suggests, view, FRESH);
            self.scratch_suggests = suggests;
            match decision {
                None => return false,
                Some(v) if v == FRESH => {
                    let Some(parent) = self.parent_ready(slot) else { return false };
                    self.build_block(slot, parent)
                }
                Some(v) => {
                    // Re-propose the certified block; without its content we
                    // must wait (block dissemination is assumed, DESIGN.md §6).
                    let hash = BlockHash::from_value(v);
                    match self.store.get(hash) {
                        Some(b) if b.slot == slot => b.clone(),
                        _ => return false,
                    }
                }
            }
        };
        self.store.insert(block.clone());
        let inst = self.instances.get_mut(&slot).expect("caller checked");
        inst.proposed = true;
        ctx.broadcast(MsMessage::Proposal { view, block });
        true
    }

    /// The parent block a new slot-`slot` block must extend: the block
    /// proposed for `slot − 1` in its current view, whose own parent is
    /// already notarized ("upon receiving bᵢ and confirming … bᵢ₋₁ has
    /// received a quorum of votes, bᵢ extends bᵢ₋₁").
    fn parent_ready(&self, slot: Slot) -> Option<BlockHash> {
        let prev = slot.prev()?;
        if prev == self.finalized {
            return Some(self.finalized_hash);
        }
        let pinst = self.instances.get(&prev)?;
        // Pipelined path: the block proposed for prev in its current view,
        // provided *its* parent already has a quorum of votes.
        let leader = self.leader(prev, pinst.view);
        if let Some(value) = pinst.regs.proposal_of(leader, pinst.view) {
            let hash = BlockHash::from_value(value);
            if let Some(block) = self.store.get(hash) {
                let grandparent_ok = match prev.prev() {
                    Some(gp) if gp == self.finalized => block.parent == self.finalized_hash,
                    Some(gp) => {
                        self.instances.get(&gp).is_some_and(|gi| gi.notarized == Some(block.parent))
                    }
                    None => true,
                };
                if grandparent_ok {
                    return Some(hash);
                }
            }
        }
        // Recovery path: a notarized prev block satisfies the paper's
        // "b_{i−1} has received a quorum of votes" directly, even when the
        // current view of prev has no proposal yet (its leader may be the
        // very node whose failure triggered recovery).
        pinst.notarized.filter(|h| self.store.contains(*h))
    }

    /// Idle pacing gate for a view-0 proposal that is otherwise ready:
    /// returns `true` to hold the proposal back. With pacing enabled and
    /// an empty mempool, the first call arms [`PACE_TIMER`] and every
    /// call until it fires defers; the firing releases exactly one empty
    /// proposal. A submission arriving mid-pause makes the mempool
    /// non-empty, so the next `drive` proposes immediately (and cancels
    /// the now-moot timer). View-change paths (`view > 0`) never pace —
    /// recovery liveness is not traded for idle CPU.
    fn pace(&mut self, slot: Slot, ctx: &mut Ctx<'_>) -> bool {
        if self.params.idle_pacing() == 0 || !self.mempool.is_empty() {
            if self.pace_pending.take().is_some() {
                ctx.cancel_timer(PACE_TIMER);
            }
            self.pace_ready = false;
            return false;
        }
        if self.pace_ready {
            self.pace_ready = false;
            self.pace_pending = None;
            return false;
        }
        if self.pace_pending != Some(slot) {
            self.pace_pending = Some(slot);
            ctx.set_timer(PACE_TIMER, self.params.idle_pacing());
        }
        true
    }

    fn build_block(&mut self, slot: Slot, parent: BlockHash) -> Block {
        let block = Block::new(slot, parent, self.mempool.next_batch(self.params.max_block_txs()));
        if !block.txs.is_empty() {
            self.mempool_dirty = true;
            // A later fresh proposal for the same slot supersedes our
            // earlier one; rescue that batch before dropping its record.
            if let Some(old) = self.in_flight.insert(slot, block.hash()) {
                self.requeue_batch(old);
            }
        }
        block
    }

    /// Puts the transactions of our superseded/defeated block for a slot
    /// back at the front of the mempool (the block is still in the store:
    /// pruning keeps everything above `finalized − 4`, and in-flight slots
    /// are above `finalized`).
    fn requeue_batch(&mut self, ours: BlockHash) {
        if let Some(block) = self.store.get(ours) {
            self.mempool.requeue_front((*block.txs).clone());
            self.mempool_dirty = true;
        }
    }

    /// Vote for the slot's proposal once its parent is notarized and (in
    /// views > 0) Rule 3 certifies it; the one vote message carries all
    /// four roles, recorded into the four ancestor slots' books.
    fn step_vote(&mut self, slot: Slot, ctx: &mut Ctx<'_>) -> bool {
        let inst = self.instances.get(&slot).expect("caller checked");
        let view = inst.view;
        if inst.book.has_voted_at_or_after(Phase::VOTE1, view) {
            return false;
        }
        let leader = self.leader(slot, view);
        let Some(value) = inst.regs.proposal_of(leader, view) else { return false };
        let hash = BlockHash::from_value(value);
        let Some(block) = self.store.get(hash) else { return false };
        if block.slot != slot {
            return false;
        }
        // Parent must be notarized (genesis/finalized prefix counts).
        let parent_ok = match slot.prev() {
            Some(prev) if prev == self.finalized => block.parent == self.finalized_hash,
            Some(prev) => {
                self.instances.get(&prev).is_some_and(|pi| pi.notarized == Some(block.parent))
            }
            None => false, // slot 0 is genesis; never voted on
        };
        if !parent_ok {
            return false;
        }
        let safe = view.is_zero() || {
            let mut proofs = std::mem::take(&mut self.scratch_proofs);
            inst.regs.proofs_into(view, &mut proofs);
            let certified = node_determine_safe(&self.cfg, &proofs, view, value);
            self.scratch_proofs = proofs;
            certified
        };
        if !safe {
            return false;
        }
        // Record the four roles this vote plays in the ancestors' books.
        for k in 0u64..4 {
            let Some(target) = slot.0.checked_sub(k).map(Slot) else { break };
            if target <= self.finalized {
                break;
            }
            let Some(ancestor) = self.store.ancestor(hash, k as usize) else { break };
            let phase = Phase::from_u8(k as u8 + 1).expect("k+1 in 1..=4");
            if let Some(ti) = self.instances.get_mut(&target) {
                ti.book.record(phase, view, ancestor.as_value());
                self.dirty_slots.insert(target);
            }
        }
        // The write-ahead contract: [`Node::persist`] runs before the
        // transport flushes this broadcast, so the book entries above reach
        // disk before any peer can observe the vote.
        ctx.broadcast(MsMessage::Vote { slot, view, hash });
        true
    }

    /// Finalize the longest prefix backed by a quorum of (phase-4 role)
    /// votes — equivalently, the first of four consecutively notarized
    /// blocks plus its prefix.
    fn step_finalize(&mut self, ctx: &mut Ctx<'_>) -> bool {
        // Highest slot with a phase-4 quorum whose chain back to the
        // finalized tip is fully known.
        let quorum = self.cfg.quorum();
        let baseline = self.params.hotpath_baseline();
        let mut best: Option<(Slot, BlockHash)> = None;
        for (slot, inst) in &self.instances {
            let value = if baseline {
                inst.regs
                    .vote_value_tallies(Phase::VOTE4)
                    .into_iter()
                    .find(|(_, count)| *count >= quorum)
                    .map(|(value, _)| value)
            } else {
                inst.regs.quorum_value_any(Phase::VOTE4, quorum)
            };
            if let Some(value) = value {
                best = Some((*slot, BlockHash::from_value(value)));
            }
        }
        let Some((slot, hash)) = best else { return false };
        // Collect the chain from `hash` down to the current finalized tip,
        // into the retained scratch (good case: a single link, no
        // allocation; block clones are `Arc` bumps).
        let mut chain = std::mem::take(&mut self.scratch_chain);
        chain.clear();
        let mut cursor = hash;
        let mut cursor_slot = slot;
        let mut intact = true;
        while cursor_slot > self.finalized {
            let Some(block) = self.store.get(cursor) else {
                intact = false;
                break;
            };
            if block.slot != cursor_slot {
                intact = false;
                break;
            }
            chain.push((cursor_slot, cursor, block.clone()));
            cursor = block.parent;
            cursor_slot = match cursor_slot.prev() {
                Some(p) => p,
                None => {
                    intact = false;
                    break;
                }
            };
        }
        if !intact || cursor != self.finalized_hash {
            // Chain incomplete, or forked against our finalized prefix
            // (impossible for well-behaved inputs — agreement): bail out.
            chain.clear();
            self.scratch_chain = chain;
            return false;
        }
        chain.reverse();
        for (s, h, block) in chain.drain(..) {
            self.commit_block(s, h, block, ctx);
        }
        self.scratch_chain = chain;
        // Keep a short tail of finalized blocks: in-flight votes may still
        // reference them as ancestors.
        self.store.prune_below(Slot(self.finalized.0.saturating_sub(4)));
        true
    }

    /// Commits one finalized block — the shared tail of `step_finalize`
    /// and the catch-up path: rescue a defeated in-flight batch, append to
    /// the durable chain log *before* the output can be observed, emit the
    /// [`Finalized`] event, and retire the slot's live state.
    fn commit_block(&mut self, slot: Slot, hash: BlockHash, block: Block, ctx: &mut Ctx<'_>) {
        // If we drained a batch into a proposal for this slot and a
        // different block won, the batch returns to the mempool's head —
        // admitted transactions survive lost view changes.
        if let Some(ours) = self.in_flight.remove(&slot) {
            if ours != hash {
                self.requeue_batch(ours);
            }
        }
        if let Some(store) = self.durable.as_mut() {
            // Finalized state must never be claimed and then lost; a store
            // that cannot append is a node that must not keep running.
            store
                .append_block(slot, hash.0, &block.to_bytes())
                .expect("durable chain log append failed");
        }
        ctx.output(Finalized { slot, hash, block });
        ctx.cancel_timer(Self::timer_for(slot));
        self.instances.remove(&slot);
        self.dirty_slots.remove(&slot);
        self.finalized = slot;
        self.finalized_hash = hash;
    }
}

type Ctx<'a> = Context<'a, MsMessage, Finalized>;

impl Node for MultiShotNode {
    type Msg = MsMessage;
    type Output = Finalized;

    fn handle(&mut self, input: Input<MsMessage>, ctx: &mut Ctx<'_>) {
        match input {
            Input::Start => {
                self.ensure_instance(self.finalized.next(), ctx);
                // Restored instances were created without a context; every
                // live slot (fresh or restored) gets its timer here.
                let slots: Vec<Slot> = self.instances.keys().copied().collect();
                for slot in slots {
                    ctx.set_timer(Self::timer_for(slot), self.params.view_timeout());
                }
                if self.durable.is_some() {
                    // Pull whatever finalized while we were down, and keep
                    // pulling periodically — the timer doubles as the
                    // retransmission for lost catch-up traffic.
                    ctx.broadcast(MsMessage::CatchUp { from_slot: self.finalized.next() });
                    ctx.set_timer(CATCHUP_TIMER, self.params.view_timeout());
                }
                self.drive(ctx);
            }
            Input::Deliver { from, msg } => {
                self.on_message(from, msg, ctx);
                self.drive(ctx);
            }
            Input::Timer { id } if id == CATCHUP_TIMER => {
                ctx.broadcast(MsMessage::CatchUp { from_slot: self.finalized.next() });
                ctx.set_timer(CATCHUP_TIMER, self.params.view_timeout());
            }
            Input::Timer { id } if id == PACE_TIMER => {
                self.pace_ready = true;
                self.pace_pending = None;
                self.drive(ctx);
            }
            Input::Timer { id } => {
                self.on_timeout(Slot(id.0), ctx);
                self.drive(ctx);
            }
        }
    }

    fn persist(&mut self) {
        if self.durable.is_none() {
            return;
        }
        // Called by the engine after every dispatch, *before* the transport
        // flushes staged frames: whatever this batch of work voted or
        // admitted is on disk before any peer can observe it.
        let finalized = self.finalized;
        let dirty = std::mem::take(&mut self.dirty_slots);
        let store = self.durable.as_mut().expect("checked above");
        for slot in dirty {
            if slot <= finalized {
                continue;
            }
            if let Some(inst) = self.instances.get(&slot) {
                store
                    .record_votes(slot, inst.view, finalized, &inst.book)
                    .expect("durable vote record failed");
            }
        }
        if self.mempool_dirty {
            self.mempool_dirty = false;
            store.save_mempool(self.mempool.iter()).expect("durable mempool snapshot failed");
        }
    }

    fn incarnation(&self) -> u64 {
        self.incarnation
    }
}

impl Submitter for MultiShotNode {
    type Request = Tx;
    type SubmitError = SubmitError;

    fn accept(&mut self, tx: Tx) -> Result<(), SubmitError> {
        self.submit_tx(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_sim::{LinkPolicy, SimBuilder, Time};

    fn cfg(n: usize) -> Config {
        Config::new(n).unwrap()
    }

    fn chain_of(
        sim: &tetrabft_sim::Sim<MsMessage, Finalized>,
        node: NodeId,
    ) -> Vec<(Slot, BlockHash)> {
        sim.outputs()
            .iter()
            .filter(|o| o.node == node)
            .map(|o| (o.output.slot, o.output.hash))
            .collect()
    }

    fn assert_consistency(sim: &tetrabft_sim::Sim<MsMessage, Finalized>, n: usize) {
        let chains: Vec<_> = (0..n as u16).map(|i| chain_of(sim, NodeId(i))).collect();
        for chain in &chains {
            // Slots are contiguous from 1.
            for (i, (slot, _)) in chain.iter().enumerate() {
                assert_eq!(slot.0, i as u64 + 1, "finalization order must be slot order");
            }
        }
        let longest = chains.iter().max_by_key(|c| c.len()).unwrap();
        for chain in &chains {
            assert_eq!(
                &longest[..chain.len()],
                &chain[..],
                "finalized chains must be prefix-comparable"
            );
        }
    }

    #[test]
    fn good_case_one_block_per_delay() {
        let n = 4;
        let mut sim = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| MultiShotNode::new(cfg(4), Params::new(100), id));
        sim.run_until(Time(30));
        let chain = chain_of(&sim, NodeId(0));
        assert!(chain.len() >= 24, "expected ~1 block/delay, got {}", chain.len());
        let times: Vec<u64> =
            sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| o.time.0).collect();
        assert_eq!(times[0], 5, "first finalization at 5 message delays");
        for pair in times.windows(2) {
            assert_eq!(pair[1] - pair[0], 1, "then one block per message delay");
        }
        assert_consistency(&sim, n);
    }

    #[test]
    fn idle_pacing_throttles_empty_blocks_without_stalling() {
        let n = 4;
        // Message delay 1, pace 10: an idle paced chain advances roughly
        // one slot per pause instead of one per delay.
        let mut sim = SimBuilder::new(n)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| MultiShotNode::new(cfg(4), Params::new(100).with_idle_pacing(10), id));
        sim.run_until(Time(300));
        let chain = chain_of(&sim, NodeId(0));
        assert!(!chain.is_empty(), "a paced chain still finalizes");
        assert!(
            chain.len() <= 60,
            "pacing must throttle the idle chain, got {} slots in 300 delays",
            chain.len()
        );
        assert_consistency(&sim, n);
    }

    #[test]
    fn active_state_stays_bounded() {
        let mut sim = SimBuilder::new(4)
            .policy(LinkPolicy::synchronous(1))
            .build(|id| MultiShotNode::new(cfg(4), Params::new(100), id));
        sim.run_until(Time(200));
        // Can't reach into nodes generically; bound check via window const:
        // instances ≤ SLOT_WINDOW by construction. Assert the chain grew a
        // lot while the window constant stayed small.
        let chain = chain_of(&sim, NodeId(0));
        assert!(chain.len() > 150);
        // SLOT_WINDOW (8) bounds live instances structurally; the chain
        // above grew ~25x past it without unbounded protocol state.
    }

    #[test]
    fn crashed_slot_leader_recovers_via_view_change() {
        // Node 3 is silent; it leads slots 3, 7, 11, … (view 0). The chain
        // must stall there, view-change, and continue.
        let n = 4;
        let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build_boxed(|id| {
            if id == NodeId(3) {
                Box::new(tetrabft_sim::SilentNode::new())
            } else {
                Box::new(MultiShotNode::new(cfg(4), Params::new(5), id))
            }
        });
        sim.run_until(Time(400));
        let chain = chain_of(&sim, NodeId(0));
        assert!(
            chain.iter().any(|(s, _)| s.0 >= 4),
            "chain must pass the dead leader's slot, got up to {:?}",
            chain.last()
        );
        assert_consistency(&sim, n);
    }

    #[test]
    fn jittered_network_keeps_chains_consistent() {
        for seed in 0..5 {
            let n = 4;
            let mut sim = SimBuilder::new(n)
                .seed(seed)
                .policy(LinkPolicy::jittered(1, 6))
                .build(|id| MultiShotNode::new(cfg(4), Params::new(30), id));
            sim.run_until(Time(600));
            assert_consistency(&sim, n);
            assert!(
                !chain_of(&sim, NodeId(0)).is_empty(),
                "some blocks must finalize under jitter (seed {seed})"
            );
        }
    }

    #[test]
    fn submitted_transaction_reaches_the_chain() {
        let n = 4;
        let tx = b"pay alice 5".to_vec();
        let tx2 = tx.clone();
        let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| {
            let mut node = MultiShotNode::new(cfg(4), Params::new(100), id);
            node.submit_tx(tx2.clone()).unwrap();
            node
        });
        sim.run_until(Time(40));
        let included = sim
            .outputs()
            .iter()
            .filter(|o| o.node == NodeId(0))
            .any(|o| o.output.block.txs.iter().any(|t| t == &tx));
        assert!(included, "submitted tx must be included in the finalized chain");
    }

    #[test]
    fn degenerate_and_overflow_submissions_are_refused() {
        use crate::mempool::SubmitError;
        let params = Params::new(100).with_mempool_capacity(2).with_max_tx_bytes(8);
        let mut node = MultiShotNode::new(cfg(4), params, NodeId(0));
        assert_eq!(node.submit_tx(vec![]), Err(SubmitError::Empty));
        assert_eq!(node.submit_tx(vec![0; 9]), Err(SubmitError::TooLarge { size: 9, max: 8 }));
        node.submit_tx(b"a".to_vec()).unwrap();
        assert_eq!(node.submit_tx(b"a".to_vec()), Err(SubmitError::Duplicate));
        node.submit_tx(b"b".to_vec()).unwrap();
        assert_eq!(node.submit_tx(b"c".to_vec()), Err(SubmitError::Full { capacity: 2 }));
        assert_eq!(node.mempool_len(), 2);
    }

    #[test]
    fn leader_batches_respect_max_block_txs() {
        let n = 4;
        let params = Params::new(100).with_max_block_txs(3);
        let mut sim = SimBuilder::new(n).policy(LinkPolicy::synchronous(1)).build(move |id| {
            let mut node = MultiShotNode::new(cfg(4), params, id);
            for k in 0..20u8 {
                node.submit_tx(vec![id.0 as u8 + 1, k + 1]).unwrap();
            }
            node
        });
        sim.run_until(Time(40));
        let blocks: Vec<&Block> =
            sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| &o.output.block).collect();
        assert!(blocks.len() > 8);
        assert!(blocks.iter().all(|b| b.txs.len() <= 3), "no block may exceed max_block_txs");
        assert!(blocks.iter().any(|b| b.txs.len() == 3), "leaders fill blocks to the cap");
    }

    #[test]
    fn pre_gst_chaos_then_progress() {
        let n = 4;
        let mut sim = SimBuilder::new(n)
            .policy(LinkPolicy::partial_synchrony(Time(200), 10, 1))
            .build(|id| MultiShotNode::new(cfg(4), Params::new(10), id));
        sim.run_until(Time(1500));
        assert_consistency(&sim, n);
        let chain = chain_of(&sim, NodeId(0));
        assert!(!chain.is_empty(), "chain must grow after GST");
    }
}
