//! Blocks, hash pointers, and the genesis block.

use std::cell::RefCell;
use std::sync::Arc;

use tetrabft_types::{Slot, Value};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

/// A block digest: the 64-bit FNV-1a hash of the block's encoding.
///
/// Deliberately **not** cryptographic — TetraBFT is an unauthenticated
/// protocol and never relies on unforgeability; the hash pointer is only a
/// compact way to name a parent block (collision-resistance here is a
/// modelling convenience, per DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockHash(pub u64);

/// The hash of the implicit genesis block (slot 0).
pub const GENESIS_HASH: BlockHash = BlockHash(1);

impl BlockHash {
    /// The consensus [`Value`] this hash is voted on as.
    #[inline]
    pub fn as_value(self) -> Value {
        Value::from_u64(self.0)
    }

    /// Reconstructs a hash from a consensus value.
    #[inline]
    pub fn from_value(value: Value) -> Self {
        BlockHash(value.as_u64())
    }
}

impl std::fmt::Display for BlockHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{:016x}", self.0)
    }
}

/// A block in the chain: slot number, parent pointer, and a transaction
/// payload.
///
/// Blocks intentionally do **not** embed the view they were proposed in: a
/// view change may re-propose the *same* block in a later view (Rule 1
/// certifies the block's hash as the safe value), which must not change its
/// identity.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::{Block, GENESIS_HASH};
/// use tetrabft_types::Slot;
///
/// let b1 = Block::new(Slot(1), GENESIS_HASH, vec![b"tx".to_vec()]);
/// let b2 = Block::new(Slot(2), b1.hash(), vec![]);
/// assert_eq!(b2.parent, b1.hash());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Slot (height) of the block.
    pub slot: Slot,
    /// Hash pointer to the parent block.
    pub parent: BlockHash,
    /// Transactions carried by the block.
    ///
    /// Shared, not owned: a block is cloned once per broadcast recipient,
    /// once into the store, and once per finalization output. Behind an
    /// `Arc` all of those are reference-count bumps over one buffer — the
    /// "share one encoded payload instead of cloning it per recipient"
    /// half of the zero-alloc hot path. `Arc` (not `Rc`) because the TCP
    /// runtime moves messages across threads.
    pub txs: Arc<Vec<Vec<u8>>>,
}

thread_local! {
    /// Scratch encoder for [`Block::hash`]: hashing re-encodes the block,
    /// and the store hashes every insert, so a heap-allocated `Writer` per
    /// call would be one of the hottest allocation sites in the pipeline.
    static HASH_SCRATCH: RefCell<Writer> = RefCell::new(Writer::new());
}

impl Block {
    /// Creates a block.
    pub fn new(slot: Slot, parent: BlockHash, txs: Vec<Vec<u8>>) -> Self {
        Block { slot, parent, txs: Arc::new(txs) }
    }

    /// The block's digest (FNV-1a over its wire encoding, never 0 or the
    /// genesis hash). Encodes into a thread-local scratch buffer, so
    /// steady-state calls do not allocate.
    pub fn hash(&self) -> BlockHash {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        HASH_SCRATCH.with(|scratch| {
            let mut w = scratch.borrow_mut();
            w.clear();
            self.encode(&mut w);
            for &b in w.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        });
        // Reserve 0 (the "fresh block" sentinel in Rule 1) and 1 (genesis).
        if h <= 1 {
            h = 2;
        }
        BlockHash(h)
    }
}

impl Wire for BlockHash {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BlockHash(r.get_u64()?))
    }
}

impl Wire for Block {
    fn encode(&self, w: &mut Writer) {
        self.slot.encode(w);
        self.parent.encode(w);
        w.put_varint(self.txs.len() as u64);
        for tx in self.txs.iter() {
            w.put_varint(tx.len() as u64);
            w.put_slice(tx);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let slot = Slot::decode(r)?;
        let parent = BlockHash::decode(r)?;
        // Compare before narrowing so 32-bit targets reject the same
        // hostile counts 64-bit ones do.
        let declared = r.get_varint_u64()?;
        const MAX_TXS: usize = 1 << 16;
        if declared > MAX_TXS as u64 {
            let declared = usize::try_from(declared).unwrap_or(usize::MAX);
            return Err(WireError::LengthOverflow { declared, limit: MAX_TXS });
        }
        let count = declared as usize;
        let mut txs = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            let len = r.get_varint_u32()? as usize;
            txs.push(r.get_slice(len)?.to_vec());
        }
        Ok(Block { slot, parent, txs: Arc::new(txs) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_content_sensitive() {
        let a = Block::new(Slot(1), GENESIS_HASH, vec![b"x".to_vec()]);
        let b = Block::new(Slot(1), GENESIS_HASH, vec![b"x".to_vec()]);
        let c = Block::new(Slot(1), GENESIS_HASH, vec![b"y".to_vec()]);
        assert_eq!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn hash_differs_by_slot_and_parent() {
        let a = Block::new(Slot(1), GENESIS_HASH, vec![]);
        let b = Block::new(Slot(2), GENESIS_HASH, vec![]);
        let c = Block::new(Slot(1), BlockHash(99), vec![]);
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn hash_reserved_values() {
        // Structural guarantee: hashes avoid the sentinel values.
        let b = Block::new(Slot(3), GENESIS_HASH, vec![b"tx".to_vec()]);
        assert!(b.hash().0 > 1);
    }

    #[test]
    fn wire_roundtrip() {
        let b = Block::new(Slot(7), BlockHash(42), vec![b"hello".to_vec(), vec![]]);
        let bytes = b.to_bytes();
        assert_eq!(Block::from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn value_bridge_roundtrip() {
        let h = BlockHash(0xDEAD_BEEF);
        assert_eq!(BlockHash::from_value(h.as_value()), h);
    }

    #[test]
    fn hostile_tx_count_rejected() {
        let mut w = Writer::new();
        Slot(1).encode(&mut w);
        GENESIS_HASH.encode(&mut w);
        w.put_varint(u64::from(u32::MAX));
        assert!(matches!(Block::from_bytes(w.as_bytes()), Err(WireError::LengthOverflow { .. })));
    }

    #[test]
    fn hostile_tx_len_rejected() {
        // A single tx declaring a 2^40-byte body must fail cleanly.
        let mut w = Writer::new();
        Slot(1).encode(&mut w);
        GENESIS_HASH.encode(&mut w);
        w.put_varint(1);
        w.put_varint(1 << 40);
        assert!(Block::from_bytes(w.as_bytes()).is_err());
    }
}
