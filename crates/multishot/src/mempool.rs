//! The bounded transaction mempool feeding leader batch assembly.
//!
//! The pool replaces the unbounded `VecDeque` the node used to carry:
//! admission validates transactions (non-empty, under the size cap, past
//! the application's [`TxCheck`] hook when one is installed), deduplicates
//! on the typed [`TxId`] digest against everything still queued, and
//! refuses submissions past a fixed capacity — the typed [`SubmitError`]
//! is the backpressure signal clients react to. Drain order is strictly
//! FIFO, so a submitted transaction's position in the chain is a function
//! of its submission order alone.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::txn::{Tx, TxCheck, TxId};

/// Why a transaction submission was refused.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::{Mempool, SubmitError};
///
/// let mut pool = Mempool::new(2, 8);
/// assert_eq!(pool.submit(vec![]), Err(SubmitError::Empty));
/// assert_eq!(pool.submit(vec![0; 9]), Err(SubmitError::TooLarge { size: 9, max: 8 }));
/// pool.submit(b"a".to_vec()).unwrap();
/// assert_eq!(pool.submit(b"a".to_vec()), Err(SubmitError::Duplicate));
/// pool.submit(b"b".to_vec()).unwrap();
/// assert_eq!(pool.submit(b"c".to_vec()), Err(SubmitError::Full { capacity: 2 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Empty transactions carry no payload and would only bloat blocks.
    Empty,
    /// The transaction exceeds the per-transaction size cap.
    TooLarge {
        /// Size of the offending transaction in bytes.
        size: usize,
        /// The configured cap.
        max: usize,
    },
    /// The payload is not a canonical encoding of what the application
    /// accepts (the admission hook could not even parse it).
    Malformed {
        /// What failed to parse or violated the canonical form.
        reason: &'static str,
    },
    /// The payload parsed, but the application's admission hook refused it
    /// (a statically-detectable semantic violation, e.g. a zero-amount or
    /// self-paying transfer; stateful rules like nonces reject at
    /// execution instead).
    Rejected {
        /// Why the application refused it.
        reason: &'static str,
    },
    /// A transaction with this identity is already queued.
    Duplicate,
    /// The pool is at capacity — the backpressure signal; retry after the
    /// chain drains some blocks.
    Full {
        /// The configured admission bound.
        capacity: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Empty => write!(f, "empty transaction"),
            SubmitError::TooLarge { size, max } => {
                write!(f, "transaction of {size} bytes exceeds the {max}-byte cap")
            }
            SubmitError::Malformed { reason } => {
                write!(f, "malformed transaction: {reason}")
            }
            SubmitError::Rejected { reason } => {
                write!(f, "transaction refused at admission: {reason}")
            }
            SubmitError::Duplicate => write!(f, "transaction is already queued"),
            SubmitError::Full { capacity } => {
                write!(f, "mempool is at its capacity of {capacity} transactions")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A bounded FIFO transaction pool with validation and typed dedup at
/// admission.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::Mempool;
///
/// let mut pool = Mempool::new(100, 32);
/// for k in 0..5u8 {
///     pool.submit(vec![k + 1]).unwrap();
/// }
/// let batch = pool.next_batch(3);
/// assert_eq!(batch, vec![vec![1], vec![2], vec![3]], "drain order is FIFO");
/// assert_eq!(pool.len(), 2);
/// // A drained transaction may be resubmitted (it is no longer queued).
/// pool.submit(vec![1]).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Mempool {
    queue: VecDeque<Tx>,
    // Multiset of queued TxIds. For *typed* transactions the id is the
    // identity — a hit refuses immediately, no byte re-compare. For
    // RawBytes submissions a hit is confirmed byte-exactly against the
    // queue (a pure digest collision must not refuse an honest opaque
    // payload); the count keeps colliding digests correct through drains.
    queued: HashMap<TxId, u32>,
    capacity: usize,
    max_tx_bytes: usize,
    /// The application's structural-admission veto, if installed.
    admission: Option<TxCheck>,
}

impl Mempool {
    /// Creates an empty pool admitting at most `capacity` transactions of
    /// at most `max_tx_bytes` bytes each, with no application admission
    /// hook.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `max_tx_bytes == 0`.
    pub fn new(capacity: usize, max_tx_bytes: usize) -> Self {
        assert!(capacity > 0, "mempool must admit at least one tx");
        assert!(max_tx_bytes > 0, "tx size cap must be positive");
        Mempool {
            queue: VecDeque::new(),
            queued: HashMap::new(),
            capacity,
            max_tx_bytes,
            admission: None,
        }
    }

    /// Installs the application's admission hook: every subsequent
    /// submission must pass `check` or is refused with its typed reason
    /// ([`SubmitError::Malformed`] / [`SubmitError::Rejected`]).
    #[must_use]
    pub fn with_admission(mut self, check: TxCheck) -> Self {
        self.set_admission(check);
        self
    }

    /// In-place form of [`Mempool::with_admission`], for owners that embed
    /// the pool in a larger structure.
    pub fn set_admission(&mut self, check: TxCheck) {
        self.admission = Some(check);
    }

    /// Validates and admits one transaction, FIFO position at the tail.
    /// Accepts anything convertible to the [`Tx`] envelope: a typed
    /// [`crate::Transaction`] by reference, or a legacy `Vec<u8>` through
    /// the [`crate::RawBytes`] path.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Empty`] and [`SubmitError::TooLarge`] reject
    /// degenerate transactions; [`SubmitError::Malformed`] and
    /// [`SubmitError::Rejected`] carry the admission hook's veto;
    /// [`SubmitError::Duplicate`] refuses an already-queued identity;
    /// [`SubmitError::Full`] is the backpressure signal at capacity.
    pub fn submit(&mut self, tx: impl Into<Tx>) -> Result<(), SubmitError> {
        let tx = tx.into();
        if tx.is_empty() {
            return Err(SubmitError::Empty);
        }
        if tx.len() > self.max_tx_bytes {
            return Err(SubmitError::TooLarge { size: tx.len(), max: self.max_tx_bytes });
        }
        if let Some(check) = self.admission {
            check(&tx)?;
        }
        if self.queued.get(&tx.id()).is_some_and(|c| *c > 0) {
            // Typed ids are identity; only an opaque RawBytes payload needs
            // the byte-exact confirmation (a colliding digest must not
            // refuse it).
            if !tx.is_raw() || self.queue.iter().any(|q| q.bytes() == tx.bytes()) {
                return Err(SubmitError::Duplicate);
            }
        }
        if self.queue.len() >= self.capacity {
            return Err(SubmitError::Full { capacity: self.capacity });
        }
        *self.queued.entry(tx.id()).or_insert(0) += 1;
        self.queue.push_back(tx);
        Ok(())
    }

    /// Drains up to `max_txs` transactions in FIFO order — the leader's
    /// batch assembly step when it mints a block. Blocks carry the
    /// canonical bytes alone; the envelope ends at the pool boundary.
    pub fn next_batch(&mut self, max_txs: usize) -> Vec<Vec<u8>> {
        let take = self.queue.len().min(max_txs);
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            let tx = self.queue.pop_front().expect("take <= len");
            self.forget(tx.id());
            batch.push(tx.into_bytes());
        }
        batch
    }

    /// Returns a previously drained batch to the *front* of the queue, in
    /// its original order — used when the proposal it was packed into lost
    /// a view change, so the transactions keep their FIFO position for the
    /// node's next block instead of being silently dropped.
    ///
    /// The payloads come back from the defeated block, so they re-enter as
    /// raw envelopes; the [`TxId`] is recomputed from the canonical bytes
    /// and therefore identical to the one they were first admitted under.
    ///
    /// The capacity check is deliberately skipped: these transactions were
    /// already admitted once, and the transient overshoot is bounded by
    /// the in-flight window (`SLOT_WINDOW` batches).
    pub fn requeue_front(&mut self, txs: Vec<Vec<u8>>) {
        for bytes in txs.into_iter().rev() {
            let tx = Tx::raw(bytes);
            *self.queued.entry(tx.id()).or_insert(0) += 1;
            self.queue.push_front(tx);
        }
    }

    fn forget(&mut self, id: TxId) {
        if let Some(count) = self.queued.get_mut(&id) {
            *count -= 1;
            if *count == 0 {
                self.queued.remove(&id);
            }
        }
    }

    /// Iterates the queued payloads in FIFO order — what a durable node
    /// snapshots to disk so admitted transactions survive a crash.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.queue.iter().map(|tx| tx.bytes())
    }

    /// Number of queued transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-transaction size cap in bytes.
    pub fn max_tx_bytes(&self) -> usize {
        self.max_tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::RawBytes;

    #[test]
    fn fifo_across_batches() {
        let mut pool = Mempool::new(1_000, 64);
        for k in 0..10u32 {
            pool.submit(k.to_be_bytes().to_vec()).unwrap();
        }
        let first = pool.next_batch(4);
        let second = pool.next_batch(4);
        let third = pool.next_batch(4);
        let drained: Vec<u32> = first
            .iter()
            .chain(&second)
            .chain(&third)
            .map(|tx| u32::from_be_bytes(tx[..4].try_into().unwrap()))
            .collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>(), "FIFO across batch boundaries");
        assert!(pool.is_empty());
    }

    #[test]
    fn capacity_backpressure_releases_after_drain() {
        let mut pool = Mempool::new(3, 64);
        for k in 0..3u8 {
            pool.submit(vec![k + 1]).unwrap();
        }
        assert_eq!(pool.submit(vec![9]), Err(SubmitError::Full { capacity: 3 }));
        pool.next_batch(1);
        pool.submit(vec![9]).unwrap();
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn dedup_is_scoped_to_queued_txs() {
        let mut pool = Mempool::new(10, 64);
        pool.submit(b"tx".to_vec()).unwrap();
        assert_eq!(pool.submit(b"tx".to_vec()), Err(SubmitError::Duplicate));
        assert_eq!(pool.next_batch(10).len(), 1);
        pool.submit(b"tx".to_vec()).expect("drained txs may be resubmitted");
    }

    #[test]
    fn typed_and_raw_submissions_share_one_identity() {
        let mut pool = Mempool::new(10, 64);
        pool.submit(Tx::typed(&RawBytes(b"pay".to_vec()))).unwrap();
        // The same canonical bytes, raw this time: same TxId, refused.
        assert_eq!(pool.submit(b"pay".to_vec()), Err(SubmitError::Duplicate));
        // And the mirror image: raw first, typed second.
        pool.submit(b"other".to_vec()).unwrap();
        assert_eq!(
            pool.submit(Tx::typed(&RawBytes(b"other".to_vec()))),
            Err(SubmitError::Duplicate)
        );
    }

    #[test]
    fn admission_hook_vetoes_at_the_door() {
        fn only_even_first_byte(tx: &Tx) -> Result<(), SubmitError> {
            match tx.bytes().first() {
                Some(b) if b % 2 == 0 => Ok(()),
                Some(_) => Err(SubmitError::Rejected { reason: "odd first byte" }),
                None => Err(SubmitError::Malformed { reason: "empty" }),
            }
        }
        let mut pool = Mempool::new(10, 64).with_admission(only_even_first_byte);
        pool.submit(vec![2, 2]).unwrap();
        assert_eq!(
            pool.submit(vec![3, 3]),
            Err(SubmitError::Rejected { reason: "odd first byte" })
        );
        assert_eq!(pool.len(), 1, "refused txs never enter the pool");
    }

    #[test]
    fn requeued_batch_regains_fifo_head_and_dedup() {
        let mut pool = Mempool::new(3, 64);
        for k in 0..3u8 {
            pool.submit(vec![k + 1]).unwrap();
        }
        let batch = pool.next_batch(2); // [1], [2] in flight
        pool.requeue_front(batch);
        assert_eq!(pool.next_batch(3), vec![vec![1], vec![2], vec![3]], "original order restored");
        // Dedup follows the requeued entries.
        pool.submit(vec![9]).unwrap();
        let batch = pool.next_batch(1);
        pool.requeue_front(batch);
        assert_eq!(pool.submit(vec![9]), Err(SubmitError::Duplicate));
        // Requeue may transiently exceed capacity (already-admitted txs).
        for k in 10..12u8 {
            pool.submit(vec![k]).unwrap();
        }
        let batch = pool.next_batch(3);
        pool.submit(vec![99]).unwrap();
        pool.submit(vec![98]).unwrap();
        pool.submit(vec![97]).unwrap();
        pool.requeue_front(batch);
        assert_eq!(pool.len(), 6, "3 queued + 3 requeued");
    }

    #[test]
    fn degenerate_txs_rejected() {
        let mut pool = Mempool::new(10, 4);
        assert_eq!(pool.submit(Vec::new()), Err(SubmitError::Empty));
        assert_eq!(pool.submit(vec![0; 5]), Err(SubmitError::TooLarge { size: 5, max: 4 }));
        assert!(pool.is_empty(), "rejected txs never enter the pool");
    }

    #[test]
    fn error_messages_name_the_limit() {
        assert_eq!(
            SubmitError::Full { capacity: 7 }.to_string(),
            "mempool is at its capacity of 7 transactions"
        );
        assert_eq!(
            SubmitError::TooLarge { size: 9, max: 8 }.to_string(),
            "transaction of 9 bytes exceeds the 8-byte cap"
        );
        assert_eq!(
            SubmitError::Malformed { reason: "not a transfer" }.to_string(),
            "malformed transaction: not a transfer"
        );
        assert_eq!(
            SubmitError::Rejected { reason: "zero amount" }.to_string(),
            "transaction refused at admission: zero amount"
        );
    }
}
