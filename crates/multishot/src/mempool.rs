//! The bounded transaction mempool feeding leader batch assembly.
//!
//! The pool replaces the unbounded `VecDeque` the node used to carry:
//! admission validates transactions (non-empty, under the size cap),
//! deduplicates against everything still queued, and refuses submissions
//! past a fixed capacity — the typed [`SubmitError`] is the backpressure
//! signal clients react to. Drain order is strictly FIFO, so a submitted
//! transaction's position in the chain is a function of its submission
//! order alone.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Why a transaction submission was refused.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::{Mempool, SubmitError};
///
/// let mut pool = Mempool::new(2, 8);
/// assert_eq!(pool.submit(vec![]), Err(SubmitError::Empty));
/// assert_eq!(pool.submit(vec![0; 9]), Err(SubmitError::TooLarge { size: 9, max: 8 }));
/// pool.submit(b"a".to_vec()).unwrap();
/// assert_eq!(pool.submit(b"a".to_vec()), Err(SubmitError::Duplicate));
/// pool.submit(b"b".to_vec()).unwrap();
/// assert_eq!(pool.submit(b"c".to_vec()), Err(SubmitError::Full { capacity: 2 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Empty transactions carry no payload and would only bloat blocks.
    Empty,
    /// The transaction exceeds the per-transaction size cap.
    TooLarge {
        /// Size of the offending transaction in bytes.
        size: usize,
        /// The configured cap.
        max: usize,
    },
    /// A byte-identical transaction is already queued.
    Duplicate,
    /// The pool is at capacity — the backpressure signal; retry after the
    /// chain drains some blocks.
    Full {
        /// The configured admission bound.
        capacity: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Empty => write!(f, "empty transaction"),
            SubmitError::TooLarge { size, max } => {
                write!(f, "transaction of {size} bytes exceeds the {max}-byte cap")
            }
            SubmitError::Duplicate => write!(f, "transaction is already queued"),
            SubmitError::Full { capacity } => {
                write!(f, "mempool is at its capacity of {capacity} transactions")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A bounded FIFO transaction pool with validation and dedup at admission.
///
/// # Examples
///
/// ```
/// use tetrabft_multishot::Mempool;
///
/// let mut pool = Mempool::new(100, 32);
/// for k in 0..5u8 {
///     pool.submit(vec![k + 1]).unwrap();
/// }
/// let batch = pool.next_batch(3);
/// assert_eq!(batch, vec![vec![1], vec![2], vec![3]], "drain order is FIFO");
/// assert_eq!(pool.len(), 2);
/// // A drained transaction may be resubmitted (it is no longer queued).
/// pool.submit(vec![1]).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Mempool {
    queue: VecDeque<Vec<u8>>,
    // Multiset of digests of `queue`'s entries. A digest hit alone never
    // refuses a transaction — admission confirms by byte-comparing against
    // the queue — so dedup stays byte-exact without storing every payload
    // twice; the count keeps colliding digests correct through drains.
    queued: HashMap<u64, u32>,
    capacity: usize,
    max_tx_bytes: usize,
}

fn digest(tx: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tx {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Mempool {
    /// Creates an empty pool admitting at most `capacity` transactions of
    /// at most `max_tx_bytes` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `max_tx_bytes == 0`.
    pub fn new(capacity: usize, max_tx_bytes: usize) -> Self {
        assert!(capacity > 0, "mempool must admit at least one tx");
        assert!(max_tx_bytes > 0, "tx size cap must be positive");
        Mempool { queue: VecDeque::new(), queued: HashMap::new(), capacity, max_tx_bytes }
    }

    /// Validates and admits one transaction, FIFO position at the tail.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Empty`] and [`SubmitError::TooLarge`] reject
    /// degenerate transactions; [`SubmitError::Duplicate`] refuses a
    /// byte-identical queued transaction; [`SubmitError::Full`] is the
    /// backpressure signal at capacity.
    pub fn submit(&mut self, tx: Vec<u8>) -> Result<(), SubmitError> {
        if tx.is_empty() {
            return Err(SubmitError::Empty);
        }
        if tx.len() > self.max_tx_bytes {
            return Err(SubmitError::TooLarge { size: tx.len(), max: self.max_tx_bytes });
        }
        let d = digest(&tx);
        // Confirm a digest hit by byte comparison: a pure collision must
        // not refuse an honest transaction.
        if self.queued.get(&d).is_some_and(|c| *c > 0) && self.queue.contains(&tx) {
            return Err(SubmitError::Duplicate);
        }
        if self.queue.len() >= self.capacity {
            return Err(SubmitError::Full { capacity: self.capacity });
        }
        *self.queued.entry(d).or_insert(0) += 1;
        self.queue.push_back(tx);
        Ok(())
    }

    /// Drains up to `max_txs` transactions in FIFO order — the leader's
    /// batch assembly step when it mints a block.
    pub fn next_batch(&mut self, max_txs: usize) -> Vec<Vec<u8>> {
        let take = self.queue.len().min(max_txs);
        let batch: Vec<Vec<u8>> = self.queue.drain(..take).collect();
        for tx in &batch {
            self.forget(tx);
        }
        batch
    }

    /// Returns a previously drained batch to the *front* of the queue, in
    /// its original order — used when the proposal it was packed into lost
    /// a view change, so the transactions keep their FIFO position for the
    /// node's next block instead of being silently dropped.
    ///
    /// The capacity check is deliberately skipped: these transactions were
    /// already admitted once, and the transient overshoot is bounded by
    /// the in-flight window (`SLOT_WINDOW` batches).
    pub fn requeue_front(&mut self, txs: Vec<Vec<u8>>) {
        for tx in txs.into_iter().rev() {
            *self.queued.entry(digest(&tx)).or_insert(0) += 1;
            self.queue.push_front(tx);
        }
    }

    fn forget(&mut self, tx: &[u8]) {
        if let Some(count) = self.queued.get_mut(&digest(tx)) {
            *count -= 1;
            if *count == 0 {
                self.queued.remove(&digest(tx));
            }
        }
    }

    /// Iterates the queued transactions in FIFO order — what a durable
    /// node snapshots to disk so admitted transactions survive a crash.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.queue.iter()
    }

    /// Number of queued transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-transaction size cap in bytes.
    pub fn max_tx_bytes(&self) -> usize {
        self.max_tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_batches() {
        let mut pool = Mempool::new(1_000, 64);
        for k in 0..10u32 {
            pool.submit(k.to_be_bytes().to_vec()).unwrap();
        }
        let first = pool.next_batch(4);
        let second = pool.next_batch(4);
        let third = pool.next_batch(4);
        let drained: Vec<u32> = first
            .iter()
            .chain(&second)
            .chain(&third)
            .map(|tx| u32::from_be_bytes(tx[..4].try_into().unwrap()))
            .collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>(), "FIFO across batch boundaries");
        assert!(pool.is_empty());
    }

    #[test]
    fn capacity_backpressure_releases_after_drain() {
        let mut pool = Mempool::new(3, 64);
        for k in 0..3u8 {
            pool.submit(vec![k + 1]).unwrap();
        }
        assert_eq!(pool.submit(vec![9]), Err(SubmitError::Full { capacity: 3 }));
        pool.next_batch(1);
        pool.submit(vec![9]).unwrap();
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn dedup_is_scoped_to_queued_txs() {
        let mut pool = Mempool::new(10, 64);
        pool.submit(b"tx".to_vec()).unwrap();
        assert_eq!(pool.submit(b"tx".to_vec()), Err(SubmitError::Duplicate));
        assert_eq!(pool.next_batch(10).len(), 1);
        pool.submit(b"tx".to_vec()).expect("drained txs may be resubmitted");
    }

    #[test]
    fn requeued_batch_regains_fifo_head_and_dedup() {
        let mut pool = Mempool::new(3, 64);
        for k in 0..3u8 {
            pool.submit(vec![k + 1]).unwrap();
        }
        let batch = pool.next_batch(2); // [1], [2] in flight
        pool.requeue_front(batch);
        assert_eq!(pool.next_batch(3), vec![vec![1], vec![2], vec![3]], "original order restored");
        // Dedup follows the requeued entries.
        pool.submit(vec![9]).unwrap();
        let batch = pool.next_batch(1);
        pool.requeue_front(batch);
        assert_eq!(pool.submit(vec![9]), Err(SubmitError::Duplicate));
        // Requeue may transiently exceed capacity (already-admitted txs).
        for k in 10..12u8 {
            pool.submit(vec![k]).unwrap();
        }
        let batch = pool.next_batch(3);
        pool.submit(vec![99]).unwrap();
        pool.submit(vec![98]).unwrap();
        pool.submit(vec![97]).unwrap();
        pool.requeue_front(batch);
        assert_eq!(pool.len(), 6, "3 queued + 3 requeued");
    }

    #[test]
    fn degenerate_txs_rejected() {
        let mut pool = Mempool::new(10, 4);
        assert_eq!(pool.submit(Vec::new()), Err(SubmitError::Empty));
        assert_eq!(pool.submit(vec![0; 5]), Err(SubmitError::TooLarge { size: 5, max: 4 }));
        assert!(pool.is_empty(), "rejected txs never enter the pool");
    }

    #[test]
    fn error_messages_name_the_limit() {
        assert_eq!(
            SubmitError::Full { capacity: 7 }.to_string(),
            "mempool is at its capacity of 7 transactions"
        );
        assert_eq!(
            SubmitError::TooLarge { size: 9, max: 8 }.to_string(),
            "transaction of 9 bytes exceeds the 8-byte cap"
        );
    }
}
